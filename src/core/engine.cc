#include "core/engine.h"

#include <algorithm>

#include "common/bytes.h"
#include "core/plugins.h"
#include "obs/metrics.h"

namespace just::core {

namespace {
std::string ViewKey(const std::string& user, const std::string& name) {
  return user + "." + name;
}
}  // namespace

Result<std::unique_ptr<JustEngine>> JustEngine::Open(
    const EngineOptions& options) {
  auto engine = std::unique_ptr<JustEngine>(new JustEngine(options));
  engine->options_.index.num_shards = options.num_shards;
  JUST_ASSIGN_OR_RETURN(
      engine->catalog_, meta::Catalog::Open(options.data_dir + "/catalog.jsonl"));
  cluster::ClusterOptions cluster_options;
  cluster_options.dir = options.data_dir + "/cluster";
  cluster_options.num_servers = options.num_servers;
  cluster_options.store = options.store;
  cluster_options.server_addrs = options.server_addrs;
  JUST_ASSIGN_OR_RETURN(engine->cluster_,
                        cluster::RegionCluster::Open(cluster_options));
  engine->slow_query_log_ = std::make_unique<obs::SlowQueryLog>(
      options.slow_query_threshold_us, /*capacity=*/128,
      options.slow_query_log_to_stderr);
  // Streaming subsystem: the standing-query hub and the per-tenant quota
  // buckets, re-armed from the quotas the catalog persisted.
  engine->stream_hub_ = std::make_unique<stream::StreamHub>();
  engine->quota_ = std::make_unique<stream::QuotaManager>();
  for (const auto& [tenant, quota] : engine->catalog_->AllTenantQuotas()) {
    engine->quota_->SetQuota(tenant, quota);
  }
  // Crash recovery: a `building` secondary index means a prior process died
  // mid-build (the in-memory catch-up journal died with it, so the entries
  // already on disk cannot be trusted). Drop it and purge its key space —
  // CREATE INDEX can simply be rerun.
  for (const meta::TableMeta& table : engine->catalog_->AllTables()) {
    for (const meta::SecondaryIndexDef& def : table.secondary_indexes) {
      if (def.state != meta::IndexState::kBuilding) continue;
      JUST_RETURN_NOT_OK(
          engine->catalog_->DropIndex(table.user, table.name, def.name));
      JUST_RETURN_NOT_OK(
          engine->PurgeIndexKeySpace(table.table_id, def.slot));
    }
  }
  return engine;
}

void JustEngine::ApplyDefaultIndexes(meta::TableMeta* table) {
  if (!table->indexes.empty()) return;
  // Section V-C: by default JUST builds Z2 (point) or XZ2 (non-point) for
  // spatial data, plus Z2T/XZ2T when a time column exists.
  bool has_time = !table->time_column.empty();
  bool extent = false;
  int geom_idx = table->ColumnIndex(table->geom_column);
  if (geom_idx >= 0 &&
      table->columns[geom_idx].type == exec::DataType::kTrajectory) {
    extent = true;
  }
  if (extent) {
    table->indexes.push_back({curve::IndexType::kXz2, kMillisPerDay});
    if (has_time) {
      table->indexes.push_back({curve::IndexType::kXz2T, kMillisPerDay});
    }
  } else {
    table->indexes.push_back({curve::IndexType::kZ2, kMillisPerDay});
    if (has_time) {
      table->indexes.push_back({curve::IndexType::kZ2T, kMillisPerDay});
    }
  }
}

Status JustEngine::CreateTable(meta::TableMeta table) {
  if (table.user.empty() || table.name.empty()) {
    return Status::InvalidArgument("table needs user and name");
  }
  if (table.columns.empty()) {
    return Status::InvalidArgument("table needs at least one column");
  }
  // Infer special columns when unset.
  if (table.fid_column.empty()) {
    for (const auto& col : table.columns) {
      if (col.primary_key) {
        table.fid_column = col.name;
        break;
      }
    }
  }
  if (table.geom_column.empty()) {
    for (const auto& col : table.columns) {
      if (col.type == exec::DataType::kGeometry ||
          col.type == exec::DataType::kTrajectory) {
        table.geom_column = col.name;
        break;
      }
    }
  }
  if (table.time_column.empty()) {
    for (const auto& col : table.columns) {
      if (col.type == exec::DataType::kTimestamp) {
        table.time_column = col.name;
        break;
      }
    }
  }
  ApplyDefaultIndexes(&table);
  return catalog_->CreateTable(&table);
}

Status JustEngine::CreatePluginTable(const std::string& user,
                                     const std::string& name,
                                     const std::string& plugin) {
  JUST_ASSIGN_OR_RETURN(auto table, MakePluginTable(plugin, user, name));
  return catalog_->CreateTable(&table);
}

Status JustEngine::DropTable(const std::string& user,
                             const std::string& name) {
  JUST_ASSIGN_OR_RETURN(auto table_meta, catalog_->GetTable(user, name));
  JUST_RETURN_NOT_OK(catalog_->DropTable(user, name));
  // Standing queries against a dropped table would never fire again; drop
  // them with it.
  stream_hub_->DropQueriesForTable(user, name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    table_cache_.erase(ViewKey(user, name));
  }
  // Delete the table's key spaces: SFC and attribute slots, plus every
  // secondary-index slot ever assigned (slots are monotonic, so sweeping up
  // to next_index_slot also clears orphans a crashed DROP INDEX left).
  size_t total_slots =
      std::max<size_t>(table_meta.indexes.size() + table_meta.attr_indexes.size(),
                       table_meta.next_index_slot);
  for (size_t slot = 0; slot < total_slots; ++slot) {
    JUST_RETURN_NOT_OK(PurgeIndexKeySpace(table_meta.table_id,
                                          static_cast<uint32_t>(slot)));
  }
  return Status::OK();
}

Status JustEngine::PurgeIndexKeySpace(uint64_t table_id, uint32_t slot) {
  std::string prefix;
  PutFixed32BE(&prefix, static_cast<uint32_t>(table_id));
  prefix.push_back(static_cast<char>(slot));
  std::string end_prefix = prefix;
  end_prefix.back() = static_cast<char>(end_prefix.back() + 1);
  std::vector<std::string> doomed;
  for (int shard = 0; shard < options_.index.num_shards; ++shard) {
    std::string start(1, static_cast<char>(shard));
    start += prefix;
    std::string end(1, static_cast<char>(shard));
    end += end_prefix;
    JUST_RETURN_NOT_OK(cluster_->Scan(
        start, end, [&](std::string_view key, std::string_view) {
          doomed.emplace_back(key);
          return true;
        }));
  }
  for (const std::string& key : doomed) {
    JUST_RETURN_NOT_OK(cluster_->Delete(key));
  }
  return Status::OK();
}

void JustEngine::InvalidateTableAndDrainWriters(const std::string& user,
                                                const std::string& table) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    table_cache_.erase(ViewKey(user, table));
  }
  // Momentary exclusive hold: any writer that bound the table before the
  // cache flush finishes its write first; writers arriving after re-bind
  // and see the new catalog state. Writers are only ever blocked for the
  // duration of in-flight WriteBatch calls.
  std::unique_lock<std::shared_mutex> barrier(write_barrier_);
}

Status JustEngine::CreateIndex(const std::string& user,
                               const std::string& table,
                               const std::string& index_name,
                               const std::string& column) {
  JUST_ASSIGN_OR_RETURN(auto table_meta, catalog_->GetTable(user, table));
  if (table_meta.ColumnIndex(column) < 0) {
    return Status::InvalidArgument("no such column to index: " + column);
  }
  if (table_meta.FindSecondaryIndex(index_name) != nullptr) {
    return Status::InvalidArgument("index already exists: " + index_name);
  }
  meta::SecondaryIndexDef def;
  def.name = index_name;
  def.column = column;
  // Secondary slots live above the SFC + attribute slots and are monotonic
  // (never reused after a drop), so stale entries of a dropped index can
  // never alias a live one.
  def.slot = std::max<uint32_t>(
      static_cast<uint32_t>(table_meta.indexes.size() +
                            table_meta.attr_indexes.size()),
      table_meta.next_index_slot);
  def.state = meta::IndexState::kBuilding;
  JUST_RETURN_NOT_OK(catalog_->AddIndex(user, table, def));
  auto journal = std::make_shared<IndexBuildJournal>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_builds_[ViewKey(user, table)][index_name] = journal;
    table_cache_.erase(ViewKey(user, table));
  }
  // Drain writers still holding the pre-index binding (they would neither
  // dual-write nor journal); after this, every write dual-maintains the
  // building index, so the backfill below can never miss a row it raced.
  { std::unique_lock<std::shared_mutex> barrier(write_barrier_); }
  Status build = BuildIndex(user, table, def, journal);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_builds_.find(ViewKey(user, table));
    if (it != active_builds_.end()) {
      it->second.erase(index_name);
      if (it->second.empty()) active_builds_.erase(it);
    }
    table_cache_.erase(ViewKey(user, table));
  }
  if (!build.ok()) {
    // Roll the registration back; best-effort cleanup of partial entries.
    catalog_->DropIndex(user, table, index_name);
    PurgeIndexKeySpace(table_meta.table_id, def.slot);
    return build;
  }
  return Status::OK();
}

Status JustEngine::BuildIndex(const std::string& user, const std::string& table,
                              const meta::SecondaryIndexDef& def,
                              const std::shared_ptr<IndexBuildJournal>& journal) {
  static obs::Counter* build_rows =
      obs::Registry::Global().GetCounter("just_idx_build_rows_total");
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  // Backfill from a scan of the base rows (slot 0). Concurrent writers are
  // untouched: they dual-write the index directly and mirror those ops into
  // the journal, whose FIFO replay below wins over any backfill put raced.
  JUST_ASSIGN_OR_RETURN(auto frame, bound->FullScan());
  size_t chunk_rows = std::max<size_t>(1, options_.index_build_batch_rows);
  std::vector<kv::WriteOp> chunk;
  chunk.reserve(chunk_rows);
  for (const exec::Row& row : frame.rows()) {
    JUST_ASSIGN_OR_RETURN(auto op,
                          bound->MakeSecondaryEntryOp(def, row, false));
    chunk.push_back(std::move(op));
    if (chunk.size() >= chunk_rows) {
      size_t n = chunk.size();
      JUST_RETURN_NOT_OK(cluster_->WriteBatch(std::move(chunk)));
      build_rows->Add(n);
      chunk.clear();
    }
  }
  if (!chunk.empty()) {
    size_t n = chunk.size();
    JUST_RETURN_NOT_OK(cluster_->WriteBatch(std::move(chunk)));
    build_rows->Add(n);
  }
  // Catch-up: replay writer ops journaled during the backfill until the
  // journal closes empty — the atomic commit point (late writers then write
  // directly, with no backfill put left in flight to race with).
  for (;;) {
    std::vector<kv::WriteOp> ops = journal->Drain(chunk_rows);
    if (ops.empty()) {
      if (journal->CloseIfDrained()) break;
      continue;
    }
    size_t n = ops.size();
    JUST_RETURN_NOT_OK(cluster_->WriteBatch(std::move(ops)));
    build_rows->Add(n);
  }
  return catalog_->SetIndexState(user, table, def.name,
                                 meta::IndexState::kReady);
}

Status JustEngine::DropIndex(const std::string& user, const std::string& table,
                             const std::string& index_name) {
  JUST_ASSIGN_OR_RETURN(auto table_meta, catalog_->GetTable(user, table));
  meta::SecondaryIndexDef dropped;
  JUST_RETURN_NOT_OK(catalog_->DropIndex(user, table, index_name, &dropped));
  InvalidateTableAndDrainWriters(user, table);
  return PurgeIndexKeySpace(table_meta.table_id, dropped.slot);
}

std::vector<std::string> JustEngine::ShowTables(const std::string& user) const {
  std::vector<std::string> names;
  for (const auto& table : catalog_->ListTables(user)) {
    names.push_back(table.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<meta::TableMeta> JustEngine::DescribeTable(
    const std::string& user, const std::string& name) const {
  return catalog_->GetTable(user, name);
}

Result<std::shared_ptr<StTable>> JustEngine::GetTable(
    const std::string& user, const std::string& name) {
  std::string key = ViewKey(user, name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_cache_.find(key);
    if (it != table_cache_.end()) return it->second;
  }
  JUST_ASSIGN_OR_RETURN(auto table_meta, catalog_->GetTable(user, name));
  auto table = std::make_shared<StTable>(std::move(table_meta),
                                         cluster_.get(), options_.index);
  std::lock_guard<std::mutex> lock(mu_);
  // Bindings created while an online build is in flight mirror their index
  // ops into the build's catch-up journal.
  auto builds = active_builds_.find(key);
  if (builds != active_builds_.end()) {
    for (const auto& [index_name, journal] : builds->second) {
      table->AttachBuildJournal(index_name, journal);
    }
  }
  table_cache_[key] = table;
  return table;
}

Status JustEngine::Insert(const std::string& user, const std::string& table,
                          const exec::Row& row) {
  // Writers bind + write under a shared hold of the write barrier so index
  // DDL can drain them (see InvalidateTableAndDrainWriters); writers never
  // block each other.
  JUST_RETURN_NOT_OK(quota_->AdmitWrite(user, 1));
  std::shared_lock<std::shared_mutex> barrier(write_barrier_);
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  JUST_RETURN_NOT_OK(bound->Insert(row));
  stream_hub_->OnInsert(user, table, {row});
  return Status::OK();
}

Status JustEngine::InsertBatch(const std::string& user,
                               const std::string& table,
                               const std::vector<exec::Row>& rows) {
  JUST_RETURN_NOT_OK(quota_->AdmitWrite(user, rows.size()));
  std::shared_lock<std::shared_mutex> barrier(write_barrier_);
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  // One table-level batch: all index keys of the chunk ride the cluster's
  // per-server group commits instead of one WAL round-trip per key.
  JUST_RETURN_NOT_OK(bound->InsertBatch(rows));
  stream_hub_->OnInsert(user, table, rows);
  return Status::OK();
}

Status JustEngine::InsertStream(const std::string& user,
                                const std::string& table,
                                const std::vector<exec::Row>& rows) {
  // Quota shed (kResourceExhausted) happens before any cluster I/O so a
  // throttled tenant costs nothing but the bucket check.
  JUST_RETURN_NOT_OK(quota_->AdmitWrite(user, rows.size()));
  std::shared_lock<std::shared_mutex> barrier(write_barrier_);
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  JUST_RETURN_NOT_OK(bound->InsertBatchStream(rows));
  // Committed rows feed the standing queries: incremental evaluation against
  // the insert stream, no polling scans (rows_scanned stays 0).
  stream_hub_->OnInsert(user, table, rows);
  return Status::OK();
}

Status JustEngine::Remove(const std::string& user, const std::string& table,
                          const exec::Row& row) {
  std::shared_lock<std::shared_mutex> barrier(write_barrier_);
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->Remove(row);
}

Status JustEngine::Replace(const std::string& user, const std::string& table,
                           const exec::Row& old_row,
                           const exec::Row& new_row) {
  std::shared_lock<std::shared_mutex> barrier(write_barrier_);
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->Replace(old_row, new_row);
}

Status JustEngine::AdmitScan(const std::string& user) const {
  return quota_->AdmitScan(user);
}

void JustEngine::ChargeScan(const std::string& user,
                            const QueryStats* stats) const {
  if (stats != nullptr && stats->bytes_scanned > 0) {
    quota_->ChargeScanBytes(user, stats->bytes_scanned);
  }
}

Result<exec::DataFrame> JustEngine::SpatialRangeQuery(const std::string& user,
                                                      const std::string& table,
                                                      const geo::Mbr& box,
                                                      QueryStats* stats) {
  JUST_RETURN_NOT_OK(AdmitScan(user));
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  QueryStats local;
  if (stats == nullptr) stats = &local;
  auto result = bound->SpatialRangeQuery(box, stats);
  ChargeScan(user, stats);
  return result;
}

Result<exec::DataFrame> JustEngine::StRangeQuery(
    const std::string& user, const std::string& table, const geo::Mbr& box,
    TimestampMs t_min, TimestampMs t_max, QueryStats* stats) {
  JUST_RETURN_NOT_OK(AdmitScan(user));
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  QueryStats local;
  if (stats == nullptr) stats = &local;
  auto result = bound->StRangeQuery(box, t_min, t_max, stats);
  ChargeScan(user, stats);
  return result;
}

Result<exec::DataFrame> JustEngine::KnnQuery(const std::string& user,
                                             const std::string& table,
                                             const geo::Point& q, int k,
                                             QueryStats* stats) {
  JUST_RETURN_NOT_OK(AdmitScan(user));
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  QueryStats local;
  if (stats == nullptr) stats = &local;
  auto result = bound->KnnQuery(q, k, stats);
  ChargeScan(user, stats);
  return result;
}

Result<exec::DataFrame> JustEngine::FullScan(const std::string& user,
                                             const std::string& table) {
  JUST_RETURN_NOT_OK(AdmitScan(user));
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->FullScan();
}

Result<exec::DataFrame> JustEngine::AttributeQuery(const std::string& user,
                                                   const std::string& table,
                                                   const std::string& column,
                                                   const exec::Value& value,
                                                   QueryStats* stats) {
  JUST_RETURN_NOT_OK(AdmitScan(user));
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  QueryStats local;
  if (stats == nullptr) stats = &local;
  auto result = bound->AttributeQuery(column, value, stats);
  ChargeScan(user, stats);
  return result;
}

Result<exec::BatchVector> JustEngine::SpatialRangeQueryBatch(
    const std::string& user, const std::string& table, const geo::Mbr& box,
    QueryStats* stats, const ScanBudget* budget) {
  JUST_RETURN_NOT_OK(AdmitScan(user));
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  QueryStats local;
  if (stats == nullptr) stats = &local;
  auto result = bound->SpatialRangeQueryBatch(box, stats, budget);
  ChargeScan(user, stats);
  return result;
}

Result<exec::BatchVector> JustEngine::StRangeQueryBatch(
    const std::string& user, const std::string& table, const geo::Mbr& box,
    TimestampMs t_min, TimestampMs t_max, QueryStats* stats,
    const ScanBudget* budget) {
  JUST_RETURN_NOT_OK(AdmitScan(user));
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  QueryStats local;
  if (stats == nullptr) stats = &local;
  auto result = bound->StRangeQueryBatch(box, t_min, t_max, stats, budget);
  ChargeScan(user, stats);
  return result;
}

Result<exec::BatchVector> JustEngine::FullScanBatch(const std::string& user,
                                                    const std::string& table,
                                                    QueryStats* stats,
                                                    const ScanBudget* budget) {
  JUST_RETURN_NOT_OK(AdmitScan(user));
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  QueryStats local;
  if (stats == nullptr) stats = &local;
  auto result = bound->FullScanBatch(stats, budget);
  ChargeScan(user, stats);
  return result;
}

Result<exec::BatchVector> JustEngine::AttributeQueryBatch(
    const std::string& user, const std::string& table,
    const std::string& column, const exec::Value& value, QueryStats* stats) {
  JUST_RETURN_NOT_OK(AdmitScan(user));
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  QueryStats local;
  if (stats == nullptr) stats = &local;
  auto result = bound->AttributeQueryBatch(column, value, stats);
  ChargeScan(user, stats);
  return result;
}

Result<exec::BatchVector> JustEngine::SecondaryIndexQueryBatch(
    const std::string& user, const std::string& table,
    const std::string& column, const AttrBound& lower, const AttrBound& upper,
    const geo::Mbr* box, bool temporal, TimestampMs t_min, TimestampMs t_max,
    QueryStats* stats, const ScanBudget* budget) {
  JUST_RETURN_NOT_OK(AdmitScan(user));
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  const meta::SecondaryIndexDef* def =
      bound->meta().ReadySecondaryIndexOn(column);
  if (def == nullptr) {
    return Status::NotFound("no ready secondary index on column: " + column);
  }
  QueryStats local;
  if (stats == nullptr) stats = &local;
  auto result = bound->SecondaryIndexQueryBatch(*def, lower, upper, box,
                                                temporal, t_min, t_max, stats,
                                                budget);
  ChargeScan(user, stats);
  return result;
}

Status JustEngine::SetTenantQuota(const std::string& tenant,
                                  const meta::TenantQuotaConfig& quota) {
  // Persist first: if the catalog write fails the in-memory buckets keep
  // the old limits, so restart never resurrects a quota the caller saw fail.
  JUST_RETURN_NOT_OK(catalog_->SetTenantQuota(tenant, quota));
  quota_->SetQuota(tenant, quota);
  return Status::OK();
}

Result<size_t> JustEngine::SecondaryIndexProbe(
    const std::string& user, const std::string& table,
    const std::string& column, const AttrBound& lower, const AttrBound& upper,
    size_t limit) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  const meta::SecondaryIndexDef* def =
      bound->meta().ReadySecondaryIndexOn(column);
  if (def == nullptr) {
    return Status::NotFound("no ready secondary index on column: " + column);
  }
  return bound->SecondaryIndexProbe(*def, lower, upper, limit);
}

Result<std::unique_ptr<ResultSet>> JustEngine::MakeResultSet(
    exec::DataFrame frame) {
  return ResultSet::Make(std::move(frame), options_.result_options);
}

Status JustEngine::CreateView(const std::string& user, const std::string& name,
                              exec::DataFrame frame) {
  std::lock_guard<std::mutex> lock(mu_);
  views_[ViewKey(user, name)] = std::move(frame);
  return Status::OK();
}

Result<exec::DataFrame> JustEngine::GetView(const std::string& user,
                                            const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(ViewKey(user, name));
  if (it == views_.end()) return Status::NotFound("no such view: " + name);
  return it->second;
}

Status JustEngine::DropView(const std::string& user, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (views_.erase(ViewKey(user, name)) == 0) {
    return Status::NotFound("no such view: " + name);
  }
  return Status::OK();
}

bool JustEngine::ViewExists(const std::string& user,
                            const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.count(ViewKey(user, name)) != 0;
}

std::vector<std::string> JustEngine::ShowViews(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  std::string prefix = user + ".";
  for (const auto& [key, frame] : views_) {
    if (key.rfind(prefix, 0) == 0) names.push_back(key.substr(prefix.size()));
  }
  return names;
}

Status JustEngine::StoreViewToTable(const std::string& user,
                                    const std::string& view,
                                    const std::string& table) {
  JUST_ASSIGN_OR_RETURN(auto frame, GetView(user, view));
  if (!catalog_->TableExists(user, table)) {
    // Auto-create a common table mirroring the view schema (Section IV-D).
    meta::TableMeta table_meta;
    table_meta.user = user;
    table_meta.name = table;
    for (const exec::Field& f : frame.schema().fields()) {
      table_meta.columns.push_back(
          meta::ColumnDef{f.name, f.type, false, "", ""});
    }
    JUST_RETURN_NOT_OK(CreateTable(std::move(table_meta)));
  }
  return InsertBatch(user, table, frame.rows());
}

Status JustEngine::Finalize() {
  JUST_RETURN_NOT_OK(cluster_->FlushAll());
  return cluster_->CompactAll();
}

JustEngine::StorageStats JustEngine::GetStorageStats() const {
  auto stats = cluster_->GetStats();
  return StorageStats{stats.disk_bytes, stats.entries};
}

}  // namespace just::core
