#include "core/engine.h"

#include <algorithm>

#include "core/plugins.h"

namespace just::core {

namespace {
std::string ViewKey(const std::string& user, const std::string& name) {
  return user + "." + name;
}
}  // namespace

Result<std::unique_ptr<JustEngine>> JustEngine::Open(
    const EngineOptions& options) {
  auto engine = std::unique_ptr<JustEngine>(new JustEngine(options));
  engine->options_.index.num_shards = options.num_shards;
  JUST_ASSIGN_OR_RETURN(
      engine->catalog_, meta::Catalog::Open(options.data_dir + "/catalog.jsonl"));
  cluster::ClusterOptions cluster_options;
  cluster_options.dir = options.data_dir + "/cluster";
  cluster_options.num_servers = options.num_servers;
  cluster_options.store = options.store;
  cluster_options.server_addrs = options.server_addrs;
  JUST_ASSIGN_OR_RETURN(engine->cluster_,
                        cluster::RegionCluster::Open(cluster_options));
  engine->slow_query_log_ = std::make_unique<obs::SlowQueryLog>(
      options.slow_query_threshold_us, /*capacity=*/128,
      options.slow_query_log_to_stderr);
  return engine;
}

void JustEngine::ApplyDefaultIndexes(meta::TableMeta* table) {
  if (!table->indexes.empty()) return;
  // Section V-C: by default JUST builds Z2 (point) or XZ2 (non-point) for
  // spatial data, plus Z2T/XZ2T when a time column exists.
  bool has_time = !table->time_column.empty();
  bool extent = false;
  int geom_idx = table->ColumnIndex(table->geom_column);
  if (geom_idx >= 0 &&
      table->columns[geom_idx].type == exec::DataType::kTrajectory) {
    extent = true;
  }
  if (extent) {
    table->indexes.push_back({curve::IndexType::kXz2, kMillisPerDay});
    if (has_time) {
      table->indexes.push_back({curve::IndexType::kXz2T, kMillisPerDay});
    }
  } else {
    table->indexes.push_back({curve::IndexType::kZ2, kMillisPerDay});
    if (has_time) {
      table->indexes.push_back({curve::IndexType::kZ2T, kMillisPerDay});
    }
  }
}

Status JustEngine::CreateTable(meta::TableMeta table) {
  if (table.user.empty() || table.name.empty()) {
    return Status::InvalidArgument("table needs user and name");
  }
  if (table.columns.empty()) {
    return Status::InvalidArgument("table needs at least one column");
  }
  // Infer special columns when unset.
  if (table.fid_column.empty()) {
    for (const auto& col : table.columns) {
      if (col.primary_key) {
        table.fid_column = col.name;
        break;
      }
    }
  }
  if (table.geom_column.empty()) {
    for (const auto& col : table.columns) {
      if (col.type == exec::DataType::kGeometry ||
          col.type == exec::DataType::kTrajectory) {
        table.geom_column = col.name;
        break;
      }
    }
  }
  if (table.time_column.empty()) {
    for (const auto& col : table.columns) {
      if (col.type == exec::DataType::kTimestamp) {
        table.time_column = col.name;
        break;
      }
    }
  }
  ApplyDefaultIndexes(&table);
  return catalog_->CreateTable(&table);
}

Status JustEngine::CreatePluginTable(const std::string& user,
                                     const std::string& name,
                                     const std::string& plugin) {
  JUST_ASSIGN_OR_RETURN(auto table, MakePluginTable(plugin, user, name));
  return catalog_->CreateTable(&table);
}

Status JustEngine::DropTable(const std::string& user,
                             const std::string& name) {
  JUST_ASSIGN_OR_RETURN(auto table_meta, catalog_->GetTable(user, name));
  JUST_RETURN_NOT_OK(catalog_->DropTable(user, name));
  {
    std::lock_guard<std::mutex> lock(mu_);
    table_cache_.erase(ViewKey(user, name));
  }
  // Delete the table's key spaces. Ranges: per shard x index slot prefix.
  curve::IndexOptions index_options = options_.index;
  StTable table(table_meta, cluster_.get(), index_options);
  std::vector<std::string> doomed;
  size_t total_slots = table_meta.indexes.size() +
                       table_meta.attr_indexes.size();
  for (size_t slot = 0; slot < total_slots; ++slot) {
    for (int shard = 0; shard < index_options.num_shards; ++shard) {
      std::string start(1, static_cast<char>(shard));
      start += table.IndexPrefix(slot);
      std::string end(1, static_cast<char>(shard));
      std::string end_prefix = table.IndexPrefix(slot);
      end_prefix.back() = static_cast<char>(end_prefix.back() + 1);
      end += end_prefix;
      JUST_RETURN_NOT_OK(cluster_->Scan(
          start, end, [&](std::string_view key, std::string_view) {
            doomed.emplace_back(key);
            return true;
          }));
    }
  }
  for (const std::string& key : doomed) {
    JUST_RETURN_NOT_OK(cluster_->Delete(key));
  }
  return Status::OK();
}

std::vector<std::string> JustEngine::ShowTables(const std::string& user) const {
  std::vector<std::string> names;
  for (const auto& table : catalog_->ListTables(user)) {
    names.push_back(table.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<meta::TableMeta> JustEngine::DescribeTable(
    const std::string& user, const std::string& name) const {
  return catalog_->GetTable(user, name);
}

Result<std::shared_ptr<StTable>> JustEngine::GetTable(
    const std::string& user, const std::string& name) {
  std::string key = ViewKey(user, name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_cache_.find(key);
    if (it != table_cache_.end()) return it->second;
  }
  JUST_ASSIGN_OR_RETURN(auto table_meta, catalog_->GetTable(user, name));
  auto table = std::make_shared<StTable>(std::move(table_meta),
                                         cluster_.get(), options_.index);
  std::lock_guard<std::mutex> lock(mu_);
  table_cache_[key] = table;
  return table;
}

Status JustEngine::Insert(const std::string& user, const std::string& table,
                          const exec::Row& row) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->Insert(row);
}

Status JustEngine::InsertBatch(const std::string& user,
                               const std::string& table,
                               const std::vector<exec::Row>& rows) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  // One table-level batch: all index keys of the chunk ride the cluster's
  // per-server group commits instead of one WAL round-trip per key.
  return bound->InsertBatch(rows);
}

Result<exec::DataFrame> JustEngine::SpatialRangeQuery(const std::string& user,
                                                      const std::string& table,
                                                      const geo::Mbr& box,
                                                      QueryStats* stats) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->SpatialRangeQuery(box, stats);
}

Result<exec::DataFrame> JustEngine::StRangeQuery(
    const std::string& user, const std::string& table, const geo::Mbr& box,
    TimestampMs t_min, TimestampMs t_max, QueryStats* stats) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->StRangeQuery(box, t_min, t_max, stats);
}

Result<exec::DataFrame> JustEngine::KnnQuery(const std::string& user,
                                             const std::string& table,
                                             const geo::Point& q, int k,
                                             QueryStats* stats) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->KnnQuery(q, k, stats);
}

Result<exec::DataFrame> JustEngine::FullScan(const std::string& user,
                                             const std::string& table) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->FullScan();
}

Result<exec::DataFrame> JustEngine::AttributeQuery(const std::string& user,
                                                   const std::string& table,
                                                   const std::string& column,
                                                   const exec::Value& value,
                                                   QueryStats* stats) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->AttributeQuery(column, value, stats);
}

Result<exec::BatchVector> JustEngine::SpatialRangeQueryBatch(
    const std::string& user, const std::string& table, const geo::Mbr& box,
    QueryStats* stats) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->SpatialRangeQueryBatch(box, stats);
}

Result<exec::BatchVector> JustEngine::StRangeQueryBatch(
    const std::string& user, const std::string& table, const geo::Mbr& box,
    TimestampMs t_min, TimestampMs t_max, QueryStats* stats) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->StRangeQueryBatch(box, t_min, t_max, stats);
}

Result<exec::BatchVector> JustEngine::FullScanBatch(const std::string& user,
                                                    const std::string& table) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->FullScanBatch();
}

Result<exec::BatchVector> JustEngine::AttributeQueryBatch(
    const std::string& user, const std::string& table,
    const std::string& column, const exec::Value& value, QueryStats* stats) {
  JUST_ASSIGN_OR_RETURN(auto bound, GetTable(user, table));
  return bound->AttributeQueryBatch(column, value, stats);
}

Result<std::unique_ptr<ResultSet>> JustEngine::MakeResultSet(
    exec::DataFrame frame) {
  return ResultSet::Make(std::move(frame), options_.result_options);
}

Status JustEngine::CreateView(const std::string& user, const std::string& name,
                              exec::DataFrame frame) {
  std::lock_guard<std::mutex> lock(mu_);
  views_[ViewKey(user, name)] = std::move(frame);
  return Status::OK();
}

Result<exec::DataFrame> JustEngine::GetView(const std::string& user,
                                            const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(ViewKey(user, name));
  if (it == views_.end()) return Status::NotFound("no such view: " + name);
  return it->second;
}

Status JustEngine::DropView(const std::string& user, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (views_.erase(ViewKey(user, name)) == 0) {
    return Status::NotFound("no such view: " + name);
  }
  return Status::OK();
}

bool JustEngine::ViewExists(const std::string& user,
                            const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.count(ViewKey(user, name)) != 0;
}

std::vector<std::string> JustEngine::ShowViews(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  std::string prefix = user + ".";
  for (const auto& [key, frame] : views_) {
    if (key.rfind(prefix, 0) == 0) names.push_back(key.substr(prefix.size()));
  }
  return names;
}

Status JustEngine::StoreViewToTable(const std::string& user,
                                    const std::string& view,
                                    const std::string& table) {
  JUST_ASSIGN_OR_RETURN(auto frame, GetView(user, view));
  if (!catalog_->TableExists(user, table)) {
    // Auto-create a common table mirroring the view schema (Section IV-D).
    meta::TableMeta table_meta;
    table_meta.user = user;
    table_meta.name = table;
    for (const exec::Field& f : frame.schema().fields()) {
      table_meta.columns.push_back(
          meta::ColumnDef{f.name, f.type, false, "", ""});
    }
    JUST_RETURN_NOT_OK(CreateTable(std::move(table_meta)));
  }
  return InsertBatch(user, table, frame.rows());
}

Status JustEngine::Finalize() {
  JUST_RETURN_NOT_OK(cluster_->FlushAll());
  return cluster_->CompactAll();
}

JustEngine::StorageStats JustEngine::GetStorageStats() const {
  auto stats = cluster_->GetStats();
  return StorageStats{stats.disk_bytes, stats.entries};
}

}  // namespace just::core
