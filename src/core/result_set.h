#ifndef JUST_CORE_RESULT_SET_H_
#define JUST_CORE_RESULT_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/dataframe.h"

namespace just::core {

/// Cursor-style result delivery (Figure 2's data flow): a result smaller
/// than the configured threshold is held in memory and returned directly;
/// a larger one is split into chunk files on disk (the HDFS multi-part
/// transfer) and streamed back chunk by chunk, so the driver never
/// materializes everything — "users can traverse the result in a way like
/// the database cursor."
class ResultSet {
 public:
  struct Options {
    size_t direct_row_limit = 10000;  ///< above this, spill to chunks
    size_t rows_per_chunk = 4096;
    std::string spill_dir = "/tmp/just_spill";
  };

  /// Builds a result set, spilling if needed. `frame` is consumed.
  static Result<std::unique_ptr<ResultSet>> Make(exec::DataFrame frame,
                                                 const Options& options);

  ~ResultSet();

  const exec::Schema& schema() const { return *schema_; }
  size_t total_rows() const { return total_rows_; }
  bool spilled() const { return !chunk_paths_.empty(); }

  /// Cursor interface.
  bool HasNext();
  Result<exec::Row> Next();

  /// Convenience: drains the remaining rows into a DataFrame.
  Result<exec::DataFrame> ToDataFrame();

 private:
  ResultSet() = default;

  Status LoadChunk(size_t chunk_index);

  std::shared_ptr<exec::Schema> schema_;
  size_t total_rows_ = 0;
  // Direct mode:
  std::vector<exec::Row> direct_rows_;
  // Spilled mode:
  std::vector<std::string> chunk_paths_;
  std::vector<exec::Row> current_chunk_;
  size_t current_chunk_index_ = 0;
  size_t cursor_in_chunk_ = 0;
  size_t delivered_ = 0;
};

}  // namespace just::core

#endif  // JUST_CORE_RESULT_SET_H_
