#include "meta/catalog.h"

#include <cstdio>
#include <filesystem>

#include "common/json.h"

namespace just::meta {

int TableMeta::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

std::shared_ptr<exec::Schema> TableMeta::MakeSchema() const {
  auto schema = std::make_shared<exec::Schema>();
  for (const ColumnDef& col : columns) {
    schema->AddField(exec::Field{col.name, col.type});
  }
  return schema;
}

const SecondaryIndexDef* TableMeta::FindSecondaryIndex(
    const std::string& index_name) const {
  for (const SecondaryIndexDef& def : secondary_indexes) {
    if (def.name == index_name) return &def;
  }
  return nullptr;
}

const SecondaryIndexDef* TableMeta::ReadySecondaryIndexOn(
    const std::string& column_name) const {
  for (const SecondaryIndexDef& def : secondary_indexes) {
    if (def.column == column_name && def.state == IndexState::kReady) {
      return &def;
    }
  }
  return nullptr;
}

namespace {

JsonValue TableToJson(const TableMeta& table) {
  std::map<std::string, JsonValue> obj;
  obj["user"] = JsonValue::String(table.user);
  obj["name"] = JsonValue::String(table.name);
  obj["kind"] = JsonValue::String(table.kind == TableKind::kCommon
                                      ? "common"
                                      : "plugin");
  obj["plugin"] = JsonValue::String(table.plugin);
  obj["fid"] = JsonValue::String(table.fid_column);
  obj["geom"] = JsonValue::String(table.geom_column);
  obj["time"] = JsonValue::String(table.time_column);
  obj["id"] = JsonValue::Number(static_cast<double>(table.table_id));
  std::vector<JsonValue> cols;
  for (const ColumnDef& col : table.columns) {
    std::map<std::string, JsonValue> c;
    c["name"] = JsonValue::String(col.name);
    c["type"] = JsonValue::String(exec::DataTypeName(col.type));
    c["pk"] = JsonValue::Bool(col.primary_key);
    c["srid"] = JsonValue::String(col.srid);
    c["compress"] = JsonValue::String(col.compress);
    cols.push_back(JsonValue::Object(std::move(c)));
  }
  obj["columns"] = JsonValue::Array(std::move(cols));
  std::vector<JsonValue> idxs;
  for (const IndexConfig& idx : table.indexes) {
    std::map<std::string, JsonValue> x;
    x["type"] = JsonValue::String(curve::IndexTypeName(idx.type));
    x["period_ms"] = JsonValue::Number(static_cast<double>(idx.period_len_ms));
    idxs.push_back(JsonValue::Object(std::move(x)));
  }
  obj["indexes"] = JsonValue::Array(std::move(idxs));
  std::vector<JsonValue> attrs;
  for (const std::string& col : table.attr_indexes) {
    attrs.push_back(JsonValue::String(col));
  }
  obj["attrs"] = JsonValue::Array(std::move(attrs));
  std::vector<JsonValue> sec;
  for (const SecondaryIndexDef& def : table.secondary_indexes) {
    std::map<std::string, JsonValue> s;
    s["name"] = JsonValue::String(def.name);
    s["column"] = JsonValue::String(def.column);
    s["slot"] = JsonValue::Number(static_cast<double>(def.slot));
    s["state"] = JsonValue::String(def.state == IndexState::kReady
                                       ? "ready"
                                       : "building");
    sec.push_back(JsonValue::Object(std::move(s)));
  }
  obj["sec_indexes"] = JsonValue::Array(std::move(sec));
  obj["next_slot"] =
      JsonValue::Number(static_cast<double>(table.next_index_slot));
  obj["gen"] = JsonValue::Number(static_cast<double>(table.generation));
  return JsonValue::Object(std::move(obj));
}

Result<TableMeta> TableFromJson(const JsonValue& json) {
  TableMeta table;
  table.user = json.GetString("user");
  table.name = json.GetString("name");
  table.kind =
      json.GetString("kind") == "plugin" ? TableKind::kPlugin
                                         : TableKind::kCommon;
  table.plugin = json.GetString("plugin");
  table.fid_column = json.GetString("fid");
  table.geom_column = json.GetString("geom");
  table.time_column = json.GetString("time");
  table.table_id = static_cast<uint64_t>(json.Get("id").number_value());
  for (const JsonValue& c : json.Get("columns").array_items()) {
    ColumnDef col;
    col.name = c.GetString("name");
    JUST_ASSIGN_OR_RETURN(col.type, exec::ParseDataType(c.GetString("type")));
    col.primary_key = c.Get("pk").bool_value();
    col.srid = c.GetString("srid");
    col.compress = c.GetString("compress");
    table.columns.push_back(std::move(col));
  }
  for (const JsonValue& x : json.Get("indexes").array_items()) {
    IndexConfig idx;
    JUST_ASSIGN_OR_RETURN(idx.type,
                          curve::ParseIndexType(x.GetString("type")));
    idx.period_len_ms =
        static_cast<int64_t>(x.Get("period_ms").number_value());
    if (idx.period_len_ms <= 0) idx.period_len_ms = kMillisPerDay;
    table.indexes.push_back(idx);
  }
  for (const JsonValue& a : json.Get("attrs").array_items()) {
    if (a.is_string()) table.attr_indexes.push_back(a.string_value());
  }
  // Absent in catalogs written before secondary indexes existed.
  for (const JsonValue& s : json.Get("sec_indexes").array_items()) {
    SecondaryIndexDef def;
    def.name = s.GetString("name");
    def.column = s.GetString("column");
    def.slot = static_cast<uint32_t>(s.Get("slot").number_value());
    def.state = s.GetString("state") == "ready" ? IndexState::kReady
                                                : IndexState::kBuilding;
    table.secondary_indexes.push_back(std::move(def));
  }
  table.next_index_slot =
      static_cast<uint32_t>(json.Get("next_slot").number_value());
  table.generation = static_cast<uint64_t>(json.Get("gen").number_value());
  return table;
}

// Quota lines share the catalog's JSONL file with table lines and are told
// apart by their non-empty "tenant" member (table lines have "user"/"name"
// instead), so catalogs written before quotas existed load unchanged.
JsonValue QuotaToJson(const std::string& tenant, const TenantQuotaConfig& q) {
  std::map<std::string, JsonValue> obj;
  obj["tenant"] = JsonValue::String(tenant);
  obj["write_rps"] =
      JsonValue::Number(static_cast<double>(q.write_rows_per_sec));
  obj["write_burst"] =
      JsonValue::Number(static_cast<double>(q.write_burst_rows));
  obj["scan_bps"] =
      JsonValue::Number(static_cast<double>(q.scan_bytes_per_sec));
  obj["scan_burst"] =
      JsonValue::Number(static_cast<double>(q.scan_burst_bytes));
  return JsonValue::Object(std::move(obj));
}

TenantQuotaConfig QuotaFromJson(const JsonValue& json) {
  TenantQuotaConfig q;
  q.write_rows_per_sec =
      static_cast<uint64_t>(json.Get("write_rps").number_value());
  q.write_burst_rows =
      static_cast<uint64_t>(json.Get("write_burst").number_value());
  q.scan_bytes_per_sec =
      static_cast<uint64_t>(json.Get("scan_bps").number_value());
  q.scan_burst_bytes =
      static_cast<uint64_t>(json.Get("scan_burst").number_value());
  return q;
}

}  // namespace

std::string Catalog::Key(const std::string& user, const std::string& name) {
  return user + "." + name;
}

Result<std::unique_ptr<Catalog>> Catalog::Open(const std::string& path) {
  auto catalog = std::unique_ptr<Catalog>(new Catalog(path));
  JUST_RETURN_NOT_OK(catalog->Load());
  return catalog;
}

Status Catalog::Load() {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // fresh catalog
  std::string content;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    JUST_ASSIGN_OR_RETURN(auto json, ParseJson(line));
    std::string tenant = json.GetString("tenant");
    if (!tenant.empty()) {
      tenant_quotas_[tenant] = QuotaFromJson(json);
      continue;
    }
    JUST_ASSIGN_OR_RETURN(auto table, TableFromJson(json));
    next_table_id_ = std::max(next_table_id_, table.table_id + 1);
    next_generation_ = std::max(next_generation_, table.generation + 1);
    tables_[Key(table.user, table.name)] = std::move(table);
  }
  return Status::OK();
}

Status Catalog::PersistLocked() const {
  std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot write catalog " + tmp);
  for (const auto& [key, table] : tables_) {
    std::string line = TableToJson(table).ToString() + "\n";
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      std::fclose(f);
      return Status::IOError("catalog write failed");
    }
  }
  for (const auto& [tenant, quota] : tenant_quotas_) {
    std::string line = QuotaToJson(tenant, quota).ToString() + "\n";
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      std::fclose(f);
      return Status::IOError("catalog write failed");
    }
  }
  if (std::fflush(f) != 0 || std::fclose(f) != 0) {
    return Status::IOError("catalog flush failed");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("catalog rename failed");
  }
  return Status::OK();
}

Status Catalog::CreateTable(TableMeta* table) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Key(table->user, table->name);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table already exists: " + table->name);
  }
  table->table_id = next_table_id_++;
  table->generation = next_generation_++;
  tables_[key] = *table;
  Status st = PersistLocked();
  if (!st.ok()) {
    tables_.erase(key);  // roll back the in-memory change
    --next_table_id_;
    --next_generation_;
  }
  return st;
}

Status Catalog::AddIndex(const std::string& user, const std::string& name,
                         const SecondaryIndexDef& def) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Key(user, name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  TableMeta saved = it->second;
  for (const SecondaryIndexDef& existing : it->second.secondary_indexes) {
    if (existing.name == def.name) {
      return Status::AlreadyExists("index already exists: " + def.name);
    }
  }
  it->second.secondary_indexes.push_back(def);
  it->second.next_index_slot =
      std::max(it->second.next_index_slot, def.slot + 1);
  it->second.generation = next_generation_++;
  Status st = PersistLocked();
  if (!st.ok()) {
    it->second = std::move(saved);
    --next_generation_;
  }
  return st;
}

Status Catalog::DropIndex(const std::string& user, const std::string& name,
                          const std::string& index_name,
                          SecondaryIndexDef* dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Key(user, name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  auto& defs = it->second.secondary_indexes;
  auto def_it = defs.begin();
  while (def_it != defs.end() && def_it->name != index_name) ++def_it;
  if (def_it == defs.end()) {
    return Status::NotFound("no such index: " + index_name);
  }
  TableMeta saved = it->second;
  SecondaryIndexDef removed = *def_it;
  defs.erase(def_it);
  it->second.generation = next_generation_++;
  Status st = PersistLocked();
  if (!st.ok()) {
    it->second = std::move(saved);
    --next_generation_;
    return st;
  }
  if (dropped != nullptr) *dropped = std::move(removed);
  return st;
}

Status Catalog::SetIndexState(const std::string& user, const std::string& name,
                              const std::string& index_name,
                              IndexState state) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Key(user, name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  for (SecondaryIndexDef& def : it->second.secondary_indexes) {
    if (def.name != index_name) continue;
    IndexState saved_state = def.state;
    uint64_t saved_gen = it->second.generation;
    def.state = state;
    it->second.generation = next_generation_++;
    Status st = PersistLocked();
    if (!st.ok()) {
      def.state = saved_state;
      it->second.generation = saved_gen;
      --next_generation_;
    }
    return st;
  }
  return Status::NotFound("no such index: " + index_name);
}

Status Catalog::DropTable(const std::string& user, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Key(user, name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  TableMeta saved = it->second;
  tables_.erase(it);
  Status st = PersistLocked();
  if (!st.ok()) tables_[Key(user, name)] = saved;
  return st;
}

Result<TableMeta> Catalog::GetTable(const std::string& user,
                                    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Key(user, name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second;
}

bool Catalog::TableExists(const std::string& user,
                          const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(Key(user, name)) != 0;
}

Status Catalog::SetTenantQuota(const std::string& tenant,
                               const TenantQuotaConfig& quota) {
  if (tenant.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_quotas_.find(tenant);
  bool existed = it != tenant_quotas_.end();
  TenantQuotaConfig saved = existed ? it->second : TenantQuotaConfig{};
  tenant_quotas_[tenant] = quota;
  Status st = PersistLocked();
  if (!st.ok()) {
    if (existed) {
      tenant_quotas_[tenant] = saved;
    } else {
      tenant_quotas_.erase(tenant);
    }
  }
  return st;
}

bool Catalog::GetTenantQuota(const std::string& tenant,
                             TenantQuotaConfig* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_quotas_.find(tenant);
  if (it == tenant_quotas_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

std::map<std::string, TenantQuotaConfig> Catalog::AllTenantQuotas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenant_quotas_;
}

std::vector<TableMeta> Catalog::AllTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TableMeta> out;
  for (const auto& [key, table] : tables_) out.push_back(table);
  return out;
}

std::vector<TableMeta> Catalog::ListTables(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TableMeta> out;
  for (const auto& [key, table] : tables_) {
    if (table.user == user) out.push_back(table);
  }
  return out;
}

}  // namespace just::meta
