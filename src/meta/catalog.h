#ifndef JUST_META_CATALOG_H_
#define JUST_META_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "curve/index_strategy.h"
#include "exec/dataframe.h"

namespace just::meta {

/// Table kinds of Section IV-D. (View tables live in memory and are tracked
/// by the engine session state, not the durable catalog.)
enum class TableKind { kCommon, kPlugin };

/// One column declaration from CREATE TABLE.
struct ColumnDef {
  std::string name;
  exec::DataType type = exec::DataType::kNull;
  bool primary_key = false;
  std::string srid;      ///< e.g. "4326" from point:srid=4326
  std::string compress;  ///< e.g. "gzip" from st_series:compress=gzip|zip
};

/// One secondary index over the table's spatio-temporal fields.
struct IndexConfig {
  curve::IndexType type = curve::IndexType::kZ2;
  int64_t period_len_ms = kMillisPerDay;
};

/// Everything the meta table records about a data table: kind, fields,
/// index configuration, and the special-column bindings.
struct TableMeta {
  std::string user;    ///< namespace owner (Section VII-A)
  std::string name;    ///< logical table name
  TableKind kind = TableKind::kCommon;
  std::string plugin;  ///< plugin type name, e.g. "trajectory"
  std::vector<ColumnDef> columns;
  std::vector<IndexConfig> indexes;
  std::string fid_column;
  std::string geom_column;
  std::string time_column;
  /// Columns carrying a secondary attribute index (Figure 1's "Attribute
  /// Indexing"): equality predicates on them avoid full scans.
  std::vector<std::string> attr_indexes;
  uint64_t table_id = 0;  ///< storage key prefix, assigned by the catalog

  int ColumnIndex(const std::string& column_name) const;
  std::shared_ptr<exec::Schema> MakeSchema() const;
};

/// The meta store (the role MySQL plays in the paper): durable, transactional
/// table metadata with namespace isolation. Persistence is a journaled JSON
/// file rewritten atomically on every DDL commit.
class Catalog {
 public:
  static Result<std::unique_ptr<Catalog>> Open(const std::string& path);

  /// Assigns `table_id` and persists. Fails on duplicate (user, name).
  Status CreateTable(TableMeta* table);

  Status DropTable(const std::string& user, const std::string& name);

  Result<TableMeta> GetTable(const std::string& user,
                             const std::string& name) const;

  bool TableExists(const std::string& user, const std::string& name) const;

  /// Tables owned by `user`, sorted by name (SHOW TABLES).
  std::vector<TableMeta> ListTables(const std::string& user) const;

 private:
  explicit Catalog(std::string path) : path_(std::move(path)) {}

  Status Load();
  Status PersistLocked() const;
  static std::string Key(const std::string& user, const std::string& name);

  std::string path_;
  mutable std::mutex mu_;
  std::map<std::string, TableMeta> tables_;
  uint64_t next_table_id_ = 1;
};

}  // namespace just::meta

#endif  // JUST_META_CATALOG_H_
