#ifndef JUST_META_CATALOG_H_
#define JUST_META_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "curve/index_strategy.h"
#include "exec/dataframe.h"

namespace just::meta {

/// Table kinds of Section IV-D. (View tables live in memory and are tracked
/// by the engine session state, not the durable catalog.)
enum class TableKind { kCommon, kPlugin };

/// One column declaration from CREATE TABLE.
struct ColumnDef {
  std::string name;
  exec::DataType type = exec::DataType::kNull;
  bool primary_key = false;
  std::string srid;      ///< e.g. "4326" from point:srid=4326
  std::string compress;  ///< e.g. "gzip" from st_series:compress=gzip|zip
};

/// One secondary index over the table's spatio-temporal fields.
struct IndexConfig {
  curve::IndexType type = curve::IndexType::kZ2;
  int64_t period_len_ms = kMillisPerDay;
};

/// Lifecycle of a secondary attribute index. `kBuilding` indexes are being
/// backfilled online: writers already maintain them, but queries must not
/// use them until the atomic catalog flip to `kReady`.
enum class IndexState { kBuilding, kReady };

/// One CREATE INDEX secondary index: entries live in their own key-prefix
/// slot of the table's key space, keyed by an order-preserving encoding of
/// the indexed column value followed by the row fid, with the full encoded
/// row as a covering value.
struct SecondaryIndexDef {
  std::string name;    ///< index name, unique within the table
  std::string column;  ///< indexed column name
  uint32_t slot = 0;   ///< key-prefix slot (assigned at creation, stable)
  IndexState state = IndexState::kBuilding;
};

/// Everything the meta table records about a data table: kind, fields,
/// index configuration, and the special-column bindings.
struct TableMeta {
  std::string user;    ///< namespace owner (Section VII-A)
  std::string name;    ///< logical table name
  TableKind kind = TableKind::kCommon;
  std::string plugin;  ///< plugin type name, e.g. "trajectory"
  std::vector<ColumnDef> columns;
  std::vector<IndexConfig> indexes;
  std::string fid_column;
  std::string geom_column;
  std::string time_column;
  /// Columns carrying a secondary attribute index (Figure 1's "Attribute
  /// Indexing"): equality predicates on them avoid full scans.
  std::vector<std::string> attr_indexes;
  /// CREATE INDEX secondary indexes (point/range capable, online build).
  std::vector<SecondaryIndexDef> secondary_indexes;
  /// Next free secondary-index slot: monotonic over the table's lifetime so
  /// a dropped index's slot (and any orphaned entries a crashed drop left
  /// behind) is never reused.
  uint32_t next_index_slot = 0;
  uint64_t table_id = 0;  ///< storage key prefix, assigned by the catalog
  /// Catalog generation: globally monotonic, reassigned on CREATE TABLE and
  /// bumped on every index DDL touching this table. Compiled-plan caches key
  /// on it so any DDL invalidates cached programs for the table.
  uint64_t generation = 0;

  int ColumnIndex(const std::string& column_name) const;
  std::shared_ptr<exec::Schema> MakeSchema() const;
  /// The secondary index named `index_name`, or nullptr.
  const SecondaryIndexDef* FindSecondaryIndex(
      const std::string& index_name) const;
  /// A `kReady` secondary index over `column_name`, or nullptr.
  const SecondaryIndexDef* ReadySecondaryIndexOn(
      const std::string& column_name) const;
};

/// Per-tenant (namespace/user) resource quota. Zero means unlimited for
/// that dimension; burst values of zero default to one second's worth of
/// the rate. Enforced by stream::QuotaManager; stored here so limits
/// survive restarts alongside the rest of the metadata.
struct TenantQuotaConfig {
  uint64_t write_rows_per_sec = 0;
  uint64_t write_burst_rows = 0;
  uint64_t scan_bytes_per_sec = 0;
  uint64_t scan_burst_bytes = 0;
};

/// The meta store (the role MySQL plays in the paper): durable, transactional
/// table metadata with namespace isolation. Persistence is a journaled JSON
/// file rewritten atomically on every DDL commit.
class Catalog {
 public:
  static Result<std::unique_ptr<Catalog>> Open(const std::string& path);

  /// Assigns `table_id` and persists. Fails on duplicate (user, name).
  Status CreateTable(TableMeta* table);

  Status DropTable(const std::string& user, const std::string& name);

  /// Registers a secondary index on (user, name) and persists. Fails on a
  /// duplicate index name. Bumps the table's generation.
  Status AddIndex(const std::string& user, const std::string& name,
                  const SecondaryIndexDef& def);

  /// Removes the secondary index and persists; `dropped` (optional)
  /// receives the removed definition. Bumps the table's generation.
  Status DropIndex(const std::string& user, const std::string& name,
                   const std::string& index_name,
                   SecondaryIndexDef* dropped = nullptr);

  /// Flips the index's lifecycle state (the atomic `building` -> `ready`
  /// commit point of an online build). Bumps the table's generation.
  Status SetIndexState(const std::string& user, const std::string& name,
                       const std::string& index_name, IndexState state);

  Result<TableMeta> GetTable(const std::string& user,
                             const std::string& name) const;

  bool TableExists(const std::string& user, const std::string& name) const;

  /// Tables owned by `user`, sorted by name (SHOW TABLES).
  std::vector<TableMeta> ListTables(const std::string& user) const;

  /// Every table in the catalog (the engine's startup sweep over leftover
  /// `building` indexes).
  std::vector<TableMeta> AllTables() const;

  /// Sets (or replaces) `tenant`'s quota and persists. An all-zero config
  /// still persists — it pins the tenant to "explicitly unlimited".
  Status SetTenantQuota(const std::string& tenant,
                        const TenantQuotaConfig& quota);

  /// True (and fills `out`) when `tenant` has a stored quota.
  bool GetTenantQuota(const std::string& tenant, TenantQuotaConfig* out) const;

  /// Every stored tenant quota (the engine's startup load into the
  /// QuotaManager), keyed by tenant.
  std::map<std::string, TenantQuotaConfig> AllTenantQuotas() const;

 private:
  explicit Catalog(std::string path) : path_(std::move(path)) {}

  Status Load();
  Status PersistLocked() const;
  static std::string Key(const std::string& user, const std::string& name);

  std::string path_;
  mutable std::mutex mu_;
  std::map<std::string, TableMeta> tables_;
  std::map<std::string, TenantQuotaConfig> tenant_quotas_;
  uint64_t next_table_id_ = 1;
  uint64_t next_generation_ = 1;
};

}  // namespace just::meta

#endif  // JUST_META_CATALOG_H_
