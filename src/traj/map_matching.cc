#include "traj/map_matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace just::traj {

namespace {
struct Candidate {
  const RoadSegment* segment;
  geo::Point snapped;
  double emission_logp;
};
}  // namespace

std::vector<MatchedPoint> MapMatch(const Trajectory& trajectory,
                                   const RoadNetwork& network,
                                   const MapMatchOptions& options) {
  const auto& pts = trajectory.points();
  std::vector<MatchedPoint> result;
  result.reserve(pts.size());
  if (pts.empty()) return result;

  // Candidate generation per fix.
  std::vector<std::vector<Candidate>> layers(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    auto nearby = network.Nearby(pts[i].position, options.candidate_radius_deg);
    std::sort(nearby.begin(), nearby.end(),
              [&](const RoadSegment* a, const RoadSegment* b) {
                return a->Distance(pts[i].position) <
                       b->Distance(pts[i].position);
              });
    if (static_cast<int>(nearby.size()) > options.max_candidates) {
      nearby.resize(options.max_candidates);
    }
    for (const RoadSegment* seg : nearby) {
      Candidate c;
      c.segment = seg;
      c.snapped = seg->Project(pts[i].position);
      double d = geo::EuclideanDistance(pts[i].position, c.snapped);
      double z = d / options.sigma_deg;
      c.emission_logp = -0.5 * z * z;
      layers[i].push_back(c);
    }
  }

  // Viterbi over layers; empty layers emit an unmatched point and reset the
  // chain.
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> score(pts.size());
  std::vector<std::vector<int>> back(pts.size());
  int prev_layer = -1;
  for (size_t i = 0; i < pts.size(); ++i) {
    const auto& layer = layers[i];
    score[i].assign(layer.size(), kNegInf);
    back[i].assign(layer.size(), -1);
    if (layer.empty()) {
      prev_layer = -1;
      continue;
    }
    if (prev_layer < 0) {
      for (size_t s = 0; s < layer.size(); ++s) {
        score[i][s] = layer[s].emission_logp;
      }
    } else {
      size_t p = static_cast<size_t>(prev_layer);
      double gps_step = geo::EuclideanDistance(pts[p].position,
                                               pts[i].position);
      for (size_t s = 0; s < layer.size(); ++s) {
        for (size_t t = 0; t < layers[p].size(); ++t) {
          if (score[p][t] == kNegInf) continue;
          double snap_step =
              geo::EuclideanDistance(layers[p][t].snapped, layer[s].snapped);
          double trans_logp = -std::fabs(snap_step - gps_step) /
                              options.transition_scale_deg;
          double candidate_score =
              score[p][t] + trans_logp + layer[s].emission_logp;
          if (candidate_score > score[i][s]) {
            score[i][s] = candidate_score;
            back[i][s] = static_cast<int>(t);
          }
        }
        if (score[i][s] == kNegInf) {
          // Chain break (all predecessors unreachable): restart.
          score[i][s] = layer[s].emission_logp;
        }
      }
    }
    prev_layer = static_cast<int>(i);
  }

  // Backtrack per maximal chain. Build choice[] by walking chains backward.
  std::vector<int> choice(pts.size(), -1);
  size_t i = pts.size();
  while (i > 0) {
    --i;
    if (layers[i].empty() || choice[i] != -1) continue;
    // Find best terminal state at i.
    int best = -1;
    for (size_t s = 0; s < layers[i].size(); ++s) {
      if (best < 0 || score[i][s] > score[i][best]) {
        best = static_cast<int>(s);
      }
    }
    // Walk the back pointers toward the chain start.
    size_t j = i;
    int state = best;
    for (;;) {
      choice[j] = state;
      int prev_state = back[j][state];
      // Find the previous non-empty layer.
      size_t k = j;
      bool has_prev = false;
      while (k > 0) {
        --k;
        if (!layers[k].empty()) {
          has_prev = true;
          break;
        }
      }
      if (!has_prev || prev_state < 0 || choice[k] != -1) break;
      j = k;
      state = prev_state;
    }
  }

  for (size_t idx = 0; idx < pts.size(); ++idx) {
    MatchedPoint mp;
    mp.raw = pts[idx];
    if (!layers[idx].empty() && choice[idx] >= 0) {
      const Candidate& c = layers[idx][static_cast<size_t>(choice[idx])];
      mp.segment_id = c.segment->id;
      mp.snapped = c.snapped;
    } else {
      mp.snapped = pts[idx].position;
    }
    result.push_back(mp);
  }
  return result;
}

}  // namespace just::traj
