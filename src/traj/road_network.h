#ifndef JUST_TRAJ_ROAD_NETWORK_H_
#define JUST_TRAJ_ROAD_NETWORK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/point.h"

namespace just::traj {

/// A road segment: a directed polyline edge between two intersections.
struct RoadSegment {
  int64_t id = 0;
  int64_t from_node = 0;
  int64_t to_node = 0;
  std::vector<geo::Point> shape;  ///< at least two points
  double length_m = 0;

  geo::Mbr Bounds() const;
  /// Minimum degree-space distance from p to the segment's polyline.
  double Distance(const geo::Point& p) const;
  /// Closest point on the polyline to p.
  geo::Point Project(const geo::Point& p) const;
};

/// An in-memory road network with a uniform-grid spatial index on segments.
/// This is the substrate the map-matching operator (and the paper's Map
/// Recovery application, Section VII-B) runs against.
class RoadNetwork {
 public:
  void AddSegment(RoadSegment segment);

  /// Must be called after the last AddSegment and before queries.
  void BuildIndex(double cell_deg = 0.005);

  const std::vector<RoadSegment>& segments() const { return segments_; }

  /// Segments within `radius_deg` of p (candidate set for matching).
  std::vector<const RoadSegment*> Nearby(const geo::Point& p,
                                         double radius_deg) const;

  /// The single closest segment, or nullptr for an empty network.
  const RoadSegment* Nearest(const geo::Point& p) const;

  /// Builds a synthetic Manhattan-style grid network covering `area` with
  /// `rows` x `cols` intersections — stands in for a real digital map.
  static RoadNetwork MakeGrid(const geo::Mbr& area, int rows, int cols);

 private:
  uint64_t CellKey(int64_t cx, int64_t cy) const;

  std::vector<RoadSegment> segments_;
  double cell_deg_ = 0.005;
  std::unordered_map<uint64_t, std::vector<uint32_t>> grid_;
  bool indexed_ = false;
};

}  // namespace just::traj

#endif  // JUST_TRAJ_ROAD_NETWORK_H_
