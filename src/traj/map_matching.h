#ifndef JUST_TRAJ_MAP_MATCHING_H_
#define JUST_TRAJ_MAP_MATCHING_H_

#include <cstdint>
#include <vector>

#include "traj/road_network.h"
#include "traj/trajectory.h"

namespace just::traj {

/// One matched fix: the chosen segment and the snapped position.
struct MatchedPoint {
  int64_t segment_id = -1;  ///< -1 when no candidate within the radius
  geo::Point snapped;
  GpsPoint raw;
};

struct MapMatchOptions {
  double candidate_radius_deg = 0.002;  ///< ~200 m candidate search radius
  int max_candidates = 6;
  /// Emission sigma (degrees): GPS error scale for the HMM.
  double sigma_deg = 0.0005;
  /// Transition weight penalizing jumps between distant segments.
  double transition_scale_deg = 0.002;
};

/// HMM map matching (the paper's st_trajMapMatching, Section V-D, after
/// [Newson & Krumm]): states are candidate segments per fix, emission
/// probability decays with snap distance, transition probability decays with
/// the discrepancy between the GPS displacement and the snapped
/// displacement; Viterbi selects the most likely segment sequence.
std::vector<MatchedPoint> MapMatch(const Trajectory& trajectory,
                                   const RoadNetwork& network,
                                   const MapMatchOptions& options = {});

}  // namespace just::traj

#endif  // JUST_TRAJ_MAP_MATCHING_H_
