#ifndef JUST_TRAJ_DBSCAN_H_
#define JUST_TRAJ_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace just::traj {

/// DBSCAN result: cluster id per input point; kNoise (-1) marks outliers.
/// Backs the paper's N-M analysis operation st_DBSCAN (Section V-D).
struct DbscanResult {
  static constexpr int kNoise = -1;
  std::vector<int> labels;
  int num_clusters = 0;
};

struct DbscanOptions {
  double radius = 0.001;  ///< epsilon, in degrees
  int min_pts = 4;        ///< density threshold (including the point itself)
};

/// Grid-accelerated DBSCAN [Ester et al., KDD 1996] in degree space.
DbscanResult Dbscan(const std::vector<geo::Point>& points,
                    const DbscanOptions& options);

}  // namespace just::traj

#endif  // JUST_TRAJ_DBSCAN_H_
