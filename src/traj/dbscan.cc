#include "traj/dbscan.h"

#include <cmath>
#include <cstdint>
#include <deque>
#include <unordered_map>

namespace just::traj {

namespace {
// Grid cell key for neighbor lookups: cell side = radius, so all neighbors
// of a point lie in its 3x3 cell block.
uint64_t CellKey(int64_t cx, int64_t cy) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
         static_cast<uint32_t>(cy);
}
}  // namespace

DbscanResult Dbscan(const std::vector<geo::Point>& points,
                    const DbscanOptions& options) {
  DbscanResult result;
  const size_t n = points.size();
  result.labels.assign(n, DbscanResult::kNoise);
  if (n == 0 || options.radius <= 0) return result;

  const double eps = options.radius;
  const double eps2 = eps * eps;
  std::unordered_map<uint64_t, std::vector<uint32_t>> grid;
  grid.reserve(n);
  auto cell_of = [&](const geo::Point& p) {
    return std::pair<int64_t, int64_t>(
        static_cast<int64_t>(std::floor(p.lng / eps)),
        static_cast<int64_t>(std::floor(p.lat / eps)));
  };
  for (size_t i = 0; i < n; ++i) {
    auto [cx, cy] = cell_of(points[i]);
    grid[CellKey(cx, cy)].push_back(static_cast<uint32_t>(i));
  }

  auto neighbors_of = [&](size_t i, std::vector<uint32_t>* out) {
    out->clear();
    auto [cx, cy] = cell_of(points[i]);
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        auto it = grid.find(CellKey(cx + dx, cy + dy));
        if (it == grid.end()) continue;
        for (uint32_t j : it->second) {
          double dlng = points[i].lng - points[j].lng;
          double dlat = points[i].lat - points[j].lat;
          if (dlng * dlng + dlat * dlat <= eps2) out->push_back(j);
        }
      }
    }
  };

  std::vector<bool> visited(n, false);
  std::vector<uint32_t> neigh, sub_neigh;
  for (size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = true;
    neighbors_of(i, &neigh);
    if (static_cast<int>(neigh.size()) < options.min_pts) continue;  // noise
    int cluster = result.num_clusters++;
    result.labels[i] = cluster;
    std::deque<uint32_t> frontier(neigh.begin(), neigh.end());
    while (!frontier.empty()) {
      uint32_t j = frontier.front();
      frontier.pop_front();
      if (result.labels[j] == DbscanResult::kNoise) {
        result.labels[j] = cluster;  // border point adoption
      }
      if (visited[j]) continue;
      visited[j] = true;
      neighbors_of(j, &sub_neigh);
      if (static_cast<int>(sub_neigh.size()) >= options.min_pts) {
        for (uint32_t k : sub_neigh) frontier.push_back(k);
      }
    }
  }
  return result;
}

}  // namespace just::traj
