#ifndef JUST_TRAJ_TRAJECTORY_H_
#define JUST_TRAJ_TRAJECTORY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_util.h"
#include "geo/point.h"

namespace just::traj {

/// One GPS fix.
struct GpsPoint {
  geo::Point position;
  TimestampMs time = 0;

  bool operator==(const GpsPoint& o) const {
    return position == o.position && time == o.time;
  }
};

/// A trajectory: the entity stored by the paper's "trajectory" plugin table
/// (Figure 6): MBR, start/end points and times, and the GPS list — the
/// big-bytes field the compression mechanism targets.
class Trajectory {
 public:
  Trajectory() = default;
  Trajectory(std::string oid, std::vector<GpsPoint> points)
      : oid_(std::move(oid)), points_(std::move(points)) {}

  const std::string& oid() const { return oid_; }
  const std::vector<GpsPoint>& points() const { return points_; }
  std::vector<GpsPoint>* mutable_points() { return &points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  geo::Mbr Bounds() const;
  TimestampMs start_time() const {
    return points_.empty() ? 0 : points_.front().time;
  }
  TimestampMs end_time() const {
    return points_.empty() ? 0 : points_.back().time;
  }
  const geo::Point& start_point() const { return points_.front().position; }
  const geo::Point& end_point() const { return points_.back().position; }

  /// Total path length in meters.
  double LengthMeters() const;

  /// GPS-list encodings for the storage layer. Raw: 24 bytes per point
  /// (two doubles + int64 time) — what JUSTnc stores. Delta: quantized
  /// (1e-6 deg, 1 ms) zig-zag varint deltas — the compact transform the
  /// general-purpose codec is applied on top of.
  std::string SerializeRaw() const;
  std::string SerializeDelta() const;
  static Result<Trajectory> DeserializeRaw(const std::string& oid,
                                           std::string_view bytes);
  static Result<Trajectory> DeserializeDelta(const std::string& oid,
                                             std::string_view bytes);

  bool operator==(const Trajectory& o) const {
    return oid_ == o.oid_ && points_ == o.points_;
  }

 private:
  std::string oid_;
  std::vector<GpsPoint> points_;
};

}  // namespace just::traj

#endif  // JUST_TRAJ_TRAJECTORY_H_
