#include "traj/road_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace just::traj {

geo::Mbr RoadSegment::Bounds() const {
  geo::Mbr box = geo::Mbr::Empty();
  for (const geo::Point& p : shape) box.Expand(p);
  return box;
}

double RoadSegment::Distance(const geo::Point& p) const {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < shape.size(); ++i) {
    best = std::min(best, geo::PointSegmentDistance(p, shape[i], shape[i + 1]));
  }
  return best;
}

geo::Point RoadSegment::Project(const geo::Point& p) const {
  double best = std::numeric_limits<double>::infinity();
  geo::Point best_point = shape.front();
  for (size_t i = 0; i + 1 < shape.size(); ++i) {
    const geo::Point& a = shape[i];
    const geo::Point& b = shape[i + 1];
    double abx = b.lng - a.lng;
    double aby = b.lat - a.lat;
    double ab2 = abx * abx + aby * aby;
    double t = ab2 == 0 ? 0
                        : std::clamp(((p.lng - a.lng) * abx +
                                      (p.lat - a.lat) * aby) /
                                         ab2,
                                     0.0, 1.0);
    geo::Point proj{a.lng + t * abx, a.lat + t * aby};
    double d = geo::EuclideanDistance(p, proj);
    if (d < best) {
      best = d;
      best_point = proj;
    }
  }
  return best_point;
}

void RoadNetwork::AddSegment(RoadSegment segment) {
  if (segment.length_m == 0 && segment.shape.size() >= 2) {
    for (size_t i = 0; i + 1 < segment.shape.size(); ++i) {
      segment.length_m +=
          geo::HaversineMeters(segment.shape[i], segment.shape[i + 1]);
    }
  }
  segments_.push_back(std::move(segment));
  indexed_ = false;
}

uint64_t RoadNetwork::CellKey(int64_t cx, int64_t cy) const {
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
         static_cast<uint32_t>(cy);
}

void RoadNetwork::BuildIndex(double cell_deg) {
  cell_deg_ = cell_deg;
  grid_.clear();
  for (uint32_t i = 0; i < segments_.size(); ++i) {
    geo::Mbr box = segments_[i].Bounds();
    auto cx0 = static_cast<int64_t>(std::floor(box.lng_min / cell_deg_));
    auto cx1 = static_cast<int64_t>(std::floor(box.lng_max / cell_deg_));
    auto cy0 = static_cast<int64_t>(std::floor(box.lat_min / cell_deg_));
    auto cy1 = static_cast<int64_t>(std::floor(box.lat_max / cell_deg_));
    for (int64_t cx = cx0; cx <= cx1; ++cx) {
      for (int64_t cy = cy0; cy <= cy1; ++cy) {
        grid_[CellKey(cx, cy)].push_back(i);
      }
    }
  }
  indexed_ = true;
}

std::vector<const RoadSegment*> RoadNetwork::Nearby(const geo::Point& p,
                                                    double radius_deg) const {
  std::vector<const RoadSegment*> out;
  if (!indexed_) return out;
  auto cx0 = static_cast<int64_t>(std::floor((p.lng - radius_deg) / cell_deg_));
  auto cx1 = static_cast<int64_t>(std::floor((p.lng + radius_deg) / cell_deg_));
  auto cy0 = static_cast<int64_t>(std::floor((p.lat - radius_deg) / cell_deg_));
  auto cy1 = static_cast<int64_t>(std::floor((p.lat + radius_deg) / cell_deg_));
  std::unordered_set<uint32_t> seen;
  for (int64_t cx = cx0; cx <= cx1; ++cx) {
    for (int64_t cy = cy0; cy <= cy1; ++cy) {
      auto it = grid_.find(CellKey(cx, cy));
      if (it == grid_.end()) continue;
      for (uint32_t idx : it->second) {
        if (!seen.insert(idx).second) continue;
        if (segments_[idx].Distance(p) <= radius_deg) {
          out.push_back(&segments_[idx]);
        }
      }
    }
  }
  return out;
}

const RoadSegment* RoadNetwork::Nearest(const geo::Point& p) const {
  // Expanding-ring search over the grid; falls back to linear scan for
  // tiny networks.
  if (segments_.empty()) return nullptr;
  double radius = cell_deg_;
  for (int attempt = 0; attempt < 12; ++attempt) {
    auto nearby = Nearby(p, radius);
    if (!nearby.empty()) {
      const RoadSegment* best = nullptr;
      double best_d = std::numeric_limits<double>::infinity();
      for (const RoadSegment* seg : nearby) {
        double d = seg->Distance(p);
        if (d < best_d) {
          best_d = d;
          best = seg;
        }
      }
      return best;
    }
    radius *= 2;
  }
  const RoadSegment* best = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  for (const RoadSegment& seg : segments_) {
    double d = seg.Distance(p);
    if (d < best_d) {
      best_d = d;
      best = &seg;
    }
  }
  return best;
}

RoadNetwork RoadNetwork::MakeGrid(const geo::Mbr& area, int rows, int cols) {
  RoadNetwork network;
  rows = std::max(2, rows);
  cols = std::max(2, cols);
  double dlat = area.Height() / (rows - 1);
  double dlng = area.Width() / (cols - 1);
  auto node_id = [&](int r, int c) {
    return static_cast<int64_t>(r) * cols + c;
  };
  auto node_pos = [&](int r, int c) {
    return geo::Point{area.lng_min + c * dlng, area.lat_min + r * dlat};
  };
  int64_t seg_id = 0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        RoadSegment s;
        s.id = seg_id++;
        s.from_node = node_id(r, c);
        s.to_node = node_id(r, c + 1);
        s.shape = {node_pos(r, c), node_pos(r, c + 1)};
        network.AddSegment(std::move(s));
      }
      if (r + 1 < rows) {
        RoadSegment s;
        s.id = seg_id++;
        s.from_node = node_id(r, c);
        s.to_node = node_id(r + 1, c);
        s.shape = {node_pos(r, c), node_pos(r + 1, c)};
        network.AddSegment(std::move(s));
      }
    }
  }
  network.BuildIndex(std::max(dlat, dlng));
  return network;
}

}  // namespace just::traj
