#include "traj/trajectory.h"

#include <cmath>

#include "common/bytes.h"

namespace just::traj {

geo::Mbr Trajectory::Bounds() const {
  geo::Mbr box = geo::Mbr::Empty();
  for (const GpsPoint& p : points_) box.Expand(p.position);
  return box;
}

double Trajectory::LengthMeters() const {
  double total = 0;
  for (size_t i = 1; i < points_.size(); ++i) {
    total += geo::HaversineMeters(points_[i - 1].position,
                                  points_[i].position);
  }
  return total;
}

std::string Trajectory::SerializeRaw() const {
  std::string out;
  PutVarint64(&out, points_.size());
  for (const GpsPoint& p : points_) {
    PutFixed64(&out, OrderedDoubleBits(p.position.lng));
    PutFixed64(&out, OrderedDoubleBits(p.position.lat));
    PutFixed64(&out, static_cast<uint64_t>(p.time));
  }
  return out;
}

Result<Trajectory> Trajectory::DeserializeRaw(const std::string& oid,
                                              std::string_view bytes) {
  const char* p = bytes.data();
  const char* limit = p + bytes.size();
  uint64_t n;
  if (!GetVarint64(&p, limit, &n)) return Status::Corruption("bad gps list");
  if (static_cast<uint64_t>(limit - p) < n * 24) {
    return Status::Corruption("truncated gps list");
  }
  std::vector<GpsPoint> points;
  points.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    GpsPoint gp;
    gp.position.lng = OrderedBitsToDouble(GetFixed64(p));
    gp.position.lat = OrderedBitsToDouble(GetFixed64(p + 8));
    gp.time = static_cast<TimestampMs>(GetFixed64(p + 16));
    p += 24;
    points.push_back(gp);
  }
  return Trajectory(oid, std::move(points));
}

namespace {
constexpr double kQuantum = 1e-6;  // ~0.11 m of longitude at the equator

int64_t Quantize(double deg) {
  return static_cast<int64_t>(std::llround(deg / kQuantum));
}
double Dequantize(int64_t q) { return static_cast<double>(q) * kQuantum; }
}  // namespace

std::string Trajectory::SerializeDelta() const {
  std::string out;
  PutVarint64(&out, points_.size());
  int64_t prev_lng = 0, prev_lat = 0, prev_t = 0;
  for (const GpsPoint& p : points_) {
    int64_t qlng = Quantize(p.position.lng);
    int64_t qlat = Quantize(p.position.lat);
    PutVarintSigned(&out, qlng - prev_lng);
    PutVarintSigned(&out, qlat - prev_lat);
    PutVarintSigned(&out, p.time - prev_t);
    prev_lng = qlng;
    prev_lat = qlat;
    prev_t = p.time;
  }
  return out;
}

Result<Trajectory> Trajectory::DeserializeDelta(const std::string& oid,
                                                std::string_view bytes) {
  const char* p = bytes.data();
  const char* limit = p + bytes.size();
  uint64_t n;
  if (!GetVarint64(&p, limit, &n)) return Status::Corruption("bad gps list");
  std::vector<GpsPoint> points;
  points.reserve(n);
  int64_t lng = 0, lat = 0, t = 0;
  for (uint64_t i = 0; i < n; ++i) {
    int64_t dlng, dlat, dt;
    if (!GetVarintSigned(&p, limit, &dlng) ||
        !GetVarintSigned(&p, limit, &dlat) ||
        !GetVarintSigned(&p, limit, &dt)) {
      return Status::Corruption("truncated delta gps list");
    }
    lng += dlng;
    lat += dlat;
    t += dt;
    points.push_back(GpsPoint{geo::Point{Dequantize(lng), Dequantize(lat)},
                              static_cast<TimestampMs>(t)});
  }
  return Trajectory(oid, std::move(points));
}

}  // namespace just::traj
