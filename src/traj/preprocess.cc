#include "traj/preprocess.h"

#include <cmath>

namespace just::traj {

Trajectory NoiseFilter(const Trajectory& input,
                       const NoiseFilterOptions& options) {
  const auto& pts = input.points();
  std::vector<GpsPoint> kept;
  kept.reserve(pts.size());
  for (const GpsPoint& p : pts) {
    if (kept.empty()) {
      kept.push_back(p);
      continue;
    }
    const GpsPoint& prev = kept.back();
    int64_t dt = p.time - prev.time;
    if (dt <= 0) continue;  // out-of-order or duplicate timestamp: drop
    double dist = geo::HaversineMeters(prev.position, p.position);
    double speed = dist / (static_cast<double>(dt) / 1000.0);
    if (speed <= options.max_speed_mps) kept.push_back(p);
  }
  return Trajectory(input.oid(), std::move(kept));
}

std::vector<Trajectory> Segmentation(const Trajectory& input,
                                     const SegmentationOptions& options) {
  std::vector<Trajectory> segments;
  const auto& pts = input.points();
  std::vector<GpsPoint> current;
  int seq = 0;
  auto emit = [&] {
    if (current.size() >= options.min_points) {
      segments.emplace_back(input.oid() + "#" + std::to_string(seq++),
                            std::move(current));
    }
    current = {};
  };
  for (const GpsPoint& p : pts) {
    if (!current.empty()) {
      const GpsPoint& prev = current.back();
      bool gap = p.time - prev.time > options.max_gap_ms;
      bool jump = geo::HaversineMeters(prev.position, p.position) >
                  options.max_jump_meters;
      if (gap || jump) emit();
    }
    current.push_back(p);
  }
  emit();
  return segments;
}

std::vector<StayPoint> DetectStayPoints(const Trajectory& input,
                                        const StayPointOptions& options) {
  std::vector<StayPoint> stays;
  const auto& pts = input.points();
  size_t i = 0;
  while (i < pts.size()) {
    size_t j = i + 1;
    while (j < pts.size() &&
           geo::HaversineMeters(pts[i].position, pts[j].position) <=
               options.max_radius_meters) {
      ++j;
    }
    // Fixes [i, j) stay near pts[i].
    if (j > i + 1 &&
        pts[j - 1].time - pts[i].time >= options.min_duration_ms) {
      StayPoint sp;
      double lng = 0, lat = 0;
      for (size_t k = i; k < j; ++k) {
        lng += pts[k].position.lng;
        lat += pts[k].position.lat;
      }
      double n = static_cast<double>(j - i);
      sp.center = geo::Point{lng / n, lat / n};
      sp.arrive = pts[i].time;
      sp.depart = pts[j - 1].time;
      sp.first_index = i;
      sp.last_index = j - 1;
      stays.push_back(sp);
      i = j;
    } else {
      ++i;
    }
  }
  return stays;
}

namespace {
void DouglasPeucker(const std::vector<GpsPoint>& pts, size_t lo, size_t hi,
                    double tolerance, std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  double max_dist = -1;
  size_t max_idx = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    double d = geo::PointSegmentDistance(pts[i].position, pts[lo].position,
                                         pts[hi].position);
    if (d > max_dist) {
      max_dist = d;
      max_idx = i;
    }
  }
  if (max_dist > tolerance) {
    (*keep)[max_idx] = true;
    DouglasPeucker(pts, lo, max_idx, tolerance, keep);
    DouglasPeucker(pts, max_idx, hi, tolerance, keep);
  }
}
}  // namespace

Trajectory Simplify(const Trajectory& input, double tolerance_deg) {
  const auto& pts = input.points();
  if (pts.size() <= 2) return input;
  std::vector<bool> keep(pts.size(), false);
  keep.front() = keep.back() = true;
  DouglasPeucker(pts, 0, pts.size() - 1, tolerance_deg, &keep);
  std::vector<GpsPoint> kept;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (keep[i]) kept.push_back(pts[i]);
  }
  return Trajectory(input.oid(), std::move(kept));
}

}  // namespace just::traj
