#ifndef JUST_TRAJ_PREPROCESS_H_
#define JUST_TRAJ_PREPROCESS_H_

#include <vector>

#include "traj/trajectory.h"

namespace just::traj {

/// Trajectory preprocessing operators (the paper's 1-N analysis operations,
/// Section V-D: st_trajNoiseFilter, st_trajSegmentation, st_trajStayPoint).

struct NoiseFilterOptions {
  /// A fix implying speed above this (from its predecessor) is noise.
  double max_speed_mps = 55.0;  // ~200 km/h
};

/// Drops GPS fixes whose implied speed from the last kept fix exceeds the
/// threshold (heuristic outlier removal per [33]).
Trajectory NoiseFilter(const Trajectory& input,
                       const NoiseFilterOptions& options = {});

struct SegmentationOptions {
  /// Split when the gap between consecutive fixes exceeds this.
  int64_t max_gap_ms = 10 * kMillisPerMinute;
  /// ... or when consecutive fixes are farther apart than this.
  double max_jump_meters = 5000.0;
  /// Segments shorter than this are discarded.
  size_t min_points = 2;
};

/// Splits a trajectory at temporal/spatial discontinuities.
std::vector<Trajectory> Segmentation(const Trajectory& input,
                                     const SegmentationOptions& options = {});

struct StayPoint {
  geo::Point center;
  TimestampMs arrive = 0;
  TimestampMs depart = 0;
  size_t first_index = 0;
  size_t last_index = 0;
};

struct StayPointOptions {
  double max_radius_meters = 100.0;
  int64_t min_duration_ms = 5 * kMillisPerMinute;
};

/// Classic stay-point detection [Zheng, TIST 2015]: a maximal run of fixes
/// within `max_radius_meters` of its anchor lasting at least
/// `min_duration_ms`.
std::vector<StayPoint> DetectStayPoints(const Trajectory& input,
                                        const StayPointOptions& options = {});

/// Douglas-Peucker path simplification (tolerance in degrees); an extension
/// operator used by the map-recovery example.
Trajectory Simplify(const Trajectory& input, double tolerance_deg);

}  // namespace just::traj

#endif  // JUST_TRAJ_PREPROCESS_H_
