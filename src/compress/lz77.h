#ifndef JUST_COMPRESS_LZ77_H_
#define JUST_COMPRESS_LZ77_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace just::compress {

/// A from-scratch LZ77 compressor with a 32 KiB sliding window and
/// hash-chain match finding — the DEFLATE family's dictionary stage, which
/// supplies the bulk of gzip's ratio on structured data. Token stream:
/// groups of up to 8 tokens preceded by a flag byte (bit i set = token i is
/// a match). Literal token: 1 raw byte. Match token: 2-byte little-endian
/// offset (1..32768) + 1-byte length (3..258 encoded as len-3).
std::string Lz77Compress(std::string_view raw);

/// Decompresses; `raw_size` (from the cell framing) bounds the output and is
/// verified.
Result<std::string> Lz77Decompress(std::string_view compressed,
                                   size_t raw_size);

}  // namespace just::compress

#endif  // JUST_COMPRESS_LZ77_H_
