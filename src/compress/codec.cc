#include "compress/codec.h"

#include <cctype>

#include "common/bytes.h"
#include "compress/lz77.h"

namespace just::compress {

namespace {

class NoneCodecImpl : public Codec {
 public:
  std::string name() const override { return "none"; }

  std::string Compress(std::string_view raw) const override {
    return std::string(raw);
  }

  Result<std::string> Decompress(std::string_view compressed,
                                 size_t raw_size) const override {
    if (compressed.size() != raw_size) {
      return Status::Corruption("none codec size mismatch");
    }
    return std::string(compressed);
  }
};

class Lz77CodecImpl : public Codec {
 public:
  std::string name() const override { return "lz77"; }

  std::string Compress(std::string_view raw) const override {
    return Lz77Compress(raw);
  }

  Result<std::string> Decompress(std::string_view compressed,
                                 size_t raw_size) const override {
    return Lz77Decompress(compressed, raw_size);
  }
};

}  // namespace

const Codec* NoneCodec() {
  static const NoneCodecImpl* codec = new NoneCodecImpl();
  return codec;
}

const Codec* Lz77Codec() {
  static const Lz77CodecImpl* codec = new Lz77CodecImpl();
  return codec;
}

Result<const Codec*> GetCodec(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower.empty() || lower == "none") return NoneCodec();
  if (lower == "gzip" || lower == "zip" || lower == "lz77") {
    return Lz77Codec();
  }
  return Status::InvalidArgument("unknown codec: " + name);
}

std::string EncodeCell(const Codec& codec, std::string_view raw) {
  std::string out;
  if (codec.name() == "none") {
    out.push_back(static_cast<char>(CodecId::kNone));
    PutVarint64(&out, raw.size());
    out.append(raw.data(), raw.size());
    return out;
  }
  std::string compressed = codec.Compress(raw);
  out.push_back(static_cast<char>(CodecId::kLz77));
  PutVarint64(&out, raw.size());
  out += compressed;
  return out;
}

Result<std::string> DecodeCell(std::string_view cell) {
  if (cell.empty()) return Status::Corruption("empty cell");
  auto id = static_cast<CodecId>(cell[0]);
  const char* p = cell.data() + 1;
  const char* limit = cell.data() + cell.size();
  uint64_t raw_size;
  if (!GetVarint64(&p, limit, &raw_size)) {
    return Status::Corruption("bad cell header");
  }
  std::string_view payload(p, limit - p);
  switch (id) {
    case CodecId::kNone:
      return NoneCodec()->Decompress(payload, raw_size);
    case CodecId::kLz77:
      return Lz77Codec()->Decompress(payload, raw_size);
  }
  return Status::Corruption("unknown codec id");
}

}  // namespace just::compress
