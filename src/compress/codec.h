#ifndef JUST_COMPRESS_CODEC_H_
#define JUST_COMPRESS_CODEC_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace just::compress {

/// Field-compression codec (Section IV-D): JUST compresses big-bytes fields
/// (e.g. a trajectory's gpsList) to cut both storage and scan I/O. Codecs are
/// deliberately framed per-cell, which makes tiny fields *grow* when
/// compressed — the effect Figure 10a demonstrates on the Order dataset.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual std::string name() const = 0;

  /// Compresses `raw`; always succeeds (worst case stores near-raw).
  virtual std::string Compress(std::string_view raw) const = 0;

  virtual Result<std::string> Decompress(std::string_view compressed,
                                         size_t raw_size) const = 0;
};

/// Codec ids stored in cell framing.
enum class CodecId : uint8_t {
  kNone = 0,
  kLz77 = 1,  ///< fills the paper's "gzip"/"zip" role
};

/// Looks up a codec by name: "none", "gzip", "zip", "lz77"
/// (gzip/zip both map to the LZ77 codec, as the paper treats them
/// interchangeably).
Result<const Codec*> GetCodec(const std::string& name);
const Codec* NoneCodec();
const Codec* Lz77Codec();

/// Frames one table cell: [codec id: 1B][raw size: varint][payload]. The
/// framing overhead is what makes compressing few-byte fields
/// counter-productive (Fig. 10a).
std::string EncodeCell(const Codec& codec, std::string_view raw);

/// Decodes a framed cell produced by EncodeCell.
Result<std::string> DecodeCell(std::string_view cell);

}  // namespace just::compress

#endif  // JUST_COMPRESS_CODEC_H_
