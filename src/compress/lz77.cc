#include "compress/lz77.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace just::compress {

namespace {
constexpr size_t kWindowSize = 32768;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 258;
constexpr int kHashBits = 15;
constexpr int kMaxChainLength = 32;

inline uint32_t Hash3(const unsigned char* p) {
  uint32_t v = static_cast<uint32_t>(p[0]) |
               (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}
}  // namespace

std::string Lz77Compress(std::string_view raw) {
  std::string out;
  const auto* data = reinterpret_cast<const unsigned char*>(raw.data());
  const size_t n = raw.size();
  out.reserve(n / 2 + 16);

  // head[h] = most recent position with hash h; prev[i % window] = previous
  // position in the chain for position i.
  std::vector<int64_t> head(1ull << kHashBits, -1);
  std::vector<int64_t> prev(kWindowSize, -1);

  size_t pos = 0;
  // Token group buffering: flags byte + up to 8 token payloads.
  unsigned char flags = 0;
  int token_count = 0;
  std::string group;

  auto flush_group = [&] {
    if (token_count == 0) return;
    out.push_back(static_cast<char>(flags));
    out += group;
    flags = 0;
    token_count = 0;
    group.clear();
  };

  auto add_literal = [&](unsigned char byte) {
    group.push_back(static_cast<char>(byte));
    ++token_count;
    if (token_count == 8) flush_group();
  };

  auto add_match = [&](size_t offset, size_t length) {
    flags |= static_cast<unsigned char>(1u << token_count);
    uint16_t off16 = static_cast<uint16_t>(offset - 1);
    group.push_back(static_cast<char>(off16 & 0xff));
    group.push_back(static_cast<char>(off16 >> 8));
    group.push_back(static_cast<char>(length - kMinMatch));
    ++token_count;
    if (token_count == 8) flush_group();
  };

  auto insert_pos = [&](size_t p) {
    if (p + kMinMatch > n) return;
    uint32_t h = Hash3(data + p);
    prev[p % kWindowSize] = head[h];
    head[h] = static_cast<int64_t>(p);
  };

  while (pos < n) {
    size_t best_len = 0;
    size_t best_off = 0;
    if (pos + kMinMatch <= n) {
      uint32_t h = Hash3(data + pos);
      int64_t cand = head[h];
      int chain = 0;
      size_t max_len = std::min(kMaxMatch, n - pos);
      while (cand >= 0 && chain < kMaxChainLength &&
             pos - static_cast<size_t>(cand) <= kWindowSize) {
        size_t c = static_cast<size_t>(cand);
        size_t len = 0;
        while (len < max_len && data[c + len] == data[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_off = pos - c;
          if (len >= max_len) break;
        }
        cand = prev[c % kWindowSize];
        ++chain;
      }
    }
    if (best_len >= kMinMatch) {
      add_match(best_off, best_len);
      // Index every covered position so later matches can reference them.
      for (size_t i = 0; i < best_len; ++i) insert_pos(pos + i);
      pos += best_len;
    } else {
      add_literal(data[pos]);
      insert_pos(pos);
      ++pos;
    }
  }
  flush_group();
  return out;
}

Result<std::string> Lz77Decompress(std::string_view compressed,
                                   size_t raw_size) {
  std::string out;
  out.reserve(raw_size);
  size_t pos = 0;
  const size_t n = compressed.size();
  while (pos < n && out.size() < raw_size) {
    unsigned char flags = static_cast<unsigned char>(compressed[pos++]);
    for (int bit = 0; bit < 8 && out.size() < raw_size; ++bit) {
      if (pos >= n) break;
      if (flags & (1u << bit)) {
        if (pos + 3 > n) return Status::Corruption("truncated lz77 match");
        uint16_t off16 =
            static_cast<uint16_t>(static_cast<unsigned char>(compressed[pos])) |
            (static_cast<uint16_t>(
                 static_cast<unsigned char>(compressed[pos + 1]))
             << 8);
        size_t offset = static_cast<size_t>(off16) + 1;
        size_t length =
            static_cast<size_t>(
                static_cast<unsigned char>(compressed[pos + 2])) +
            kMinMatch;
        pos += 3;
        if (offset > out.size()) {
          return Status::Corruption("lz77 offset before stream start");
        }
        size_t from = out.size() - offset;
        for (size_t i = 0; i < length; ++i) {
          out.push_back(out[from + i]);  // overlapping copies are valid
        }
      } else {
        out.push_back(compressed[pos++]);
      }
    }
  }
  if (out.size() != raw_size) {
    return Status::Corruption("lz77 raw size mismatch: expected " +
                              std::to_string(raw_size) + ", got " +
                              std::to_string(out.size()));
  }
  return out;
}

}  // namespace just::compress
