#ifndef JUST_COMMON_TIME_UTIL_H_
#define JUST_COMMON_TIME_UTIL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace just {

/// Timestamps are milliseconds since the Unix epoch (UTC), matching the
/// paper's RefTime = 1970-01-01T00:00:00Z in Eq. (1).
using TimestampMs = int64_t;

constexpr int64_t kMillisPerSecond = 1000;
constexpr int64_t kMillisPerMinute = 60 * kMillisPerSecond;
constexpr int64_t kMillisPerHour = 60 * kMillisPerMinute;
constexpr int64_t kMillisPerDay = 24 * kMillisPerHour;
constexpr int64_t kMillisPerWeek = 7 * kMillisPerDay;
/// GeoMesa-style "month" and "year" periods are fixed-width bins (the curve
/// only needs disjoint, monotone periods, not calendar alignment).
constexpr int64_t kMillisPerMonth = 30 * kMillisPerDay;
constexpr int64_t kMillisPerYear = 365 * kMillisPerDay;
constexpr int64_t kMillisPerCentury = 100 * kMillisPerYear;

/// The paper's Eq. (1): Num(t) = floor((t - RefTime) / TimePeriodLen),
/// with RefTime = 0 (epoch). Handles negative t with floor semantics.
int64_t TimePeriodNumber(TimestampMs t, int64_t period_len_ms);

/// Start timestamp of period number `num`.
TimestampMs TimePeriodStart(int64_t num, int64_t period_len_ms);

/// Parses "YYYY-MM-DD[ HH:MM:SS]" or "YYYY-MM-DDTHH:MM:SS[Z]" as UTC.
Result<TimestampMs> ParseTimestamp(const std::string& text);

/// Formats as "YYYY-MM-DD HH:MM:SS" (UTC).
std::string FormatTimestamp(TimestampMs t);

/// Monotonic wall-clock now, in nanoseconds (for measuring latencies).
int64_t NowNanos();

}  // namespace just

#endif  // JUST_COMMON_TIME_UTIL_H_
