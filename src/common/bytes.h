#ifndef JUST_COMMON_BYTES_H_
#define JUST_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace just {

/// Byte-order-aware primitive codecs. Keys use big-endian ("sortable")
/// encodings so that lexicographic byte order equals numeric order; values
/// use little-endian fixed or varint encodings.

// --- Big-endian (key) encodings: preserve order under memcmp. ---

void PutFixed16BE(std::string* dst, uint16_t v);
void PutFixed32BE(std::string* dst, uint32_t v);
void PutFixed64BE(std::string* dst, uint64_t v);

uint16_t GetFixed16BE(const char* p);
uint32_t GetFixed32BE(const char* p);
uint64_t GetFixed64BE(const char* p);

// --- Little-endian (value) fixed encodings. ---

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
uint32_t GetFixed32(const char* p);
uint64_t GetFixed64(const char* p);

// --- Varint / zigzag encodings (protobuf-compatible). ---

void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

/// Reads a varint from [*p, limit); advances *p. Returns false on overrun or
/// malformed input.
bool GetVarint32(const char** p, const char* limit, uint32_t* v);
bool GetVarint64(const char** p, const char* limit, uint64_t* v);

uint64_t ZigZagEncode(int64_t v);
int64_t ZigZagDecode(uint64_t v);

void PutVarintSigned(std::string* dst, int64_t v);
bool GetVarintSigned(const char** p, const char* limit, int64_t* v);

/// Length-prefixed string (varint length + bytes).
void PutLengthPrefixed(std::string* dst, std::string_view s);
bool GetLengthPrefixed(const char** p, const char* limit, std::string_view* s);

/// Order-preserving encoding of a double into 8 big-endian bytes: for all
/// finite a < b, Encode(a) < Encode(b) bytewise. Used for sortable key parts.
uint64_t OrderedDoubleBits(double d);
double OrderedBitsToDouble(uint64_t bits);

}  // namespace just

#endif  // JUST_COMMON_BYTES_H_
