#include "common/status.h"

namespace just {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace just
