#include "common/time_util.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace just {

int64_t TimePeriodNumber(TimestampMs t, int64_t period_len_ms) {
  int64_t q = t / period_len_ms;
  if (t % period_len_ms != 0 && t < 0) --q;  // floor division
  return q;
}

TimestampMs TimePeriodStart(int64_t num, int64_t period_len_ms) {
  return num * period_len_ms;
}

namespace {
// Days since epoch for a civil date (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 +
         static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}
}  // namespace

Result<TimestampMs> ParseTimestamp(const std::string& text) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  int n = std::sscanf(text.c_str(), "%d-%d-%d", &y, &mo, &d);
  if (n != 3) {
    return Status::InvalidArgument("bad timestamp: " + text);
  }
  size_t time_pos = text.find_first_of("T ");
  if (time_pos != std::string::npos) {
    int tn = std::sscanf(text.c_str() + time_pos + 1, "%d:%d:%d", &h, &mi, &s);
    if (tn < 2) {
      return Status::InvalidArgument("bad time-of-day in: " + text);
    }
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 ||
      mi > 59 || s < 0 || s > 60) {
    return Status::InvalidArgument("timestamp out of range: " + text);
  }
  int64_t days = DaysFromCivil(y, static_cast<unsigned>(mo),
                               static_cast<unsigned>(d));
  return TimestampMs{(days * 86400 + h * 3600 + mi * 60 + s) *
                     kMillisPerSecond};
}

std::string FormatTimestamp(TimestampMs t) {
  int64_t secs = t / kMillisPerSecond;
  if (t % kMillisPerSecond != 0 && t < 0) --secs;
  int64_t days = secs / 86400;
  int64_t sod = secs % 86400;
  if (sod < 0) {
    sod += 86400;
    --days;
  }
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u %02lld:%02lld:%02lld", y, m,
                d, static_cast<long long>(sod / 3600),
                static_cast<long long>((sod % 3600) / 60),
                static_cast<long long>(sod % 60));
  return buf;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace just
