#include "common/rng.h"

#include <cmath>

namespace just {

double Rng::NextGaussian() {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace just
