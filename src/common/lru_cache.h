#ifndef JUST_COMMON_LRU_CACHE_H_
#define JUST_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace just {

/// Thread-safe LRU cache with byte-size-based capacity accounting. Used as
/// the block cache of the LSM store (the role HBase's BlockCache plays).
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Inserts (or replaces) an entry whose accounted size is `charge` bytes.
  void Insert(const K& key, std::shared_ptr<V> value, size_t charge) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      usage_ -= it->second->charge;
      lru_.erase(it->second->iter);
      map_.erase(it);
    }
    lru_.push_front(key);
    auto entry = std::make_unique<Entry>();
    entry->value = std::move(value);
    entry->charge = charge;
    entry->iter = lru_.begin();
    map_.emplace(key, std::move(entry));
    usage_ += charge;
    EvictLocked();
  }

  /// Returns the cached value or nullptr; promotes on hit.
  std::shared_ptr<V> Lookup(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second->iter);
    it->second->iter = lru_.begin();
    return it->second->value;
  }

  void Erase(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return;
    usage_ -= it->second->charge;
    lru_.erase(it->second->iter);
    map_.erase(it);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    usage_ = 0;
  }

  size_t usage() const {
    std::lock_guard<std::mutex> lock(mu_);
    return usage_;
  }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  struct Entry {
    std::shared_ptr<V> value;
    size_t charge = 0;
    typename std::list<K>::iterator iter;
  };

  void EvictLocked() {
    while (usage_ > capacity_ && !lru_.empty()) {
      const K& victim = lru_.back();
      auto it = map_.find(victim);
      usage_ -= it->second->charge;
      map_.erase(it);
      lru_.pop_back();
    }
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<K> lru_;
  std::unordered_map<K, std::unique_ptr<Entry>> map_;
  size_t usage_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace just

#endif  // JUST_COMMON_LRU_CACHE_H_
