#ifndef JUST_COMMON_STATUS_H_
#define JUST_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace just {

/// Error codes used across the engine. Mirrors the usual database-engine
/// status taxonomy (Arrow / RocksDB style): no exceptions on hot paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kNotSupported,
  kResourceExhausted,  ///< e.g. a baseline system running out of memory.
  kPermissionDenied,
  kInternal,
  kUnavailable,  ///< transient: the caller may retry (region server down).
};

/// Lightweight status object: an `kOk` status carries no allocation.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// True for failures a bounded retry can reasonably paper over (a region
  /// server mid-failover, a transient I/O error) — NOT for corruption,
  /// which retries would only re-detect.
  bool IsTransient() const { return IsIOError() || IsUnavailable(); }

  /// Human-readable rendering, e.g. "IOError: no such file".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or an error Status (never both).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}             // NOLINT
  Result(Status status) : value_(std::move(status)) {}      // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK status to the caller.
#define JUST_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::just::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Evaluates a Result<T> expression, assigning the value or returning the
/// error. Usage: JUST_ASSIGN_OR_RETURN(auto v, MakeV());
#define JUST_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define JUST_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define JUST_ASSIGN_OR_RETURN_NAME(a, b) JUST_ASSIGN_OR_RETURN_CAT(a, b)
#define JUST_ASSIGN_OR_RETURN(lhs, expr) \
  JUST_ASSIGN_OR_RETURN_IMPL(            \
      JUST_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

}  // namespace just

#endif  // JUST_COMMON_STATUS_H_
