#include "common/bytes.h"

namespace just {

void PutFixed16BE(std::string* dst, uint16_t v) {
  char buf[2] = {static_cast<char>(v >> 8), static_cast<char>(v)};
  dst->append(buf, 2);
}

void PutFixed32BE(std::string* dst, uint32_t v) {
  char buf[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                 static_cast<char>(v >> 8), static_cast<char>(v)};
  dst->append(buf, 4);
}

void PutFixed64BE(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (56 - 8 * i));
  dst->append(buf, 8);
}

uint16_t GetFixed16BE(const char* p) {
  auto u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>((u[0] << 8) | u[1]);
}

uint32_t GetFixed32BE(const char* p) {
  auto u = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<uint32_t>(u[0]) << 24) |
         (static_cast<uint32_t>(u[1]) << 16) |
         (static_cast<uint32_t>(u[2]) << 8) | static_cast<uint32_t>(u[3]);
}

uint64_t GetFixed64BE(const char* p) {
  auto u = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | u[i];
  return v;
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

uint32_t GetFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void PutVarint32(std::string* dst, uint32_t v) {
  PutVarint64(dst, v);
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

bool GetVarint64(const char** p, const char* limit, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  const char* q = *p;
  while (q < limit && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(*q++);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *p = q;
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

bool GetVarint32(const char** p, const char* limit, uint32_t* v) {
  uint64_t v64;
  if (!GetVarint64(p, limit, &v64) || v64 > UINT32_MAX) return false;
  *v = static_cast<uint32_t>(v64);
  return true;
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutVarintSigned(std::string* dst, int64_t v) {
  PutVarint64(dst, ZigZagEncode(v));
}

bool GetVarintSigned(const char** p, const char* limit, int64_t* v) {
  uint64_t u;
  if (!GetVarint64(p, limit, &u)) return false;
  *v = ZigZagDecode(u);
  return true;
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

bool GetLengthPrefixed(const char** p, const char* limit,
                       std::string_view* s) {
  uint64_t len;
  if (!GetVarint64(p, limit, &len)) return false;
  if (static_cast<uint64_t>(limit - *p) < len) return false;
  *s = std::string_view(*p, len);
  *p += len;
  return true;
}

uint64_t OrderedDoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  // Flip sign bit for non-negatives; flip all bits for negatives. This maps
  // the IEEE754 total order onto unsigned integer order.
  if (bits & (1ull << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ull << 63);
  }
  return bits;
}

double OrderedBitsToDouble(uint64_t bits) {
  if (bits & (1ull << 63)) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

}  // namespace just
