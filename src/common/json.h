#ifndef JUST_COMMON_JSON_H_
#define JUST_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace just {

/// Minimal JSON value, enough for the paper's USERDATA / CONFIG hints
/// (e.g. {'geomesa.indices.enabled':'z3'}). Accepts single- or double-quoted
/// strings since JustQL examples in the paper use single quotes.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_string() const { return type_ == Type::kString; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::map<std::string, JsonValue>& object_members() const {
    return object_;
  }

  /// Object lookup; returns null value when absent.
  const JsonValue& Get(const std::string& key) const;

  /// Convenience: string member with default.
  std::string GetString(const std::string& key,
                        const std::string& def = "") const;

  std::string ToString() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a JSON document. Single-quoted strings are accepted.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace just

#endif  // JUST_COMMON_JSON_H_
