#ifndef JUST_COMMON_THREAD_POOL_H_
#define JUST_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace just {

/// Fixed-size worker pool used to fan out parallel SCANs across region
/// servers (the role Spark executors play in the paper's data flow).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  template <typename F>
  auto Submit(F&& f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool sized to the hardware concurrency.
ThreadPool& DefaultPool();

}  // namespace just

#endif  // JUST_COMMON_THREAD_POOL_H_
