#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace just {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::atomic<size_t> next{0};
  size_t workers = std::min(n, num_threads());
  std::vector<std::future<void>> futs;
  futs.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futs.push_back(Submit([&] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

ThreadPool& DefaultPool() {
  static ThreadPool* pool =
      new ThreadPool(std::thread::hardware_concurrency());
  return *pool;
}

}  // namespace just
