#ifndef JUST_COMMON_RNG_H_
#define JUST_COMMON_RNG_H_

#include <cstdint>

namespace just {

/// Deterministic, fast PRNG (splitmix64 seeding + xorshift128+ stream) so
/// workload generators and benches are reproducible across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 to derive two non-zero state words.
    auto next = [&seed] {
      uint64_t z = (seed += 0x9E3779B97F4A7C15ull);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s0_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53));
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller (one value per call; cheap enough).
  double NextGaussian();

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace just

#endif  // JUST_COMMON_RNG_H_
