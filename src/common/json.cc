#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace just {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  static const JsonValue* kNull = new JsonValue();
  auto it = object_.find(key);
  return it == object_.end() ? *kNull : it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& def) const {
  const JsonValue& v = Get(key);
  return v.is_string() ? v.string_value() : def;
}

namespace {

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    JUST_RETURN_NOT_OK(ParseValue(&v));
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::InvalidArgument("trailing JSON content at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Match(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return Status::InvalidArgument("unexpected end");
    char c = s_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"' || c == '\'') return ParseString(out);
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWs();
    if (Match('}')) {
      *out = JsonValue::Object(std::move(members));
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      JsonValue key;
      JUST_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Match(':')) return Status::InvalidArgument("expected ':'");
      JsonValue value;
      JUST_RETURN_NOT_OK(ParseValue(&value));
      members[key.string_value()] = std::move(value);
      SkipWs();
      if (Match(',')) continue;
      if (Match('}')) break;
      return Status::InvalidArgument("expected ',' or '}'");
    }
    *out = JsonValue::Object(std::move(members));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (Match(']')) {
      *out = JsonValue::Array(std::move(items));
      return Status::OK();
    }
    for (;;) {
      JsonValue v;
      JUST_RETURN_NOT_OK(ParseValue(&v));
      items.push_back(std::move(v));
      SkipWs();
      if (Match(',')) continue;
      if (Match(']')) break;
      return Status::InvalidArgument("expected ',' or ']'");
    }
    *out = JsonValue::Array(std::move(items));
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    if (pos_ >= s_.size() || (s_[pos_] != '"' && s_[pos_] != '\'')) {
      return Status::InvalidArgument("expected string");
    }
    char quote = s_[pos_++];
    std::string value;
    while (pos_ < s_.size() && s_[pos_] != quote) {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        switch (e) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case 'r':
            value += '\r';
            break;
          default:
            value += e;
        }
      } else {
        value += c;
      }
    }
    if (pos_ >= s_.size()) return Status::InvalidArgument("unclosed string");
    ++pos_;  // closing quote
    *out = JsonValue::String(std::move(value));
    return Status::OK();
  }

  Status ParseBool(JsonValue* out) {
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = JsonValue::Bool(true);
      return Status::OK();
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = JsonValue::Bool(false);
      return Status::OK();
    }
    return Status::InvalidArgument("bad literal");
  }

  Status ParseNull(JsonValue* out) {
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = JsonValue::Null();
      return Status::OK();
    }
    return Status::InvalidArgument("bad literal");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("expected number");
    char* end = nullptr;
    std::string token = s_.substr(start, pos_ - start);
    double d = std::strtod(token.c_str(), &end);
    if (end == token.c_str()) return Status::InvalidArgument("bad number");
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::ToString() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber: {
      char buf[32];
      if (number_ == static_cast<int64_t>(number_)) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      }
      return buf;
    }
    case Type::kString:
      return EscapeString(string_);
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ",";
        out += array_[i].ToString();
      }
      return out + "]";
    }
    case Type::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ",";
        first = false;
        out += EscapeString(k) + ":" + v.ToString();
      }
      return out + "}";
    }
  }
  return "null";
}

Result<JsonValue> ParseJson(const std::string& text) {
  Parser p(text);
  return p.Parse();
}

}  // namespace just
