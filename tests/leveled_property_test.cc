// Leveled-compaction property sweep: random Put/Delete/flush interleavings
// against an in-memory model, with the structural invariants checked at
// every quiesce point:
//   1. L1+ tables are sorted and pairwise non-overlapping.
//   2. Tables at the bottom configured level never contain tombstones
//      (tombstone GC happens only when nothing older can resurrect).
//   3. Reads (Get and Scan) agree exactly with the model.
// Runs in the `just_slow_tests` binary (ctest label "slow") so sanitizer CI
// can exclude it.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kvstore/lsm_store.h"
#include "kvstore/sstable.h"
#include "test_util.h"

namespace just::kv {
namespace {

using just::testing::TempDir;

std::string PropKey(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "pk%04llu",
                static_cast<unsigned long long>(i));
  return buf;
}

// Asserts the leveled structural invariants on a quiesced store.
void CheckLevelInvariants(LsmStore* store) {
  auto levels = store->GetLevelInfo();
  for (size_t level = 1; level < levels.size(); ++level) {
    const auto& tables = levels[level];
    for (size_t i = 0; i + 1 < tables.size(); ++i) {
      ASSERT_LT(tables[i].largest_key, tables[i + 1].smallest_key)
          << "L" << level << " overlap between files "
          << tables[i].file_number << " and " << tables[i + 1].file_number;
    }
  }
  // The bottom configured level is, by definition, the oldest data: a
  // tombstone there masks nothing and must have been dropped by the
  // compaction that wrote the table. SSTable values carry a one-byte type
  // tag ('P' = put, 'D' = tombstone).
  if (levels.empty()) return;
  for (const auto& table : levels.back()) {
    auto reader = SsTableReader::Open(table.path, table.file_number,
                                      /*cache=*/nullptr);
    ASSERT_TRUE(reader.ok()) << table.path;
    SsTableReader::Iterator it(reader->get());
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      ASSERT_FALSE(it.value().empty());
      ASSERT_NE(it.value()[0], 'D')
          << "tombstone for key " << it.key() << " survived to the bottom "
          << "level in file " << table.file_number;
    }
    ASSERT_TRUE(it.status().ok()) << it.status().ToString();
  }
}

// Full read check: Scan over everything equals the model, and a sample of
// point reads (present and deleted keys) agrees too.
void CheckAgainstModel(LsmStore* store,
                       const std::map<std::string, std::string>& model,
                       Rng* rng) {
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE(store
                  ->Scan("", "",
                         [&](std::string_view k, std::string_view v) {
                           EXPECT_TRUE(
                               scanned.emplace(std::string(k), std::string(v))
                                   .second)
                               << "duplicate key " << k;
                           return true;
                         })
                  .ok());
  ASSERT_EQ(scanned, model);
  std::string value;
  for (int i = 0; i < 64; ++i) {
    std::string key = PropKey(rng->Uniform(400));
    auto it = model.find(key);
    Status st = store->Get(key, &value);
    if (it == model.end()) {
      EXPECT_TRUE(st.IsNotFound()) << key << ": " << st.ToString();
    } else {
      ASSERT_TRUE(st.ok()) << key << ": " << st.ToString();
      EXPECT_EQ(value, it->second) << key;
    }
  }
}

class LeveledPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeveledPropertyTest, RandomInterleavingsKeepLevelInvariants) {
  TempDir dir("leveled_prop");
  StoreOptions opts;
  opts.dir = dir.path();
  opts.block_size = 256;
  opts.memtable_bytes = 4 << 10;  // frequent implicit flushes
  opts.compaction_trigger = 3;
  opts.compaction_style = CompactionStyle::kLeveled;
  opts.num_levels = 4;
  opts.level_base_bytes = 16 << 10;
  opts.level_fanout = 4;
  opts.target_file_size = 8 << 10;
  auto store_or = LsmStore::Open(opts);
  ASSERT_TRUE(store_or.ok());
  LsmStore* store = store_or->get();

  Rng rng(GetParam());
  std::map<std::string, std::string> model;
  const int kOps = 4000;
  for (int i = 0; i < kOps; ++i) {
    uint64_t dice = rng.Uniform(100);
    std::string key = PropKey(rng.Uniform(400));
    if (dice < 60) {
      std::string value =
          "val-" + std::to_string(rng.Next() & 0xFFFF) +
          std::string(rng.Uniform(120), 'p');
      ASSERT_TRUE(store->Put(key, value).ok());
      model[key] = value;
    } else if (dice < 85) {
      ASSERT_TRUE(store->Delete(key).ok());
      model.erase(key);
    } else if (dice < 95) {
      // Point-read mid-flight: flushes and compactions may be running.
      std::string value;
      Status st = store->Get(key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(st.IsNotFound()) << key;
      } else {
        ASSERT_TRUE(st.ok()) << key << ": " << st.ToString();
        EXPECT_EQ(value, it->second) << key;
      }
    } else {
      ASSERT_TRUE(store->Flush().ok());
    }
    // Quiesce periodically and check the structural invariants; doing it
    // mid-sequence (not just at the end) catches transient violations that
    // a later compaction would have papered over.
    if ((i + 1) % 1000 == 0) {
      ASSERT_TRUE(store->WaitForBackgroundIdle().ok());
      CheckLevelInvariants(store);
      CheckAgainstModel(store, model, &rng);
    }
  }

  ASSERT_TRUE(store->Flush().ok());
  ASSERT_TRUE(store->WaitForBackgroundIdle().ok());
  CheckLevelInvariants(store);
  CheckAgainstModel(store, model, &rng);

  // A manual major compaction drops every tombstone; afterwards no table at
  // any level may carry one, and reads still agree with the model.
  ASSERT_TRUE(store->CompactAll().ok());
  auto levels = store->GetLevelInfo();
  size_t total_tables = 0;
  for (size_t level = 0; level < levels.size(); ++level) {
    for (const auto& table : levels[level]) {
      ++total_tables;
      auto reader = SsTableReader::Open(table.path, table.file_number,
                                        /*cache=*/nullptr);
      ASSERT_TRUE(reader.ok());
      SsTableReader::Iterator it(reader->get());
      for (it.SeekToFirst(); it.Valid(); it.Next()) {
        ASSERT_NE(it.value()[0], 'D') << "tombstone after CompactAll at L"
                                      << level << " key " << it.key();
      }
      ASSERT_TRUE(it.status().ok());
    }
  }
  ASSERT_EQ(total_tables, model.empty() ? 0u : 1u);
  CheckAgainstModel(store, model, &rng);

  // Crash-free reopen: the MANIFEST round-trips the exact level layout.
  store_or->reset();
  auto reopened = LsmStore::Open(opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  CheckLevelInvariants(reopened->get());
  CheckAgainstModel(reopened->get(), model, &rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeveledPropertyTest,
                         ::testing::Values(7ull, 1234ull, 20260806ull));

}  // namespace
}  // namespace just::kv
