// Property/fuzz tests for the binary wire protocol (src/net/wire_protocol):
//  - every message type round-trips randomized payloads exactly;
//  - truncated, bit-flipped, and oversized frames decode to
//    kCorruption/kInvalidArgument — never a crash or over-read (this file
//    runs under the asan/ubsan CI job, which is what turns "never
//    over-read" into an enforced property).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "kvstore/wal.h"
#include "net/wire_protocol.h"

namespace just::net {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  std::string s;
  size_t len = rng->Uniform(max_len + 1);
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return s;
}

Status RandomStatus(Rng* rng) {
  switch (rng->Uniform(5)) {
    case 0:
      return Status::OK();
    case 1:
      return Status::NotFound(RandomBytes(rng, 40));
    case 2:
      return Status::Unavailable(RandomBytes(rng, 40));
    case 3:
      return Status::Corruption(RandomBytes(rng, 40));
    default:
      return Status::InvalidArgument(RandomBytes(rng, 40));
  }
}

/// Splits a frame and parses its payload header; EXPECTs success.
void MustParse(const std::string& frame, FrameHeader* header,
               std::string_view* body) {
  std::string_view payload;
  ASSERT_TRUE(DecodeFrame(frame, &payload).ok());
  ASSERT_TRUE(ParsePayload(payload, header, body).ok());
}

TEST(WireProtocolTest, RoundTripRequests) {
  Rng rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    uint64_t id = rng.Next();
    {
      GetRequest req{RandomBytes(&rng, 64)};
      std::string frame;
      EncodeGetRequest(req, id, &frame);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      EXPECT_EQ(h.type, MsgType::kGetReq);
      EXPECT_EQ(h.request_id, id);
      GetRequest out;
      ASSERT_TRUE(DecodeGetRequest(body, &out).ok());
      EXPECT_EQ(out.key, req.key);
    }
    {
      PutRequest req{RandomBytes(&rng, 64), RandomBytes(&rng, 512)};
      std::string frame;
      EncodePutRequest(req, id, &frame);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      EXPECT_EQ(h.type, MsgType::kPutReq);
      PutRequest out;
      ASSERT_TRUE(DecodePutRequest(body, &out).ok());
      EXPECT_EQ(out.key, req.key);
      EXPECT_EQ(out.value, req.value);
    }
    {
      DeleteRequest req{RandomBytes(&rng, 64)};
      std::string frame;
      EncodeDeleteRequest(req, id, &frame);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      DeleteRequest out;
      ASSERT_TRUE(DecodeDeleteRequest(body, &out).ok());
      EXPECT_EQ(out.key, req.key);
    }
    {
      WriteBatchRequest req;
      size_t n = rng.Uniform(20);
      for (size_t i = 0; i < n; ++i) {
        kv::WriteOp op;
        op.is_delete = rng.Uniform(4) == 0;
        op.key = RandomBytes(&rng, 48);
        if (!op.is_delete) op.value = RandomBytes(&rng, 128);
        req.ops.push_back(std::move(op));
      }
      std::string frame;
      EncodeWriteBatchRequest(req, id, &frame);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      WriteBatchRequest out;
      ASSERT_TRUE(DecodeWriteBatchRequest(body, &out).ok());
      ASSERT_EQ(out.ops.size(), req.ops.size());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out.ops[i].is_delete, req.ops[i].is_delete);
        EXPECT_EQ(out.ops[i].key, req.ops[i].key);
        EXPECT_EQ(out.ops[i].value, req.ops[i].value);
      }
    }
    {
      IngestRequest req;
      req.tenant = RandomBytes(&rng, 32);
      size_t n = rng.Uniform(20);
      for (size_t i = 0; i < n; ++i) {
        kv::WriteOp op;
        op.is_delete = rng.Uniform(4) == 0;
        op.key = RandomBytes(&rng, 48);
        if (!op.is_delete) op.value = RandomBytes(&rng, 128);
        req.ops.push_back(std::move(op));
      }
      std::string frame;
      EncodeIngestRequest(req, id, &frame);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      EXPECT_EQ(h.type, MsgType::kIngestReq);
      IngestRequest out;
      ASSERT_TRUE(DecodeIngestRequest(body, &out).ok());
      EXPECT_EQ(out.tenant, req.tenant);
      ASSERT_EQ(out.ops.size(), req.ops.size());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out.ops[i].is_delete, req.ops[i].is_delete);
        EXPECT_EQ(out.ops[i].key, req.ops[i].key);
        EXPECT_EQ(out.ops[i].value, req.ops[i].value);
      }
    }
    {
      ScanRequest req;
      req.start_key = RandomBytes(&rng, 64);
      req.end_key = RandomBytes(&rng, 64);
      req.limit_rows = 1 + static_cast<uint32_t>(rng.Uniform(100000));
      std::string frame;
      EncodeScanRequest(req, id, &frame);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      ScanRequest out;
      ASSERT_TRUE(DecodeScanRequest(body, &out).ok());
      EXPECT_EQ(out.start_key, req.start_key);
      EXPECT_EQ(out.end_key, req.end_key);
      EXPECT_EQ(out.limit_rows, req.limit_rows);
    }
    {
      std::string frame;
      EncodeEmptyRequest(MsgType::kFlushReq, id, &frame);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      EXPECT_EQ(h.type, MsgType::kFlushReq);
      EXPECT_TRUE(DecodeEmptyBody(body).ok());
    }
  }
}

TEST(WireProtocolTest, RoundTripResponses) {
  Rng rng(43);
  for (int iter = 0; iter < 200; ++iter) {
    uint64_t id = rng.Next();
    {
      StatusResponse resp{RandomStatus(&rng)};
      std::string frame;
      EncodeStatusResponse(resp, id, &frame);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      EXPECT_EQ(h.type, MsgType::kStatusResp);
      StatusResponse out;
      ASSERT_TRUE(DecodeStatusResponse(body, &out).ok());
      EXPECT_EQ(out.status.code(), resp.status.code());
      EXPECT_EQ(out.status.message(), resp.status.message());
    }
    {
      GetResponse resp;
      resp.status = RandomStatus(&rng);
      resp.value = RandomBytes(&rng, 512);
      std::string frame;
      EncodeGetResponse(resp, id, &frame);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      GetResponse out;
      ASSERT_TRUE(DecodeGetResponse(body, &out).ok());
      EXPECT_EQ(out.status.code(), resp.status.code());
      EXPECT_EQ(out.value, resp.value);
    }
    {
      ScanResponse resp;
      resp.status = RandomStatus(&rng);
      size_t n = rng.Uniform(30);
      for (size_t i = 0; i < n; ++i) {
        resp.rows.push_back(
            WireRow{RandomBytes(&rng, 48), RandomBytes(&rng, 96)});
      }
      resp.has_more = rng.Uniform(2) == 1;
      if (resp.has_more) resp.next_cursor = RandomBytes(&rng, 48);
      std::string frame;
      EncodeScanResponse(resp, id, &frame);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      ScanResponse out;
      ASSERT_TRUE(DecodeScanResponse(body, &out).ok());
      EXPECT_EQ(out.status.code(), resp.status.code());
      ASSERT_EQ(out.rows.size(), resp.rows.size());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out.rows[i].key, resp.rows[i].key);
        EXPECT_EQ(out.rows[i].value, resp.rows[i].value);
      }
      EXPECT_EQ(out.has_more, resp.has_more);
      EXPECT_EQ(out.next_cursor, resp.next_cursor);
    }
    {
      StatsResponse resp;
      resp.status = Status::OK();
      resp.disk_bytes = rng.Next();
      resp.entries = rng.Next();
      resp.num_sstables = rng.Next();
      resp.requests_total = rng.Next();
      resp.shed_total = rng.Next();
      resp.corrupt_frames_total = rng.Next();
      resp.active_connections = rng.Next();
      std::string frame;
      EncodeStatsResponse(resp, id, &frame);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      StatsResponse out;
      ASSERT_TRUE(DecodeStatsResponse(body, &out).ok());
      EXPECT_EQ(out.disk_bytes, resp.disk_bytes);
      EXPECT_EQ(out.entries, resp.entries);
      EXPECT_EQ(out.num_sstables, resp.num_sstables);
      EXPECT_EQ(out.requests_total, resp.requests_total);
      EXPECT_EQ(out.shed_total, resp.shed_total);
      EXPECT_EQ(out.corrupt_frames_total, resp.corrupt_frames_total);
      EXPECT_EQ(out.active_connections, resp.active_connections);
    }
  }
}

/// Attempts a full decode of `frame` as whatever it claims to be. The
/// assertion is implicit: no crash, no sanitizer report — and a non-OK
/// status must be kCorruption or kInvalidArgument, never something that
/// masks the damage (e.g. kOk with garbage).
void FuzzDecode(std::string_view frame, bool expect_failure) {
  std::string_view payload;
  Status st = DecodeFrame(frame, &payload);
  if (!st.ok()) {
    EXPECT_TRUE(st.IsCorruption() || st.IsInvalidArgument())
        << st.ToString();
    return;
  }
  FrameHeader header;
  std::string_view body;
  st = ParsePayload(payload, &header, &body);
  if (!st.ok()) {
    EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
    return;
  }
  // Drive every body decoder the header could route to.
  Status decode;
  switch (header.type) {
    case MsgType::kGetReq: {
      GetRequest r;
      decode = DecodeGetRequest(body, &r);
      break;
    }
    case MsgType::kPutReq: {
      PutRequest r;
      decode = DecodePutRequest(body, &r);
      break;
    }
    case MsgType::kDeleteReq: {
      DeleteRequest r;
      decode = DecodeDeleteRequest(body, &r);
      break;
    }
    case MsgType::kWriteBatchReq: {
      WriteBatchRequest r;
      decode = DecodeWriteBatchRequest(body, &r);
      break;
    }
    case MsgType::kIngestReq: {
      IngestRequest r;
      decode = DecodeIngestRequest(body, &r);
      break;
    }
    case MsgType::kScanReq: {
      ScanRequest r;
      decode = DecodeScanRequest(body, &r);
      break;
    }
    case MsgType::kStatusResp: {
      StatusResponse r;
      decode = DecodeStatusResponse(body, &r);
      break;
    }
    case MsgType::kGetResp: {
      GetResponse r;
      decode = DecodeGetResponse(body, &r);
      break;
    }
    case MsgType::kScanResp: {
      ScanResponse r;
      decode = DecodeScanResponse(body, &r);
      break;
    }
    case MsgType::kStatsResp: {
      StatsResponse r;
      decode = DecodeStatsResponse(body, &r);
      break;
    }
    default:
      decode = DecodeEmptyBody(body);
      break;
  }
  if (!decode.ok()) {
    EXPECT_TRUE(decode.IsInvalidArgument() || decode.IsCorruption())
        << decode.ToString();
  } else if (expect_failure) {
    // A bit flip the CRC did not catch is statistically impossible at
    // these sizes with CRC-32 over <1KB payloads and 1 flipped bit.
    ADD_FAILURE() << "corrupted frame decoded cleanly";
  }
}

/// A pool of valid frames of every type, for mutation.
std::vector<std::string> SampleFrames(Rng* rng) {
  std::vector<std::string> frames;
  uint64_t id = rng->Next();
  std::string f;
  EncodePingRequest(id, &f);
  frames.push_back(f);
  f.clear();
  EncodeGetRequest({RandomBytes(rng, 32)}, id, &f);
  frames.push_back(f);
  f.clear();
  EncodePutRequest({RandomBytes(rng, 32), RandomBytes(rng, 200)}, id, &f);
  frames.push_back(f);
  f.clear();
  WriteBatchRequest wb;
  for (int i = 0; i < 8; ++i) {
    wb.ops.push_back(kv::WriteOp{RandomBytes(rng, 24), RandomBytes(rng, 64),
                                 i % 3 == 0});
  }
  EncodeWriteBatchRequest(wb, id, &f);
  frames.push_back(f);
  f.clear();
  IngestRequest ing;
  ing.tenant = RandomBytes(rng, 16);
  for (int i = 0; i < 8; ++i) {
    ing.ops.push_back(kv::WriteOp{RandomBytes(rng, 24), RandomBytes(rng, 64),
                                  i % 3 == 0});
  }
  EncodeIngestRequest(ing, id, &f);
  frames.push_back(f);
  f.clear();
  ScanRequest sr;
  sr.start_key = RandomBytes(rng, 24);
  sr.end_key = RandomBytes(rng, 24);
  EncodeScanRequest(sr, id, &f);
  frames.push_back(f);
  f.clear();
  ScanResponse scr;
  scr.status = Status::OK();
  for (int i = 0; i < 10; ++i) {
    scr.rows.push_back(WireRow{RandomBytes(rng, 24), RandomBytes(rng, 48)});
  }
  scr.has_more = true;
  scr.next_cursor = RandomBytes(rng, 24);
  EncodeScanResponse(scr, id, &f);
  frames.push_back(f);
  f.clear();
  StatsResponse st;
  st.status = Status::OK();
  EncodeStatsResponse(st, id, &f);
  frames.push_back(f);
  return frames;
}

TEST(WireProtocolFuzzTest, TruncatedFramesNeverCrash) {
  Rng rng(1234);
  for (int round = 0; round < 50; ++round) {
    for (const std::string& frame : SampleFrames(&rng)) {
      // Every prefix, including the empty one.
      for (size_t len = 0; len < frame.size(); ++len) {
        std::string_view truncated(frame.data(), len);
        std::string_view payload;
        Status st = DecodeFrame(truncated, &payload);
        EXPECT_FALSE(st.ok()) << "truncated frame decoded, len=" << len;
        EXPECT_TRUE(st.IsCorruption() || st.IsInvalidArgument())
            << st.ToString();
      }
    }
  }
}

TEST(WireProtocolFuzzTest, BitFlippedFramesNeverCrash) {
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    for (std::string frame : SampleFrames(&rng)) {
      size_t byte = rng.Uniform(frame.size());
      frame[byte] =
          static_cast<char>(frame[byte] ^ (1u << rng.Uniform(8)));
      FuzzDecode(frame, /*expect_failure=*/byte >= kFrameHeaderBytes);
    }
  }
}

TEST(WireProtocolFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(777);
  for (int round = 0; round < 2000; ++round) {
    std::string garbage = RandomBytes(&rng, 300);
    FuzzDecode(garbage, /*expect_failure=*/false);
  }
}

TEST(WireProtocolFuzzTest, OversizedFrameRejectedBeforeAllocation) {
  // A header declaring a huge payload must be rejected as kInvalidArgument
  // without trying to read (or allocate) the claimed bytes.
  std::string valid;
  EncodePingRequest(7, &valid);
  std::string frame = valid;
  // Overwrite the length field with max uint32.
  frame[0] = frame[1] = frame[2] = frame[3] = static_cast<char>(0xFF);
  std::string_view payload;
  Status st = DecodeFrame(frame, &payload);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();

  // Just over the cap: also rejected, and before the truncation check.
  std::string big;
  PutFixed32(&big, static_cast<uint32_t>(kMaxFrameBytes + 1));
  big.append(4, '\0');
  st = DecodeFrame(big, &payload);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(WireProtocolFuzzTest, MutatedBodyBehindValidCrcIsInvalidArgument) {
  // Re-CRC a deliberately malformed payload: decoding must fail cleanly
  // with kInvalidArgument (the CRC says "intact", the structure says no).
  Rng rng(31337);
  for (int round = 0; round < 500; ++round) {
    std::string payload;
    payload.push_back(static_cast<char>(rng.Uniform(64)));  // type, often bad
    for (int i = 0; i < 8; ++i) {
      payload.push_back(static_cast<char>(rng.Uniform(256)));
    }
    std::string body = RandomBytes(&rng, 120);
    payload += body;
    std::string frame;
    PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
    PutFixed32(&frame, kv::Crc32(payload));
    frame += payload;
    FuzzDecode(frame, /*expect_failure=*/false);
  }
}

TEST(WireProtocolTest, ExtensionRoundTrip) {
  Rng rng(2024);
  for (int iter = 0; iter < 100; ++iter) {
    uint64_t id = rng.Next();
    // Non-empty by construction: an empty ext means "no extension".
    std::string ext = "x" + RandomBytes(&rng, 63);
    {
      GetRequest req{RandomBytes(&rng, 48)};
      std::string frame;
      EncodeGetRequest(req, id, &frame, ext);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      EXPECT_EQ(h.type, MsgType::kGetReq);
      EXPECT_EQ(h.request_id, id);
      EXPECT_TRUE(h.has_ext);
      EXPECT_EQ(h.ext, ext);
      GetRequest out;
      ASSERT_TRUE(DecodeGetRequest(body, &out).ok());
      EXPECT_EQ(out.key, req.key);
    }
    {
      ScanResponse resp;
      resp.status = Status::OK();
      resp.rows.push_back(WireRow{RandomBytes(&rng, 24), RandomBytes(&rng, 48)});
      std::string frame;
      EncodeScanResponse(resp, id, &frame, ext);
      FrameHeader h;
      std::string_view body;
      MustParse(frame, &h, &body);
      EXPECT_TRUE(h.has_ext);
      EXPECT_EQ(h.ext, ext);
      ScanResponse out;
      ASSERT_TRUE(DecodeScanResponse(body, &out).ok());
      ASSERT_EQ(out.rows.size(), 1u);
      EXPECT_EQ(out.rows[0].key, resp.rows[0].key);
    }
  }
  // A present-but-empty extension is distinguishable from no extension.
  std::string frame;
  EncodePingRequest(5, &frame, std::string_view("", 0));
  FrameHeader h;
  std::string_view body;
  MustParse(frame, &h, &body);
  EXPECT_FALSE(h.has_ext);  // empty ext means "don't set the flag"
}

TEST(WireProtocolTest, UnextendedFramesKeepLegacyLayout) {
  // The default (no ext) must produce the pre-extension byte layout: no
  // flag bit, body immediately after the request id. This is what lets new
  // clients talk to old servers without negotiation.
  std::string frame;
  EncodePutRequest({"k", "v"}, 9, &frame);
  ASSERT_GT(frame.size(), kFrameHeaderBytes);
  uint8_t type_byte = static_cast<uint8_t>(frame[kFrameHeaderBytes]);
  EXPECT_EQ(type_byte & kExtensionFlag, 0);
  EXPECT_EQ(type_byte, static_cast<uint8_t>(MsgType::kPutReq));

  std::string flagged;
  EncodePutRequest({"k", "v"}, 9, &flagged, "tc");
  uint8_t flagged_byte = static_cast<uint8_t>(flagged[kFrameHeaderBytes]);
  EXPECT_EQ(flagged_byte & kExtensionFlag, kExtensionFlag);
}

TEST(WireProtocolTest, TraceContextRoundTrip) {
  for (bool sampled : {false, true}) {
    std::string ext = EncodeTraceContext(TraceContext{sampled});
    TraceContext out;
    ASSERT_TRUE(DecodeTraceContext(ext, &out).ok());
    EXPECT_EQ(out.sampled, sampled);
    // Trailing bytes are reserved for future fields and must be ignored.
    TraceContext out2;
    ASSERT_TRUE(DecodeTraceContext(ext + "future-field-bytes", &out2).ok());
    EXPECT_EQ(out2.sampled, sampled);
  }
  TraceContext ctx;
  EXPECT_TRUE(DecodeTraceContext("", &ctx).IsInvalidArgument());
}

TEST(WireProtocolTest, UnknownTypeMessageNamesTheType) {
  // RegionClient's degrade-to-untraced path matches this substring in the
  // kInvalidArgument an old server sends back for a flagged type byte; the
  // text is load-bearing.
  std::string payload;
  payload.push_back(static_cast<char>(0x7F));  // unknown, no flag
  payload.append(8, '\0');
  FrameHeader h;
  std::string_view body;
  Status st = ParsePayload(payload, &h, &body);
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("unknown message type"), std::string::npos)
      << st.ToString();
}

TEST(WireProtocolFuzzTest, ExtensionFieldFuzz) {
  // Flagged frames whose extension field is truncated, oversized, or
  // garbage: ParsePayload must return kInvalidArgument (connection
  // survives) or hand back an ext whose TraceContext decode fails cleanly —
  // never crash, never over-read (asan enforces the latter).
  Rng rng(4242);
  for (int round = 0; round < 2000; ++round) {
    std::string payload;
    // Known request type with the extension flag set.
    uint8_t type = static_cast<uint8_t>(1 + rng.Uniform(10));
    payload.push_back(static_cast<char>(type | kExtensionFlag));
    for (int i = 0; i < 8; ++i) {
      payload.push_back(static_cast<char>(rng.Uniform(256)));
    }
    switch (rng.Uniform(4)) {
      case 0:
        // No extension bytes at all: length prefix is missing.
        break;
      case 1: {
        // Length prefix promising more bytes than the payload holds.
        PutVarint32(&payload, 50 + static_cast<uint32_t>(rng.Uniform(1000)));
        payload += RandomBytes(&rng, 20);
        break;
      }
      case 2: {
        // Pathological varint (5 continuation bytes).
        payload.append(5, static_cast<char>(0xFF));
        break;
      }
      default: {
        // Well-formed length prefix around garbage ext bytes + random body.
        std::string ext = RandomBytes(&rng, 40);
        PutVarint32(&payload, static_cast<uint32_t>(ext.size()));
        payload += ext;
        payload += RandomBytes(&rng, 60);
        break;
      }
    }
    FrameHeader h;
    std::string_view body;
    Status st = ParsePayload(payload, &h, &body);
    if (!st.ok()) {
      EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
      continue;
    }
    ASSERT_TRUE(h.has_ext);
    TraceContext ctx;
    Status tc = DecodeTraceContext(h.ext, &ctx);
    if (!tc.ok()) {
      EXPECT_TRUE(tc.IsInvalidArgument()) << tc.ToString();
    }
  }
}

TEST(WireProtocolFuzzTest, FlaggedGarbageBehindValidCrc) {
  // Same shape as MutatedBodyBehindValidCrc but with the full type-byte
  // range, so extension-flagged bytes are exercised through the whole
  // DecodeFrame -> ParsePayload -> body-decoder pipeline.
  Rng rng(271828);
  for (int round = 0; round < 1000; ++round) {
    std::string payload;
    payload.push_back(static_cast<char>(rng.Uniform(256)));
    for (int i = 0; i < 8; ++i) {
      payload.push_back(static_cast<char>(rng.Uniform(256)));
    }
    payload += RandomBytes(&rng, 120);
    std::string frame;
    PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
    PutFixed32(&frame, kv::Crc32(payload));
    frame += payload;
    FuzzDecode(frame, /*expect_failure=*/false);
  }
}

}  // namespace
}  // namespace just::net
