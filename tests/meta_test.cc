#include <gtest/gtest.h>

#include "meta/catalog.h"
#include "test_util.h"

namespace just::meta {
namespace {

using just::testing::TempDir;

TableMeta SampleTable(const std::string& user, const std::string& name) {
  TableMeta table;
  table.user = user;
  table.name = name;
  table.kind = TableKind::kCommon;
  table.columns = {
      {"fid", exec::DataType::kInt, true, "", ""},
      {"name", exec::DataType::kString, false, "", ""},
      {"time", exec::DataType::kTimestamp, false, "", ""},
      {"geom", exec::DataType::kGeometry, false, "4326", ""},
      {"gpsList", exec::DataType::kTrajectory, false, "", "gzip"},
  };
  table.fid_column = "fid";
  table.geom_column = "geom";
  table.time_column = "time";
  table.indexes = {{curve::IndexType::kZ3, kMillisPerDay}};
  return table;
}

TEST(CatalogTest, CreateGetList) {
  TempDir dir("catalog");
  auto catalog = Catalog::Open(dir.path() + "/meta.jsonl");
  ASSERT_TRUE(catalog.ok());
  TableMeta t1 = SampleTable("alice", "orders");
  ASSERT_TRUE((*catalog)->CreateTable(&t1).ok());
  EXPECT_GT(t1.table_id, 0u);
  auto fetched = (*catalog)->GetTable("alice", "orders");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->columns.size(), 5u);
  EXPECT_EQ(fetched->columns[4].compress, "gzip");
  EXPECT_EQ(fetched->indexes[0].type, curve::IndexType::kZ3);
  EXPECT_EQ((*catalog)->ListTables("alice").size(), 1u);
  EXPECT_TRUE((*catalog)->ListTables("bob").empty());
}

TEST(CatalogTest, DuplicateRejected) {
  TempDir dir("catalog_dup");
  auto catalog = Catalog::Open(dir.path() + "/meta.jsonl");
  ASSERT_TRUE(catalog.ok());
  TableMeta t1 = SampleTable("u", "t");
  ASSERT_TRUE((*catalog)->CreateTable(&t1).ok());
  TableMeta t2 = SampleTable("u", "t");
  EXPECT_EQ((*catalog)->CreateTable(&t2).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, NamespaceIsolation) {
  TempDir dir("catalog_ns");
  auto catalog = Catalog::Open(dir.path() + "/meta.jsonl");
  ASSERT_TRUE(catalog.ok());
  TableMeta a = SampleTable("alice", "t");
  TableMeta b = SampleTable("bob", "t");  // same name, different user
  ASSERT_TRUE((*catalog)->CreateTable(&a).ok());
  ASSERT_TRUE((*catalog)->CreateTable(&b).ok());
  EXPECT_NE(a.table_id, b.table_id);
  EXPECT_TRUE((*catalog)->TableExists("alice", "t"));
  ASSERT_TRUE((*catalog)->DropTable("alice", "t").ok());
  EXPECT_FALSE((*catalog)->TableExists("alice", "t"));
  EXPECT_TRUE((*catalog)->TableExists("bob", "t"));
}

TEST(CatalogTest, PersistsAcrossReopen) {
  TempDir dir("catalog_persist");
  std::string path = dir.path() + "/meta.jsonl";
  uint64_t id;
  {
    auto catalog = Catalog::Open(path);
    ASSERT_TRUE(catalog.ok());
    TableMeta t = SampleTable("alice", "orders");
    ASSERT_TRUE((*catalog)->CreateTable(&t).ok());
    id = t.table_id;
  }
  auto catalog = Catalog::Open(path);
  ASSERT_TRUE(catalog.ok());
  auto fetched = (*catalog)->GetTable("alice", "orders");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->table_id, id);
  EXPECT_EQ(fetched->columns[3].srid, "4326");
  // New tables get fresh ids after reopen.
  TableMeta t2 = SampleTable("alice", "more");
  ASSERT_TRUE((*catalog)->CreateTable(&t2).ok());
  EXPECT_GT(t2.table_id, id);
}

TEST(CatalogTest, DropMissingTableFails) {
  TempDir dir("catalog_missing");
  auto catalog = Catalog::Open(dir.path() + "/meta.jsonl");
  ASSERT_TRUE(catalog.ok());
  EXPECT_TRUE((*catalog)->DropTable("u", "ghost").IsNotFound());
  EXPECT_TRUE((*catalog)->GetTable("u", "ghost").status().IsNotFound());
}

TEST(TableMetaTest, SchemaAndColumnIndex) {
  TableMeta t = SampleTable("u", "t");
  auto schema = t.MakeSchema();
  EXPECT_EQ(schema->num_fields(), 5u);
  EXPECT_EQ(schema->field(3).type, exec::DataType::kGeometry);
  EXPECT_EQ(t.ColumnIndex("geom"), 3);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
}

}  // namespace
}  // namespace just::meta
