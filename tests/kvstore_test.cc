#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kvstore/block.h"
#include "kvstore/bloom.h"
#include "kvstore/lsm_store.h"
#include "kvstore/skiplist.h"
#include "kvstore/sstable.h"
#include "kvstore/wal.h"
#include "test_util.h"

namespace just::kv {
namespace {

using just::testing::TempDir;

// --- SkipList ---

TEST(SkipListTest, PutGetOverwrite) {
  SkipList list;
  list.Put("b", "2");
  list.Put("a", "1");
  list.Put("c", "3");
  std::string v;
  EXPECT_TRUE(list.Get("a", &v));
  EXPECT_EQ(v, "1");
  list.Put("a", "updated");
  EXPECT_TRUE(list.Get("a", &v));
  EXPECT_EQ(v, "updated");
  EXPECT_FALSE(list.Get("zz", &v));
  EXPECT_EQ(list.size(), 3u);
}

TEST(SkipListTest, IteratesInOrder) {
  SkipList list;
  Rng rng(1);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1000; ++i) {
    std::string key = std::to_string(rng.Next() % 10000);
    std::string value = std::to_string(i);
    list.Put(key, value);
    model[key] = value;
  }
  SkipList::Iterator it(&list);
  auto mit = model.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it.key(), mit->first);
    EXPECT_EQ(it.value(), mit->second);
  }
  EXPECT_EQ(mit, model.end());
}

TEST(SkipListTest, SeekFindsLowerBound) {
  SkipList list;
  for (int i = 0; i < 100; i += 10) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%03d", i);
    list.Put(buf, "v");
  }
  SkipList::Iterator it(&list);
  it.Seek("015");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "020");
  it.Seek("000");
  EXPECT_EQ(it.key(), "000");
  it.Seek("999");
  EXPECT_FALSE(it.Valid());
}

// --- Bloom ---

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back("key" + std::to_string(i));
    builder.AddKey(keys.back());
  }
  std::string data = builder.Finish();
  BloomFilter filter(data);
  for (const auto& key : keys) {
    EXPECT_TRUE(filter.MayContain(key)) << key;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 2000; ++i) builder.AddKey("key" + std::to_string(i));
  std::string data = builder.Finish();
  BloomFilter filter(data);
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (filter.MayContain("absent" + std::to_string(i))) ++false_positives;
  }
  // 10 bits/key gives ~1%; allow generous slack.
  EXPECT_LT(false_positives, 500);
}

TEST(BloomTest, EmptyFilterMatchesAll) {
  BloomFilter filter("");
  EXPECT_TRUE(filter.MayContain("anything"));
}

// --- Block ---

TEST(BlockTest, BuildParseIterate) {
  BlockBuilder builder(4);
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%04d", i);
    entries.emplace_back(key, "value" + std::to_string(i));
    builder.Add(entries.back().first, entries.back().second);
  }
  auto block = Block::Parse(builder.Finish());
  ASSERT_TRUE(block.ok());
  Block::Iterator it(block->get());
  size_t i = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++i) {
    ASSERT_LT(i, entries.size());
    EXPECT_EQ(it.key(), entries[i].first);
    EXPECT_EQ(it.value(), entries[i].second);
  }
  EXPECT_EQ(i, entries.size());
}

TEST(BlockTest, SeekExactAndBetween) {
  BlockBuilder builder(4);
  for (int i = 0; i < 100; i += 2) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%04d", i);
    builder.Add(key, "v");
  }
  auto block = Block::Parse(builder.Finish());
  ASSERT_TRUE(block.ok());
  Block::Iterator it(block->get());
  it.Seek("key0050");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "key0050");
  it.Seek("key0051");  // between entries
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "key0052");
  it.Seek("key9999");
  EXPECT_FALSE(it.Valid());
  it.Seek("");  // before all
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "key0000");
}

TEST(BlockTest, PrefixCompressionShrinksSharedKeys) {
  BlockBuilder with_sharing(16);
  BlockBuilder no_sharing(1);  // restart every entry: no sharing
  for (int i = 0; i < 200; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "common/long/prefix/%06d", i);
    with_sharing.Add(key, "v");
    no_sharing.Add(key, "v");
  }
  EXPECT_LT(with_sharing.Finish().size(), no_sharing.Finish().size());
}

TEST(BlockTest, RejectsTinyBuffers) {
  EXPECT_FALSE(Block::Parse("ab").ok());
}

// --- WAL ---

TEST(WalTest, AppendReplay) {
  TempDir dir("wal");
  std::string path = dir.path() + "/wal.log";
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "k1", "v1").ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kDelete, "k2", "").ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "k3", std::string(5000, 'x')).ok());
    ASSERT_TRUE(writer.Sync().ok());
  }
  std::vector<std::tuple<WalRecordType, std::string, std::string>> replayed;
  ASSERT_TRUE(ReplayWal(path, [&](WalRecordType type, std::string_view k,
                                  std::string_view v) {
                replayed.emplace_back(type, std::string(k), std::string(v));
              }).ok());
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(std::get<1>(replayed[0]), "k1");
  EXPECT_EQ(std::get<0>(replayed[1]), WalRecordType::kDelete);
  EXPECT_EQ(std::get<2>(replayed[2]).size(), 5000u);
}

TEST(WalTest, StopsAtTornTail) {
  TempDir dir("wal_torn");
  std::string path = dir.path() + "/wal.log";
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "good", "1").ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "torn", "2").ok());
    writer.Sync();
  }
  // Truncate the last few bytes (simulated crash mid-write).
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 3);
  int count = 0;
  ASSERT_TRUE(ReplayWal(path, [&](WalRecordType, std::string_view k,
                                  std::string_view) {
                EXPECT_EQ(k, "good");
                ++count;
              }).ok());
  EXPECT_EQ(count, 1);
}

TEST(WalTest, MissingFileIsEmptyReplay) {
  int count = 0;
  ASSERT_TRUE(ReplayWal("/nonexistent/path/wal.log",
                        [&](WalRecordType, std::string_view,
                            std::string_view) { ++count; })
                  .ok());
  EXPECT_EQ(count, 0);
}

TEST(WalTest, Crc32KnownVector) {
  // Standard CRC-32 ("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

// --- SSTable ---

TEST(SsTableTest, BuildOpenGetIterate) {
  TempDir dir("sst");
  std::string path = dir.path() + "/t.sst";
  SsTableBuilder builder;
  ASSERT_TRUE(builder.Open(path).ok());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 5000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    std::string value = "value" + std::to_string(i * 7);
    model[key] = value;
    ASSERT_TRUE(builder.Add(key, value).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());

  auto reader = SsTableReader::Open(path, 1, nullptr);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_entries(), 5000u);

  std::string v;
  EXPECT_TRUE((*reader)->Get("key000123", &v).ok());
  EXPECT_EQ(v, model["key000123"]);
  EXPECT_TRUE((*reader)->Get("missing", &v).IsNotFound());

  SsTableReader::Iterator it(reader->get());
  auto mit = model.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it.key(), mit->first);
    EXPECT_EQ(std::string(it.value()), mit->second);
  }
  EXPECT_EQ(mit, model.end());
}

TEST(SsTableTest, SeekWithinAndAcrossBlocks) {
  TempDir dir("sst_seek");
  std::string path = dir.path() + "/t.sst";
  SsTableBuilder::Options opts;
  opts.block_size = 256;  // force many blocks
  SsTableBuilder builder(opts);
  ASSERT_TRUE(builder.Open(path).ok());
  for (int i = 0; i < 1000; i += 2) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(builder.Add(key, "v").ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  auto reader = SsTableReader::Open(path, 2, nullptr);
  ASSERT_TRUE(reader.ok());
  SsTableReader::Iterator it(reader->get());
  it.Seek("key000501");  // odd: between entries
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "key000502");
  it.Seek("key000000");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "key000000");
  it.Seek("zzz");
  EXPECT_FALSE(it.Valid());
}

TEST(SsTableTest, RejectsOutOfOrderAdds) {
  TempDir dir("sst_order");
  SsTableBuilder builder;
  ASSERT_TRUE(builder.Open(dir.path() + "/t.sst").ok());
  ASSERT_TRUE(builder.Add("b", "1").ok());
  EXPECT_FALSE(builder.Add("a", "2").ok());
  EXPECT_FALSE(builder.Add("b", "3").ok());  // duplicates also rejected
}

TEST(SsTableTest, BlockCacheServesRepeatedReads) {
  TempDir dir("sst_cache");
  std::string path = dir.path() + "/t.sst";
  SsTableBuilder builder;
  ASSERT_TRUE(builder.Open(path).ok());
  for (int i = 0; i < 2000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(builder.Add(key, "v").ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  BlockCache cache(1 << 20);
  auto reader = SsTableReader::Open(path, 3, &cache);
  ASSERT_TRUE(reader.ok());
  std::string v;
  ASSERT_TRUE((*reader)->Get("key000100", &v).ok());
  uint64_t misses_after_first = cache.misses();
  ASSERT_TRUE((*reader)->Get("key000100", &v).ok());
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), misses_after_first);  // second read from cache
}

TEST(SsTableTest, CorruptFileRejected) {
  TempDir dir("sst_corrupt");
  std::string path = dir.path() + "/t.sst";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::string junk(100, 'j');
  std::fwrite(junk.data(), 1, junk.size(), f);
  std::fclose(f);
  EXPECT_FALSE(SsTableReader::Open(path, 4, nullptr).ok());
}

// --- LsmStore ---

StoreOptions SmallStore(const std::string& dir) {
  StoreOptions opts;
  opts.dir = dir;
  opts.memtable_bytes = 16 << 10;  // tiny: forces flushes
  opts.compaction_trigger = 4;
  return opts;
}

TEST(LsmStoreTest, PutGetDelete) {
  TempDir dir("lsm_basic");
  auto store = LsmStore::Open(SmallStore(dir.path()));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("a", "1").ok());
  std::string v;
  EXPECT_TRUE((*store)->Get("a", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE((*store)->Delete("a").ok());
  EXPECT_TRUE((*store)->Get("a", &v).IsNotFound());
}

TEST(LsmStoreTest, ModelBasedRandomOps) {
  TempDir dir("lsm_model");
  auto store_or = LsmStore::Open(SmallStore(dir.path()));
  ASSERT_TRUE(store_or.ok());
  LsmStore* store = store_or->get();
  std::map<std::string, std::string> model;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(500));
    if (rng.Uniform(10) < 7) {
      std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(store->Put(key, value).ok());
      model[key] = value;
    } else {
      ASSERT_TRUE(store->Delete(key).ok());
      model.erase(key);
    }
  }
  // Point lookups agree.
  for (int i = 0; i < 500; ++i) {
    std::string key = "k" + std::to_string(i);
    std::string v;
    Status st = store->Get(key, &v);
    auto mit = model.find(key);
    if (mit == model.end()) {
      EXPECT_TRUE(st.IsNotFound()) << key;
    } else {
      ASSERT_TRUE(st.ok()) << key << " " << st.ToString();
      EXPECT_EQ(v, mit->second);
    }
  }
  // Full scan agrees (order + content).
  std::vector<std::pair<std::string, std::string>> scanned;
  ASSERT_TRUE(store
                  ->Scan("", "",
                         [&](std::string_view k, std::string_view v) {
                           scanned.emplace_back(std::string(k),
                                                std::string(v));
                           return true;
                         })
                  .ok());
  ASSERT_EQ(scanned.size(), model.size());
  auto mit = model.begin();
  for (size_t i = 0; i < scanned.size(); ++i, ++mit) {
    EXPECT_EQ(scanned[i].first, mit->first);
    EXPECT_EQ(scanned[i].second, mit->second);
  }
}

TEST(LsmStoreTest, RangeScanBounds) {
  TempDir dir("lsm_range");
  auto store = LsmStore::Open(SmallStore(dir.path()));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 100; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "%03d", i);
    ASSERT_TRUE((*store)->Put(key, "v").ok());
  }
  std::vector<std::string> keys;
  ASSERT_TRUE((*store)
                  ->Scan("010", "020",
                         [&](std::string_view k, std::string_view) {
                           keys.emplace_back(k);
                           return true;
                         })
                  .ok());
  ASSERT_EQ(keys.size(), 10u);
  EXPECT_EQ(keys.front(), "010");
  EXPECT_EQ(keys.back(), "019");  // end exclusive
}

TEST(LsmStoreTest, ScanEarlyStop) {
  TempDir dir("lsm_stop");
  auto store = LsmStore::Open(SmallStore(dir.path()));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "v").ok());
  }
  int seen = 0;
  ASSERT_TRUE((*store)
                  ->Scan("", "",
                         [&](std::string_view, std::string_view) {
                           return ++seen < 5;
                         })
                  .ok());
  EXPECT_EQ(seen, 5);
}

TEST(LsmStoreTest, NewestVersionWinsAcrossFlushes) {
  TempDir dir("lsm_versions");
  auto store = LsmStore::Open(SmallStore(dir.path()));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("key", "old").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Put("key", "new").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  std::string v;
  ASSERT_TRUE((*store)->Get("key", &v).ok());
  EXPECT_EQ(v, "new");
  // Scan also sees exactly one version.
  int count = 0;
  ASSERT_TRUE((*store)
                  ->Scan("", "",
                         [&](std::string_view, std::string_view val) {
                           EXPECT_EQ(val, "new");
                           ++count;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST(LsmStoreTest, TombstoneMasksOlderSstEntry) {
  TempDir dir("lsm_tomb");
  auto store = LsmStore::Open(SmallStore(dir.path()));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("doomed", "v").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Delete("doomed").ok());
  std::string v;
  EXPECT_TRUE((*store)->Get("doomed", &v).IsNotFound());
  int count = 0;
  ASSERT_TRUE((*store)
                  ->Scan("", "",
                         [&](std::string_view, std::string_view) {
                           ++count;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(count, 0);
}

TEST(LsmStoreTest, RecoversFromWalAfterReopen) {
  TempDir dir("lsm_recover");
  {
    auto store = LsmStore::Open(SmallStore(dir.path()));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("persist1", "a").ok());
    ASSERT_TRUE((*store)->Put("persist2", "b").ok());
    // No flush: data only in WAL + memtable.
  }
  auto store = LsmStore::Open(SmallStore(dir.path()));
  ASSERT_TRUE(store.ok());
  std::string v;
  EXPECT_TRUE((*store)->Get("persist1", &v).ok());
  EXPECT_EQ(v, "a");
  EXPECT_TRUE((*store)->Get("persist2", &v).ok());
  EXPECT_EQ(v, "b");
}

TEST(LsmStoreTest, RecoversSstablesViaManifest) {
  TempDir dir("lsm_manifest");
  {
    auto store = LsmStore::Open(SmallStore(dir.path()));
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(
          (*store)->Put("key" + std::to_string(i), std::string(50, 'x')).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto store = LsmStore::Open(SmallStore(dir.path()));
  ASSERT_TRUE(store.ok());
  std::string v;
  for (int i = 0; i < 2000; i += 97) {
    EXPECT_TRUE((*store)->Get("key" + std::to_string(i), &v).ok()) << i;
  }
}

TEST(LsmStoreTest, CompactionMergesToOneTableAndDropsTombstones) {
  TempDir dir("lsm_compact");
  auto store = LsmStore::Open(SmallStore(dir.path()));
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*store)
                      ->Put("key" + std::to_string(i),
                            "round" + std::to_string(round))
                      .ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  ASSERT_TRUE((*store)->Delete("key50").ok());
  ASSERT_TRUE((*store)->CompactAll().ok());
  auto stats = (*store)->GetStats();
  EXPECT_EQ(stats.num_sstables, 1u);
  EXPECT_EQ(stats.sstable_entries, 99u);  // 100 keys - 1 deleted, no dupes
  std::string v;
  ASSERT_TRUE((*store)->Get("key1", &v).ok());
  EXPECT_EQ(v, "round2");
  EXPECT_TRUE((*store)->Get("key50", &v).IsNotFound());
}

TEST(LsmStoreTest, AutomaticFlushOnMemtableLimit) {
  TempDir dir("lsm_autoflush");
  auto store = LsmStore::Open(SmallStore(dir.path()));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        (*store)->Put("key" + std::to_string(i), std::string(100, 'd')).ok());
  }
  auto stats = (*store)->GetStats();
  EXPECT_GT(stats.num_sstables, 0u);  // must have flushed at least once
  EXPECT_LT(stats.num_sstables, 50u);  // and compacted along the way
}

}  // namespace
}  // namespace just::kv
