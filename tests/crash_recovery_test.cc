// Crash and corruption recovery: torn WAL tails, simulated power loss,
// startup quarantine of half-written SSTables, and a byte-flip sweep that
// corrupts every single byte of an SSTable in turn. The invariant under
// test: the store serves exactly-correct data or a clean Status::Corruption
// — never a wrong answer, never a silent loss.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/fault_env.h"
#include "kvstore/lsm_store.h"
#include "kvstore/wal.h"
#include "test_util.h"

namespace just::kv {
namespace {

using just::testing::TempDir;

StoreOptions SmallStoreOptions(const std::string& dir, Env* env) {
  StoreOptions opts;
  opts.dir = dir;
  opts.env = env;
  opts.block_size = 256;
  opts.compaction_trigger = 100;  // keep the table layout deterministic
  return opts;
}

std::string TestKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%03d", i);
  return buf;
}

std::string TestValue(int i) {
  return "value-" + std::to_string(i) + std::string(16, 'v');
}

// --- Torn WAL tail ---

// Writes K records, then truncates the log at every byte offset inside the
// last record. Replay must yield exactly the first K-1 records each time: a
// torn tail is dropped cleanly, never half-applied, and never takes the
// preceding intact records with it.
TEST(CrashRecoveryTest, TornWalTailReplaysExactlyPrecedingRecords) {
  TempDir dir("torn_wal");
  const std::string path = dir.path() + "/wal.log";
  const int kRecords = 5;
  std::vector<uint64_t> size_after;  // file size after each record
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, /*truncate=*/true).ok());
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(writer.Append(WalRecordType::kPut, TestKey(i),
                                TestValue(i)).ok());
      ASSERT_TRUE(writer.Sync().ok());
      auto size = Env::Default()->GetFileSize(path);
      ASSERT_TRUE(size.ok());
      size_after.push_back(*size);
    }
  }

  auto replay = [&](std::vector<std::pair<std::string, std::string>>* out) {
    out->clear();
    return ReplayWal(path, [&](WalRecordType type, std::string_view key,
                               std::string_view value) {
      ASSERT_EQ(type, WalRecordType::kPut);
      out->emplace_back(std::string(key), std::string(value));
    });
  };

  std::vector<std::pair<std::string, std::string>> records;
  ASSERT_TRUE(replay(&records).ok());
  ASSERT_EQ(records.size(), static_cast<size_t>(kRecords));

  // Truncate downward through every byte of the last record, including the
  // cut that removes it entirely.
  for (uint64_t cut = size_after[kRecords - 1] - 1;
       cut + 1 > size_after[kRecords - 2]; --cut) {
    ASSERT_TRUE(Env::Default()->TruncateFile(path, cut).ok());
    ASSERT_TRUE(replay(&records).ok()) << "cut at byte " << cut;
    ASSERT_EQ(records.size(), static_cast<size_t>(kRecords - 1))
        << "cut at byte " << cut;
    for (int i = 0; i < kRecords - 1; ++i) {
      EXPECT_EQ(records[i].first, TestKey(i));
      EXPECT_EQ(records[i].second, TestValue(i));
    }
  }
}

// A flipped byte mid-log must not let later records through: replay applies
// the intact prefix and stops at the damaged record.
TEST(CrashRecoveryTest, CorruptWalRecordStopsReplayAtIntactPrefix) {
  TempDir dir("corrupt_wal");
  const std::string path = dir.path() + "/wal.log";
  std::vector<uint64_t> size_after;
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, /*truncate=*/true).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(writer.Append(WalRecordType::kPut, TestKey(i),
                                TestValue(i)).ok());
      ASSERT_TRUE(writer.Sync().ok());
      size_after.push_back(*Env::Default()->GetFileSize(path));
    }
  }
  FaultInjectionEnv env;
  // Damage the third record's payload.
  ASSERT_TRUE(env.FlipByte(path, size_after[1] + 6).ok());
  size_t count = 0;
  ASSERT_TRUE(ReplayWal(path, [&](WalRecordType, std::string_view key,
                                  std::string_view) {
    EXPECT_EQ(key, TestKey(static_cast<int>(count)));
    ++count;
  }).ok());
  EXPECT_EQ(count, 2u);
}

// --- Simulated power loss ---

// With sync_wal on, every acknowledged write survives power loss; writes
// acknowledged without sync may vanish, but the store must still reopen
// cleanly and keep everything that was synced before.
TEST(CrashRecoveryTest, PowerLossKeepsSyncedWritesDropsUnsynced) {
  TempDir dir("power_loss");
  FaultInjectionEnv env;
  {
    StoreOptions opts = SmallStoreOptions(dir.path(), &env);
    opts.sync_wal = true;
    auto store = LsmStore::Open(opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*store)->Put(TestKey(i), TestValue(i)).ok());
    }
  }
  {
    StoreOptions opts = SmallStoreOptions(dir.path(), &env);
    opts.sync_wal = false;  // acknowledgement no longer implies durability
    auto store = LsmStore::Open(opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*store)->Put("unsynced" + std::to_string(i), "gone").ok());
    }
    env.DropUnsyncedWrites();  // power loss; store object still "running"
  }  // the dying store's close attempts fail under the write lockout
  env.ClearFaults();

  auto store = LsmStore::Open(SmallStoreOptions(dir.path(), Env::Default()));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  std::string value;
  for (int i = 0; i < 10; ++i) {
    Status st = (*store)->Get(TestKey(i), &value);
    ASSERT_TRUE(st.ok()) << "synced write " << i << " lost: " << st.ToString();
    EXPECT_EQ(value, TestValue(i));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        (*store)->Get("unsynced" + std::to_string(i), &value).IsNotFound());
  }
}

// Power loss immediately after Flush(): the flushed table was fsynced and
// committed via the MANIFEST before Flush returned, so it must survive even
// though the WAL that covered those writes is now truncated.
TEST(CrashRecoveryTest, PowerLossAfterFlushKeepsFlushedData) {
  TempDir dir("power_after_flush");
  FaultInjectionEnv env;
  {
    auto store = LsmStore::Open(SmallStoreOptions(dir.path(), &env));
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*store)->Put(TestKey(i), TestValue(i)).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    env.DropUnsyncedWrites();
  }
  env.ClearFaults();
  auto store = LsmStore::Open(SmallStoreOptions(dir.path(), Env::Default()));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  std::string value;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*store)->Get(TestKey(i), &value).ok()) << TestKey(i);
    EXPECT_EQ(value, TestValue(i));
  }
}

// --- Startup quarantine ---

TEST(CrashRecoveryTest, QuarantinesStraySstAndRemovesTmpFiles) {
  TempDir dir("quarantine");
  {
    auto store = LsmStore::Open(SmallStoreOptions(dir.path(), Env::Default()));
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE((*store)->Put(TestKey(i), TestValue(i)).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Plant the debris a crash mid-flush/compaction leaves behind: a table the
  // MANIFEST never committed and a half-built temp file.
  Env* posix = Env::Default();
  for (const char* name : {"000099.sst", "000042.sst.tmp"}) {
    auto file = posix->NewWritableFile(dir.path() + "/" + name, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("partial table junk").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  auto store = LsmStore::Open(SmallStoreOptions(dir.path(), Env::Default()));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->GetStats().quarantined_files, 1u);
  EXPECT_FALSE(posix->FileExists(dir.path() + "/000099.sst"));
  EXPECT_TRUE(posix->FileExists(dir.path() + "/000099.sst.quarantine"));
  EXPECT_FALSE(posix->FileExists(dir.path() + "/000042.sst.tmp"));

  // Committed data is untouched by the cleanup.
  std::string value;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*store)->Get(TestKey(i), &value).ok());
    EXPECT_EQ(value, TestValue(i));
  }
  // The file-number counter skips past the quarantined table, so the next
  // flush cannot collide with it.
  ASSERT_TRUE((*store)->Put("zz", "after").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_TRUE(posix->FileExists(dir.path() + "/000100.sst"));
}

// --- Byte-flip sweep ---

// Flips every single byte of a committed SSTable in turn and checks the
// acceptance criterion from the failure model: each read either returns
// exactly-correct data or Status::Corruption. A flip that lands in the bloom
// block is allowed to degrade to always-match — correctness is unaffected —
// but must then show up in Stats as a corrupt bloom table.
TEST(CrashRecoveryTest, AnySingleByteFlipIsDetectedOrHarmless) {
  TempDir dir("byte_flip");
  const int kKeys = 40;
  std::map<std::string, std::string> model;
  {
    auto store = LsmStore::Open(SmallStoreOptions(dir.path(), Env::Default()));
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE((*store)->Put(TestKey(i), TestValue(i)).ok());
      model[TestKey(i)] = TestValue(i);
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Locate the single SSTable produced by the flush.
  std::string sst_path;
  auto entries = Env::Default()->ListDir(dir.path());
  ASSERT_TRUE(entries.ok());
  for (const auto& name : *entries) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
      ASSERT_TRUE(sst_path.empty()) << "expected exactly one table";
      sst_path = dir.path() + "/" + name;
    }
  }
  ASSERT_FALSE(sst_path.empty());
  auto file_size = Env::Default()->GetFileSize(sst_path);
  ASSERT_TRUE(file_size.ok());

  FaultInjectionEnv flipper;  // used only for its FlipByte utility
  size_t bloom_degradations = 0;
  for (uint64_t offset = 0; offset < *file_size; ++offset) {
    ASSERT_TRUE(flipper.FlipByte(sst_path, offset).ok());

    auto store = LsmStore::Open(SmallStoreOptions(dir.path(), Env::Default()));
    if (!store.ok()) {
      // Footer/index/first-block damage can fail the open — but only with a
      // corruption report, never a crash or a silently empty store.
      EXPECT_TRUE(store.status().IsCorruption())
          << "offset " << offset << ": " << store.status().ToString();
    } else {
      bool all_reads_clean = true;
      // Full scan: either the exact model contents or a corruption error.
      std::map<std::string, std::string> scanned;
      Status st = (*store)->Scan(
          "", "", [&](std::string_view k, std::string_view v) {
            scanned.emplace(std::string(k), std::string(v));
            return true;
          });
      if (st.ok()) {
        EXPECT_EQ(scanned, model) << "offset " << offset;
      } else {
        all_reads_clean = false;
        EXPECT_TRUE(st.IsCorruption())
            << "offset " << offset << ": " << st.ToString();
      }
      // Point reads: correct value or corruption — never a wrong value and
      // never a false NotFound.
      for (int i = 0; i < kKeys; i += 7) {
        std::string value;
        st = (*store)->Get(TestKey(i), &value);
        if (st.ok()) {
          EXPECT_EQ(value, model[TestKey(i)])
              << "offset " << offset << " key " << TestKey(i);
        } else {
          all_reads_clean = false;
          EXPECT_TRUE(st.IsCorruption())
              << "offset " << offset << ": " << st.ToString();
        }
      }
      if (all_reads_clean) {
        // Every byte of the table is checksummed, so a flip that nothing
        // noticed can only mean the bloom block took the hit and the table
        // degraded to bloom-less lookups — which must be observable.
        EXPECT_EQ((*store)->GetStats().corrupt_bloom_tables, 1u)
            << "offset " << offset << " flipped undetected";
        ++bloom_degradations;
      }
    }

    ASSERT_TRUE(flipper.FlipByte(sst_path, offset).ok());  // restore
  }
  // The table carries a real bloom filter, so some flips must have landed
  // in it and exercised the degradation path.
  EXPECT_GT(bloom_degradations, 0u);
}

// --- Power cut mid-leveled-compaction ---

// Leveled store with budgets small enough that the fourth flush schedules
// an L0->L1 compaction. sync_wal keeps the failure model strict: every
// acknowledged write must survive any cut.
StoreOptions LeveledCrashOptions(const std::string& dir, Env* env) {
  StoreOptions opts;
  opts.dir = dir;
  opts.env = env;
  opts.block_size = 256;
  opts.compaction_trigger = 4;
  opts.compaction_style = CompactionStyle::kLeveled;
  opts.num_levels = 4;
  opts.level_base_bytes = 16 << 10;
  opts.level_fanout = 4;
  opts.target_file_size = 8 << 10;
  opts.sync_wal = true;
  return opts;
}

// Four overlapping memtables, the last carrying tombstones, flushed until
// L0 hits the compaction trigger — so exactly one L0->L1 compaction is
// scheduled as the final flush commits. `model` gets the expected contents.
void LoadUntilCompactionTriggered(LsmStore* store,
                                  std::map<std::string, std::string>* model) {
  for (int round = 0; round < 4; ++round) {
    for (int j = 0; j < 30; ++j) {
      int i = round * 8 + j;  // ranges overlap: the merge has real work
      ASSERT_TRUE(store->Put(TestKey(i), TestValue(i + round)).ok());
      (*model)[TestKey(i)] = TestValue(i + round);
    }
    if (round == 3) {
      for (int i = 0; i < 5; ++i) {  // tombstones ride into the compaction
        ASSERT_TRUE(store->Delete(TestKey(i)).ok());
        model->erase(TestKey(i));
      }
    }
    ASSERT_TRUE(store->Flush().ok());
  }
}

void VerifyExactlyModel(LsmStore* store,
                        const std::map<std::string, std::string>& model) {
  std::string value;
  for (const auto& [key, expected] : model) {
    Status st = store->Get(key, &value);
    ASSERT_TRUE(st.ok()) << key << ": " << st.ToString();
    EXPECT_EQ(value, expected) << key;
  }
  for (int i = 0; i < 5; ++i) {  // deleted keys must stay deleted
    EXPECT_TRUE(store->Get(TestKey(i), &value).IsNotFound()) << TestKey(i);
  }
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE(store
                  ->Scan("", "",
                         [&](std::string_view k, std::string_view v) {
                           scanned.emplace(std::string(k), std::string(v));
                           return true;
                         })
                  .ok());
  EXPECT_EQ(scanned, model);
}

// Waits (bounded) until the injected fault has been hit or the background
// compaction finished without reaching it.
void AwaitFaultOrIdle(FaultInjectionEnv* env, LsmStore* store,
                      int64_t fail_at) {
  for (int spin = 0; spin < 300; ++spin) {
    if (env->write_ops() >= fail_at) return;
    if (store->GetStats().level_files[0] == 0) return;  // compaction done
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// Measures how many filesystem write ops the scheduled L0->L1 compaction
// performs on a healthy disk, so the sweeps below can target every one.
int64_t MeasureCompactionWriteOps() {
  TempDir dir("compaction_ops_probe");
  FaultInjectionEnv env;
  auto store = LsmStore::Open(LeveledCrashOptions(dir.path(), &env));
  EXPECT_TRUE(store.ok());
  std::map<std::string, std::string> model;
  LoadUntilCompactionTriggered(store->get(), &model);
  const int64_t before = env.write_ops();
  EXPECT_TRUE((*store)->WaitForBackgroundIdle().ok());
  auto stats = (*store)->GetStats();
  EXPECT_EQ(stats.level_files[0], 0u);  // the compaction actually ran
  EXPECT_GT(stats.level_files[1], 0u);
  return env.write_ops() - before;
}

// Sweeps a dead-disk power cut across every write op of the L0->L1
// compaction: tmp-file create/append/sync, the rename, the MANIFEST
// commit, the input deletions. Whatever op the cut lands on, reopening
// must serve exactly the acknowledged contents — the compaction inputs
// stay live until the MANIFEST rename commits the outputs, so a
// half-finished compaction can lose nothing and resurrect nothing.
TEST(CrashRecoveryTest, PowerCutMidCompactionLosesNothing) {
  const int64_t compaction_ops = MeasureCompactionWriteOps();
  ASSERT_GT(compaction_ops, 0);
  // Full sweep, capped to keep the test time bounded under sanitizers.
  const int64_t step = std::max<int64_t>(1, compaction_ops / 40);
  for (int64_t k = 1; k <= compaction_ops; k += step) {
    TempDir dir("power_cut_compaction");
    FaultInjectionEnv env;
    std::map<std::string, std::string> model;
    {
      auto store = LsmStore::Open(LeveledCrashOptions(dir.path(), &env));
      ASSERT_TRUE(store.ok());
      LoadUntilCompactionTriggered(store->get(), &model);
      const int64_t fail_at = env.write_ops() + k;
      env.FailWriteOp(fail_at);  // disk dies at the k-th compaction op
      AwaitFaultOrIdle(&env, store->get(), fail_at);
      env.DropUnsyncedWrites();  // power loss
    }  // the dying store's close attempts fail under the write lockout
    env.ClearFaults();

    auto store =
        LsmStore::Open(LeveledCrashOptions(dir.path(), Env::Default()));
    ASSERT_TRUE(store.ok()) << "cut at op " << k << ": "
                            << store.status().ToString();
    VerifyExactlyModel(store->get(), model);

    // The recovered store must remain fully operational: new writes,
    // background compaction, and a manual major compaction all succeed.
    ASSERT_TRUE((*store)->Put("post-crash", "alive").ok()) << "op " << k;
    ASSERT_TRUE((*store)->Flush().ok()) << "op " << k;
    ASSERT_TRUE((*store)->WaitForBackgroundIdle().ok()) << "op " << k;
    ASSERT_TRUE((*store)->CompactAll().ok()) << "op " << k;
    model["post-crash"] = "alive";
    VerifyExactlyModel(store->get(), model);
  }
}

// A transient single-op fault during compaction (disk recovers immediately)
// must not corrupt anything: the attempt unwinds, reads stay exact, and a
// later manual compaction succeeds.
TEST(CrashRecoveryTest, TransientFaultDuringCompactionUnwindsCleanly) {
  const int64_t compaction_ops = MeasureCompactionWriteOps();
  ASSERT_GT(compaction_ops, 0);
  const int64_t step = std::max<int64_t>(1, compaction_ops / 10);
  for (int64_t k = 1; k <= compaction_ops; k += step) {
    TempDir dir("transient_compaction");
    FaultInjectionEnv env;
    std::map<std::string, std::string> model;
    auto store = LsmStore::Open(LeveledCrashOptions(dir.path(), &env));
    ASSERT_TRUE(store.ok());
    LoadUntilCompactionTriggered(store->get(), &model);
    const int64_t fail_at = env.write_ops() + k;
    env.FailWriteOp(fail_at, /*all_after=*/false);  // one-shot fault
    AwaitFaultOrIdle(&env, store->get(), fail_at);

    VerifyExactlyModel(store->get(), model);
    ASSERT_TRUE((*store)->CompactAll().ok()) << "op " << k;
    VerifyExactlyModel(store->get(), model);
    // The deeper levels still hold the non-overlap invariant.
    auto levels = (*store)->GetLevelInfo();
    for (size_t level = 1; level < levels.size(); ++level) {
      for (size_t i = 0; i + 1 < levels[level].size(); ++i) {
        ASSERT_LT(levels[level][i].largest_key,
                  levels[level][i + 1].smallest_key)
            << "op " << k << " L" << level;
      }
    }
  }
}

}  // namespace
}  // namespace just::kv
