// Crash-safety of the online secondary-index build against real region
// server processes: SIGKILL a server mid-CREATE INDEX, restart it, and the
// engine must come back with the index either absent (rerunnable) or fully
// `ready` — and a rerun build must match a post-hoc base-table scan exactly.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "net_harness.h"
#include "sql/justql.h"
#include "test_util.h"

namespace just {
namespace {

using just::testing::ServerProcess;
using just::testing::TempDir;

TEST(SecondaryIndexNetTest, SigkillMidBuildThenRebuildMatchesBaseScan) {
  TempDir dir("secidx_net");
  const std::string engine_dir = dir.path() + "/engine";
  std::filesystem::create_directories(engine_dir);

  std::vector<std::unique_ptr<ServerProcess>> servers;
  for (int i = 0; i < 2; ++i) {
    ServerProcess::Options po;
    po.dir = dir.path() + "/rs" + std::to_string(i);
    std::filesystem::create_directories(po.dir);
    // sync_wal stays on: acknowledged writes must survive the SIGKILL.
    auto server = std::make_unique<ServerProcess>(po);
    ASSERT_TRUE(server->Start()) << "region server " << i;
    servers.push_back(std::move(server));
  }

  auto open_engine = [&]() {
    core::EngineOptions options;
    options.data_dir = engine_dir;
    options.num_servers = 2;
    options.num_shards = 4;
    for (auto& server : servers) {
      options.server_addrs.push_back(server->addr());
    }
    return core::JustEngine::Open(options);
  };

  Status built;
  {
    auto engine = open_engine();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    meta::TableMeta table;
    table.user = "u";
    table.name = "orders";
    table.columns = {
        {"fid", exec::DataType::kString, true, "", ""},
        {"courier", exec::DataType::kString, false, "", ""},
        {"time", exec::DataType::kTimestamp, false, "", ""},
        {"geom", exec::DataType::kGeometry, false, "", ""},
    };
    ASSERT_TRUE((*engine)->CreateTable(table).ok());
    TimestampMs base = ParseTimestamp("2018-10-01").value();
    Rng rng(31);
    std::vector<exec::Row> rows;
    for (int i = 0; i < 4000; ++i) {
      rows.push_back({
          exec::Value::String("o" + std::to_string(i)),
          exec::Value::String("c" + std::to_string(i % 10)),
          exec::Value::Timestamp(base + i * kMillisPerMinute),
          exec::Value::GeometryVal(geo::Geometry::MakePoint(
              {116.0 + rng.NextDouble(), 39.5 + rng.NextDouble()})),
      });
    }
    ASSERT_TRUE((*engine)->InsertBatch("u", "orders", rows).ok());
    ASSERT_TRUE((*engine)->Finalize().ok());

    // SIGKILL one region server while the backfill streams index entries.
    std::thread builder([&] {
      built = (*engine)->CreateIndex("u", "orders", "idx_c", "courier");
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    servers[1]->Kill();
    builder.join();
  }

  ASSERT_TRUE(servers[1]->Restart());

  auto engine = open_engine();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto described = (*engine)->DescribeTable("u", "orders");
  ASSERT_TRUE(described.ok());
  const meta::SecondaryIndexDef* def = described->FindSecondaryIndex("idx_c");
  if (def == nullptr) {
    // The interrupted build rolled back (or the reopen swept the leftover
    // `building` entry); it must be rerunnable against the healthy cluster.
    EXPECT_FALSE(built.ok());
    ASSERT_TRUE(
        (*engine)->CreateIndex("u", "orders", "idx_c", "courier").ok());
  } else {
    // The build won the race with the kill; it may only be fully ready.
    EXPECT_EQ(def->state, meta::IndexState::kReady);
  }

  // The finished index must agree exactly with a base-table scan.
  auto full = (*engine)->FullScan("u", "orders");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full->num_rows(), 4000u);
  sql::JustQL ql(engine->get());
  for (int c = 0; c < 10; ++c) {
    std::string courier = "c" + std::to_string(c);
    std::multiset<std::string> oracle;
    for (const auto& row : full->rows()) {
      if (row[1].string_value() == courier) {
        oracle.insert(row[0].string_value());
      }
    }
    auto result =
        ql.Execute("u", "SELECT fid FROM orders WHERE courier = '" + courier +
                            "'");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::multiset<std::string> got;
    for (const auto& row : result->frame.rows()) {
      got.insert(row[0].string_value());
    }
    EXPECT_EQ(got, oracle) << courier;
  }
}

}  // namespace
}  // namespace just
