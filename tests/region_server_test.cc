// Multi-process tests for the out-of-process region server. Every test here
// spawns at least one real `just_region_server` process (tests/net_harness.h)
// and talks to it through the socket client — the same path a deployed
// cluster uses. The crash tests SIGKILL the process mid-write and assert,
// through the client, that every acknowledged write survives (the server
// runs with --sync-wal 1, so acknowledged == fsynced).
//
// These tests carry the ctest label "net": they run in the plain and
// asan/ubsan CI jobs but are excluded from tsan (fork + exec of an
// instrumented child per test is slow and adds no interleaving coverage the
// in-process tests lack).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/region_cluster.h"
#include "common/bytes.h"
#include "kvstore/wal.h"
#include "net/region_client.h"
#include "net/wire_protocol.h"
#include "net_harness.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace just::net {
namespace {

using just::testing::FaultProxy;
using just::testing::ServerProcess;
using just::testing::TempDir;

RegionClient MakeClient(int port, uint32_t page_rows = 512,
                        int io_timeout_ms = 10000) {
  RegionClientOptions opts;
  opts.port = port;
  opts.scan_page_rows = page_rows;
  opts.io_timeout_ms = io_timeout_ms;
  return RegionClient(opts);
}

std::string PaddedKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%05d", i);
  return buf;
}

TEST(RegionServerTest, PutGetDeleteOverSocket) {
  TempDir dir("net_basic");
  ServerProcess server({.dir = dir.path()});
  ASSERT_TRUE(server.Start());
  RegionClient client = MakeClient(server.port());

  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Put("alpha", "1").ok());
  ASSERT_TRUE(client.Put("beta", "2").ok());

  std::string v;
  ASSERT_TRUE(client.Get("alpha", &v).ok());
  EXPECT_EQ(v, "1");
  EXPECT_TRUE(client.Get("missing", &v).IsNotFound());

  ASSERT_TRUE(client.Delete("alpha").ok());
  EXPECT_TRUE(client.Get("alpha", &v).IsNotFound());
  ASSERT_TRUE(client.Get("beta", &v).ok());
  EXPECT_EQ(v, "2");
}

TEST(RegionServerTest, WriteBatchAndPagedScan) {
  TempDir dir("net_batch");
  ServerProcess server({.dir = dir.path(), .sync_wal = false});
  ASSERT_TRUE(server.Start());
  // Page size far below the row count: the scan below crosses many
  // cursor-resumed pages.
  RegionClient client = MakeClient(server.port(), /*page_rows=*/16);

  constexpr int kRows = 200;
  std::vector<kv::WriteOp> ops;
  for (int i = 0; i < kRows; ++i) {
    ops.push_back(kv::WriteOp{PaddedKey(i), "v" + std::to_string(i), false});
  }
  // A couple of deletes in the same batch, applied in order.
  ops.push_back(kv::WriteOp{PaddedKey(3), "", true});
  ops.push_back(kv::WriteOp{PaddedKey(7), "", true});
  ASSERT_TRUE(client.WriteBatch(ops).ok());

  std::vector<std::string> keys;
  ASSERT_TRUE(client
                  .Scan("", "",
                        [&](std::string_view k, std::string_view v) {
                          keys.push_back(std::string(k));
                          // PaddedKey(i) is "k%05d": recover i to check v.
                          int i = std::atoi(std::string(k.substr(1)).c_str());
                          EXPECT_EQ(v, "v" + std::to_string(i));
                          return true;
                        })
                  .ok());
  EXPECT_EQ(keys.size(), static_cast<size_t>(kRows - 2));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::count(keys.begin(), keys.end(), PaddedKey(3)), 0);
  EXPECT_EQ(std::count(keys.begin(), keys.end(), PaddedKey(7)), 0);

  // Early stop: the callback's false return ends the scan cleanly.
  int seen = 0;
  ASSERT_TRUE(client
                  .Scan("", "",
                        [&](std::string_view, std::string_view) {
                          return ++seen < 10;
                        })
                  .ok());
  EXPECT_EQ(seen, 10);
}

TEST(RegionServerTest, ScanCursorResumesAcrossRestart) {
  TempDir dir("net_cursor");
  ServerProcess server({.dir = dir.path()});  // sync_wal on: survives SIGKILL
  ASSERT_TRUE(server.Start());

  constexpr int kRows = 100;
  {
    RegionClient client = MakeClient(server.port());
    std::vector<kv::WriteOp> ops;
    for (int i = 0; i < kRows; ++i) {
      ops.push_back(kv::WriteOp{PaddedKey(i), "v", false});
    }
    ASSERT_TRUE(client.WriteBatch(ops).ok());

    // First page.
    ScanRequest req;
    req.limit_rows = 30;
    ScanResponse page;
    ASSERT_TRUE(client.ScanPage(req, &page).ok());
    ASSERT_TRUE(page.status.ok());
    ASSERT_EQ(page.rows.size(), 30u);
    ASSERT_TRUE(page.has_more);

    // Kill the server between pages: the cursor is pure client state, so
    // the scan continues against the restarted process.
    server.Kill();
    ASSERT_TRUE(server.Restart());

    std::vector<std::string> keys;
    for (const auto& row : page.rows) keys.push_back(row.key);
    RegionClient client2 = MakeClient(server.port());
    std::string cursor = page.next_cursor;
    bool more = true;
    while (more) {
      ScanRequest next;
      next.start_key = cursor;
      next.limit_rows = 30;
      ScanResponse p;
      ASSERT_TRUE(client2.ScanPage(next, &p).ok());
      ASSERT_TRUE(p.status.ok());
      for (const auto& row : p.rows) keys.push_back(row.key);
      more = p.has_more;
      cursor = p.next_cursor;
    }
    ASSERT_EQ(keys.size(), static_cast<size_t>(kRows));
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(std::set<std::string>(keys.begin(), keys.end()).size(),
              keys.size())
        << "resumed scan duplicated rows";
  }
}

TEST(RegionServerTest, SigkillMidWriteLosesNoAcknowledgedWrite) {
  TempDir dir("net_crash");
  ServerProcess server({.dir = dir.path()});  // sync_wal = true
  ASSERT_TRUE(server.Start());

  // Hammer writes from a background thread, recording exactly which ones
  // the server acknowledged, then SIGKILL mid-stream.
  std::atomic<bool> stop{false};
  std::vector<int> acked;
  std::thread writer([&] {
    RegionClient client = MakeClient(server.port());
    for (int i = 0; !stop.load(); ++i) {
      if (client.Put(PaddedKey(i), "v" + std::to_string(i)).ok()) {
        acked.push_back(i);
      } else {
        break;  // server is gone
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server.Kill();
  stop.store(true);
  writer.join();
  ASSERT_FALSE(acked.empty()) << "no write completed before the kill";

  ASSERT_TRUE(server.Restart());
  RegionClient client = MakeClient(server.port());
  for (int i : acked) {
    std::string v;
    ASSERT_TRUE(client.Get(PaddedKey(i), &v).ok())
        << "acknowledged write " << i << " lost after SIGKILL";
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
}

TEST(RegionServerTest, ShedsOnInflightCapAndCountsIt) {
  TempDir dir("net_shed_inflight");
  // max_inflight=0 makes the server-wide admission cap shed every
  // non-exempt request, deterministically.
  ServerProcess server(
      {.dir = dir.path(), .sync_wal = false, .max_inflight = 0});
  ASSERT_TRUE(server.Start());
  RegionClient client = MakeClient(server.port());

  // Ping and GetStats bypass admission: overload introspection must work
  // while the server is shedding.
  ASSERT_TRUE(client.Ping().ok());

  Status st = client.Put("k", "v");
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_TRUE(st.IsTransient()) << "shed must feed the retry path";
  std::string v;
  EXPECT_TRUE(client.Get("k", &v).IsUnavailable());

  StatsResponse stats;
  ASSERT_TRUE(client.GetStats(&stats).ok());
  EXPECT_GE(stats.shed_total, 2u);
  EXPECT_GE(stats.requests_total, 2u);
}

TEST(RegionServerTest, ShedsOnPipelineCapAndCountsIt) {
  TempDir dir("net_shed_pipeline");
  // max_pipeline=0: the per-connection queue admits nothing.
  ServerProcess server(
      {.dir = dir.path(), .sync_wal = false, .max_pipeline = 0});
  ASSERT_TRUE(server.Start());
  RegionClient client = MakeClient(server.port());

  Status st = client.Put("k", "v");
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  StatsResponse stats;
  ASSERT_TRUE(client.GetStats(&stats).ok());
  EXPECT_GE(stats.shed_total, 1u);
}

TEST(RegionServerTest, CorruptFrameClosesConnectionAndCounts) {
  TempDir dir("net_corrupt");
  ServerProcess server({.dir = dir.path(), .sync_wal = false});
  ASSERT_TRUE(server.Start());

  // Handcraft a frame whose payload byte is flipped after the CRC was
  // computed: the server must count it, close the connection, and keep
  // serving new connections.
  {
    auto sock = Connect("127.0.0.1", server.port());
    ASSERT_TRUE(sock.ok());
    std::string frame;
    EncodePingRequest(1, &frame);
    frame[frame.size() - 1] = static_cast<char>(frame.back() ^ 0x40);
    ASSERT_TRUE(sock->WriteFully(frame.data(), frame.size()).ok());
    // The server closes: the next read sees EOF (Unavailable).
    char byte;
    EXPECT_FALSE(sock->ReadFully(&byte, 1).ok());
  }
  {
    // Oversized declared length: also counted, also closes.
    auto sock = Connect("127.0.0.1", server.port());
    ASSERT_TRUE(sock.ok());
    std::string frame;
    PutFixed32(&frame, static_cast<uint32_t>(kMaxFrameBytes + 1));
    PutFixed32(&frame, 0);
    ASSERT_TRUE(sock->WriteFully(frame.data(), frame.size()).ok());
    char byte;
    EXPECT_FALSE(sock->ReadFully(&byte, 1).ok());
  }

  RegionClient client = MakeClient(server.port());
  StatsResponse stats;
  ASSERT_TRUE(client.GetStats(&stats).ok());
  EXPECT_GE(stats.corrupt_frames_total, 2u);
  ASSERT_TRUE(client.Put("still", "serving").ok());
}

TEST(RegionServerTest, MalformedBodyBehindValidCrcKeepsConnection) {
  TempDir dir("net_malformed");
  ServerProcess server({.dir = dir.path(), .sync_wal = false});
  ASSERT_TRUE(server.Start());
  RegionClient client = MakeClient(server.port());
  ASSERT_TRUE(client.EnsureConnected().ok());

  // A structurally bad payload with a correct CRC: unknown message type 99.
  // The stream stays synced, so the server answers kInvalidArgument on the
  // same connection instead of dropping it.
  std::string payload;
  payload.push_back(static_cast<char>(99));
  PutFixed64(&payload, 42);
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, kv::Crc32(payload));
  frame += payload;
  ASSERT_TRUE(client.RawSend(frame).ok());

  std::string resp_payload;
  ASSERT_TRUE(client.RawRecvPayload(&resp_payload).ok());
  FrameHeader header;
  std::string_view body;
  ASSERT_TRUE(ParsePayload(resp_payload, &header, &body).ok());
  EXPECT_EQ(header.type, MsgType::kStatusResp);
  EXPECT_EQ(header.request_id, 42u);
  StatusResponse resp;
  ASSERT_TRUE(DecodeStatusResponse(body, &resp).ok());
  EXPECT_TRUE(resp.status.IsInvalidArgument()) << resp.status.ToString();

  // Same connection still serves real requests.
  ASSERT_TRUE(client.Ping().ok());
}

TEST(RegionServerTest, ClusterScanSurvivesConnectionCutWithoutDupOrDrop) {
  TempDir dir("net_cut");
  ServerProcess server({.dir = dir.path(), .sync_wal = false});
  ASSERT_TRUE(server.Start());
  FaultProxy proxy(server.port());

  // Load rows directly (not through the proxy).
  constexpr int kRows = 400;
  {
    RegionClient direct = MakeClient(server.port());
    std::vector<kv::WriteOp> ops;
    for (int i = 0; i < kRows; ++i) {
      ops.push_back(
          kv::WriteOp{PaddedKey(i), std::string(100, 'x'), false});
    }
    ASSERT_TRUE(direct.WriteBatch(ops).ok());
  }

  cluster::ClusterOptions opts;
  opts.server_addrs = {"127.0.0.1:" + std::to_string(proxy.port())};
  opts.scan_batch_rows = 50;  // many wire pages -> the cut lands mid-scan
  opts.max_retries = 6;
  opts.retry_backoff_ms = 1;
  auto cluster = cluster::RegionCluster::Open(opts);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  obs::Counter* retries =
      obs::Registry::Global().GetCounter("just_cluster_retries_total");
  const uint64_t retries_before = retries->Value();

  // Tear the connection a few pages into the scan: the client sees a torn
  // frame (kUnavailable), the cluster retries the *batch* from its cursor,
  // and the row stream downstream must not notice.
  proxy.CutAfterUpstreamBytes(8 * 1024);
  std::vector<std::string> keys;
  Status st = (*cluster)->Scan(
      "", "", [&](std::string_view k, std::string_view) {
        keys.push_back(std::string(k));
        return true;
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(keys.size(), static_cast<size_t>(kRows));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::set<std::string>(keys.begin(), keys.end()).size(),
            keys.size())
      << "retried scan duplicated rows";
  EXPECT_GT(retries->Value(), retries_before)
      << "the cut should have forced at least one retry";
}

TEST(RegionServerTest, ClusterWriteBatchRetriesThroughConnectionCut) {
  TempDir dir("net_cut_write");
  ServerProcess server({.dir = dir.path(), .sync_wal = false});
  ASSERT_TRUE(server.Start());
  FaultProxy proxy(server.port());

  cluster::ClusterOptions opts;
  opts.server_addrs = {"127.0.0.1:" + std::to_string(proxy.port())};
  opts.max_retries = 6;
  opts.retry_backoff_ms = 1;
  auto cluster = cluster::RegionCluster::Open(opts);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  // Cut while the batch's response (or the batch itself) is in flight; the
  // retried batch re-applies the same puts, which is idempotent.
  proxy.CutAfterUpstreamBytes(1);
  std::vector<kv::WriteOp> ops;
  for (int i = 0; i < 100; ++i) {
    ops.push_back(kv::WriteOp{PaddedKey(i), "v", false});
  }
  ASSERT_TRUE((*cluster)->WriteBatch(std::move(ops)).ok());

  std::string v;
  ASSERT_TRUE((*cluster)->Get(PaddedKey(0), &v).ok());
  ASSERT_TRUE((*cluster)->Get(PaddedKey(99), &v).ok());
}

TEST(RegionServerTest, StalledConnectionHitsBoundedTimeout) {
  TempDir dir("net_stall");
  ServerProcess server({.dir = dir.path(), .sync_wal = false});
  ASSERT_TRUE(server.Start());
  FaultProxy proxy(server.port());

  RegionClient client = MakeClient(proxy.port(), 512,
                                   /*io_timeout_ms=*/300);
  ASSERT_TRUE(client.Put("k", "v").ok());  // warm connection through proxy

  proxy.SetStalled(true);
  const auto start = std::chrono::steady_clock::now();
  std::string v;
  Status st = client.Get("k", &v);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_TRUE(st.IsTransient());
  EXPECT_LT(elapsed.count(), 5000) << "timeout must be bounded by the option";

  // Unstall: the lazy reconnect makes the next call succeed.
  proxy.SetStalled(false);
  ASSERT_TRUE(client.Get("k", &v).ok());
  EXPECT_EQ(v, "v");
}

}  // namespace
}  // namespace just::net
