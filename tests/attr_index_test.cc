// Tests for the secondary attribute index (Figure 1's "Attribute Indexing"
// box): key-space maintenance, equality lookups, SQL integration, and its
// interaction with the spatio-temporal indexes.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/engine.h"
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/justql.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace just::core {
namespace {

using just::testing::TempDir;

class AttrIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("attr");
    EngineOptions options;
    options.data_dir = dir_->path();
    options.num_servers = 2;
    options.num_shards = 4;
    auto engine = JustEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).value();

    meta::TableMeta table;
    table.user = "u";
    table.name = "orders";
    table.columns = {
        {"fid", exec::DataType::kString, true, "", ""},
        {"city", exec::DataType::kString, false, "", ""},
        {"amount", exec::DataType::kInt, false, "", ""},
        {"time", exec::DataType::kTimestamp, false, "", ""},
        {"geom", exec::DataType::kGeometry, false, "", ""},
    };
    table.attr_indexes = {"city", "amount"};
    ASSERT_TRUE(engine_->CreateTable(table).ok());

    TimestampMs base = ParseTimestamp("2018-10-01").value();
    Rng rng(5);
    const char* cities[] = {"beijing", "shanghai", "chengdu"};
    for (int i = 0; i < 300; ++i) {
      exec::Row row = {
          exec::Value::String("o" + std::to_string(i)),
          exec::Value::String(cities[i % 3]),
          exec::Value::Int(i % 10),
          exec::Value::Timestamp(base + i * kMillisPerMinute),
          exec::Value::GeometryVal(geo::Geometry::MakePoint(
              {116.0 + rng.NextDouble() * 0.5, 39.5 + rng.NextDouble() * 0.5})),
      };
      ASSERT_TRUE(engine_->Insert("u", "orders", row).ok());
    }
    ASSERT_TRUE(engine_->Finalize().ok());
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<JustEngine> engine_;
};

TEST_F(AttrIndexTest, StringEqualityLookup) {
  QueryStats stats;
  auto result = engine_->AttributeQuery(
      "u", "orders", "city", exec::Value::String("shanghai"), &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 100u);
  for (const auto& row : result->rows()) {
    EXPECT_EQ(row[1].string_value(), "shanghai");
  }
  // The index reads only matching rows, not the whole table.
  EXPECT_EQ(stats.rows_scanned, 100u);
}

TEST_F(AttrIndexTest, IntEqualityLookup) {
  auto result = engine_->AttributeQuery("u", "orders", "amount",
                                        exec::Value::Int(7));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 30u);
}

TEST_F(AttrIndexTest, MissingValueReturnsEmpty) {
  auto result = engine_->AttributeQuery("u", "orders", "city",
                                        exec::Value::String("atlantis"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST_F(AttrIndexTest, UnindexedColumnRejected) {
  auto result = engine_->AttributeQuery("u", "orders", "fid",
                                        exec::Value::String("o1"));
  EXPECT_FALSE(result.ok());
}

TEST_F(AttrIndexTest, SqlEqualityUsesIndexNotFullScan) {
  sql::Analyzer analyzer(engine_.get(), "u");
  auto stmt = sql::ParseStatement(
      "SELECT fid, city FROM orders WHERE city = 'beijing'");
  ASSERT_TRUE(stmt.ok());
  auto plan = analyzer.Analyze(*stmt->select);
  ASSERT_TRUE(plan.ok());
  auto optimized = sql::Optimize(std::move(*plan));
  ASSERT_TRUE(optimized.ok());
  sql::Executor executor(engine_.get(), "u");
  core::QueryStats stats;
  auto frame = executor.Execute(**optimized, &stats);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->num_rows(), 100u);
  // rows_scanned == matches proves the index path was taken (a full scan
  // leaves the stats at zero scanned since it bypasses RunRanges, so also
  // check it is non-zero).
  EXPECT_EQ(stats.rows_scanned, 100u);
}

TEST_F(AttrIndexTest, SqlCombinesAttrWithResidualPredicates) {
  sql::JustQL ql(engine_.get());
  auto result = ql.Execute(
      "u", "SELECT fid FROM orders WHERE city = 'chengdu' AND amount > 7");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // city == chengdu: i % 3 == 2; amount > 7: i % 10 in {8, 9}.
  std::set<int> expected;
  for (int i = 0; i < 300; ++i) {
    if (i % 3 == 2 && i % 10 > 7) expected.insert(i);
  }
  EXPECT_EQ(result->frame.num_rows(), expected.size());
}

TEST_F(AttrIndexTest, SpatialPredicateStillPreferredOverAttr) {
  // Both a WITHIN and an attr equality: the spatial index answers, the attr
  // conjunct refines.
  sql::JustQL ql(engine_.get());
  auto result = ql.Execute(
      "u",
      "SELECT fid, city, geom FROM orders WHERE geom WITHIN "
      "st_makeMBR(116.0, 39.5, 116.25, 40.0) AND city = 'beijing'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  geo::Mbr box = geo::Mbr::Of(116.0, 39.5, 116.25, 40.0);
  for (const auto& row : result->frame.rows()) {
    EXPECT_EQ(row[1].string_value(), "beijing");
    EXPECT_TRUE(row[2].geometry_value().Within(box));
  }
}

TEST_F(AttrIndexTest, UpdatedRowVisibleUnderNewAttrValue) {
  // Upsert o5 with a new city: the attr index must serve the new value.
  TimestampMs base = ParseTimestamp("2018-10-01").value();
  // Note: o5's original row. Re-insert with the same fid/time/geom cell key
  // but different city.
  auto original = engine_->AttributeQuery("u", "orders", "city",
                                          exec::Value::String("moved"));
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(original->num_rows(), 0u);
  exec::Row updated = {
      exec::Value::String("o5"), exec::Value::String("moved"),
      exec::Value::Int(5), exec::Value::Timestamp(base + 5 * kMillisPerMinute),
      exec::Value::GeometryVal(geo::Geometry::MakePoint({116.2, 39.7}))};
  ASSERT_TRUE(engine_->Insert("u", "orders", updated).ok());
  auto moved = engine_->AttributeQuery("u", "orders", "city",
                                       exec::Value::String("moved"));
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->num_rows(), 1u);
  EXPECT_EQ(moved->rows()[0][0].string_value(), "o5");
}

TEST_F(AttrIndexTest, CreatedViaUserdataSql) {
  sql::JustQL ql(engine_.get());
  auto created = ql.Execute(
      "u",
      "CREATE TABLE tagged (fid string:primary key, tag string, time date, "
      "geom point) USERDATA {'just.attr.indexes':'tag'}");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto meta = engine_->DescribeTable("u", "tagged");
  ASSERT_TRUE(meta.ok());
  ASSERT_EQ(meta->attr_indexes.size(), 1u);
  EXPECT_EQ(meta->attr_indexes[0], "tag");
  ASSERT_TRUE(ql.Execute("u",
                         "INSERT INTO tagged VALUES "
                         "('a', 'hot', '2018-10-01 00:00:00', "
                         "st_makePoint(116.4, 39.9)), "
                         "('b', 'cold', '2018-10-01 00:00:00', "
                         "st_makePoint(116.5, 39.8))")
                  .ok());
  auto hot = ql.Execute("u", "SELECT fid FROM tagged WHERE tag = 'hot'");
  ASSERT_TRUE(hot.ok());
  ASSERT_EQ(hot->frame.num_rows(), 1u);
  EXPECT_EQ(hot->frame.rows()[0][0].string_value(), "a");
}

TEST_F(AttrIndexTest, AttrIndexSurvivesCatalogReload) {
  // attr_indexes persists through the catalog journal.
  auto meta = engine_->catalog()->GetTable("u", "orders");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->attr_indexes.size(), 2u);
}

}  // namespace
}  // namespace just::core
