#ifndef JUST_TESTS_TEST_UTIL_H_
#define JUST_TESTS_TEST_UTIL_H_

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/column_batch.h"
#include "exec/dataframe.h"
#include "exec/value.h"

namespace just::testing {

/// Creates a unique scratch directory under /tmp, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<uint64_t> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("just_test_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path_);
  }

  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// Fluent schema+rows builder shared by the exec, sql, and parity tests.
/// Renders the same data as a row-oriented DataFrame or as column batches,
/// which is exactly what differential tests of the two execution paths need.
class FrameBuilder {
 public:
  FrameBuilder& Col(std::string name, exec::DataType type) {
    schema_->AddField({std::move(name), type});
    return *this;
  }

  FrameBuilder& Row(exec::Row values) {
    rows_.push_back(std::move(values));
    return *this;
  }

  const std::shared_ptr<exec::Schema>& schema() const { return schema_; }

  exec::DataFrame Frame() const {
    exec::DataFrame df(schema_);
    for (const auto& row : rows_) df.AddRow(row);
    return df;
  }

  /// The same rows chunked into ColumnBatches (kBatchRows per batch).
  exec::BatchVector Batches() const {
    return exec::BatchesFromDataFrame(Frame());
  }

 private:
  std::shared_ptr<exec::Schema> schema_ = std::make_shared<exec::Schema>();
  std::vector<exec::Row> rows_;
};

}  // namespace just::testing

#endif  // JUST_TESTS_TEST_UTIL_H_
