#ifndef JUST_TESTS_TEST_UTIL_H_
#define JUST_TESTS_TEST_UTIL_H_

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace just::testing {

/// Creates a unique scratch directory under /tmp, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<uint64_t> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("just_test_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path_);
  }

  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace just::testing

#endif  // JUST_TESTS_TEST_UTIL_H_
