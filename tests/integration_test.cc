// End-to-end integration tests: whole-stack scenarios across the SQL layer,
// engine, cluster, LSM store, and catalog — including restart/recovery,
// which no single-module test exercises.

#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "kvstore/sstable.h"
#include "sql/justql.h"
#include "test_util.h"
#include "workload/generators.h"

namespace just {
namespace {

using just::testing::TempDir;

core::EngineOptions Options(const std::string& dir) {
  core::EngineOptions options;
  options.data_dir = dir;
  options.num_servers = 2;
  options.num_shards = 4;
  options.store.memtable_bytes = 64 << 10;  // small: force flush/compaction
  options.store.compaction_trigger = 3;
  return options;
}

TEST(IntegrationTest, EngineSurvivesRestartWithDataIntact) {
  TempDir dir("restart");
  TimestampMs base = ParseTimestamp("2018-10-05").value();
  {
    auto engine = core::JustEngine::Open(Options(dir.path()));
    ASSERT_TRUE(engine.ok());
    sql::JustQL ql(engine->get());
    ASSERT_TRUE(ql.Execute("alice",
                           "CREATE TABLE pts (fid string:primary key, "
                           "time date, geom point)")
                    .ok());
    for (int i = 0; i < 500; ++i) {
      exec::Row row = {
          exec::Value::String("p" + std::to_string(i)),
          exec::Value::Timestamp(base + i * kMillisPerMinute),
          exec::Value::GeometryVal(geo::Geometry::MakePoint(
              {116.3 + (i % 50) * 0.001, 39.8 + (i / 50) * 0.001}))};
      ASSERT_TRUE((*engine)->Insert("alice", "pts", row).ok());
    }
    // Deliberately NO Finalize: part of the data lives only in WALs.
  }
  // Reopen: catalog reloads from its journal, stores replay their WALs.
  auto engine = core::JustEngine::Open(Options(dir.path()));
  ASSERT_TRUE(engine.ok());
  sql::JustQL ql(engine->get());
  auto tables = ql.Execute("alice", "SHOW TABLES");
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->frame.num_rows(), 1u);
  auto count = ql.Execute("alice", "SELECT count(*) AS n FROM pts");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->frame.rows()[0][0].int_value(), 500);
  // An indexed query still works after recovery.
  auto range = ql.Execute(
      "alice",
      "SELECT fid FROM pts WHERE geom WITHIN "
      "st_makeMBR(116.3, 39.8, 116.31, 39.81)");
  ASSERT_TRUE(range.ok());
  EXPECT_GT(range->frame.num_rows(), 0u);
}

TEST(IntegrationTest, HistoricalUpdateVisibleAfterCompaction) {
  TempDir dir("hist_update");
  auto engine = core::JustEngine::Open(Options(dir.path()));
  ASSERT_TRUE(engine.ok());
  TimestampMs base = ParseTimestamp("2014-03-10").value();
  meta::TableMeta table;
  table.user = "u";
  table.name = "pts";
  table.columns = {
      {"fid", exec::DataType::kString, true, "", ""},
      {"time", exec::DataType::kTimestamp, false, "", ""},
      {"geom", exec::DataType::kGeometry, false, "", ""},
  };
  ASSERT_TRUE((*engine)->CreateTable(table).ok());
  auto row_at = [&](const std::string& fid, double lng) {
    return exec::Row{
        exec::Value::String(fid), exec::Value::Timestamp(base),
        exec::Value::GeometryVal(geo::Geometry::MakePoint({lng, 39.9}))};
  };
  ASSERT_TRUE((*engine)->Insert("u", "pts", row_at("x", 116.40)).ok());
  ASSERT_TRUE((*engine)->Finalize().ok());
  // Historical update: same fid, same location/time — the value in place is
  // overwritten (upsert semantics; no index rebuild).
  ASSERT_TRUE((*engine)->Insert("u", "pts", row_at("x", 116.40)).ok());
  ASSERT_TRUE((*engine)->Finalize().ok());
  auto result = (*engine)->SpatialRangeQuery(
      "u", "pts", geo::Mbr::Of(116.3, 39.8, 116.5, 40.0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1u);  // one logical record, not two
}

TEST(IntegrationTest, ConcurrentUsersThroughSql) {
  TempDir dir("multiuser");
  auto engine = core::JustEngine::Open(Options(dir.path()));
  ASSERT_TRUE(engine.ok());
  sql::JustQL ql(engine->get());
  // Two users, same table names, independent data (Section VII-A).
  for (const char* user : {"alice", "bob"}) {
    ASSERT_TRUE(ql.Execute(user,
                           "CREATE TABLE t (fid string:primary key, "
                           "time date, geom point)")
                    .ok());
  }
  ASSERT_TRUE(ql.Execute("alice",
                         "INSERT INTO t VALUES ('a1', '2018-10-01 00:00:00', "
                         "st_makePoint(116.4, 39.9))")
                  .ok());
  ASSERT_TRUE(ql.Execute("bob",
                         "INSERT INTO t VALUES ('b1', '2018-10-01 00:00:00', "
                         "st_makePoint(116.4, 39.9)), "
                         "('b2', '2018-10-01 00:00:00', "
                         "st_makePoint(116.5, 39.8))")
                  .ok());
  auto alice = ql.Execute("alice", "SELECT count(*) AS n FROM t");
  auto bob = ql.Execute("bob", "SELECT count(*) AS n FROM t");
  EXPECT_EQ(alice->frame.rows()[0][0].int_value(), 1);
  EXPECT_EQ(bob->frame.rows()[0][0].int_value(), 2);
  // Views are per-user too.
  ASSERT_TRUE(ql.Execute("alice", "CREATE VIEW v AS SELECT * FROM t").ok());
  EXPECT_TRUE(ql.Execute("bob", "SELECT * FROM v").status().IsNotFound());
}

TEST(IntegrationTest, DropTableReclaimsKeySpace) {
  TempDir dir("drop_reclaim");
  auto engine = core::JustEngine::Open(Options(dir.path()));
  ASSERT_TRUE(engine.ok());
  sql::JustQL ql(engine->get());
  ASSERT_TRUE(ql.Execute("u",
                         "CREATE TABLE t (fid string:primary key, time date, "
                         "geom point)")
                  .ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        ql.Execute("u", "INSERT INTO t VALUES ('f" + std::to_string(i) +
                            "', '2018-10-01 00:00:00', "
                            "st_makePoint(116.4, 39.9))")
            .ok());
  }
  ASSERT_TRUE(ql.Execute("u", "DROP TABLE t").ok());
  // Recreate with the same name: must start empty (old keys are gone, and
  // the new table gets a fresh table id anyway).
  ASSERT_TRUE(ql.Execute("u",
                         "CREATE TABLE t (fid string:primary key, time date, "
                         "geom point)")
                  .ok());
  auto count = ql.Execute("u", "SELECT count(*) AS n FROM t");
  EXPECT_EQ(count->frame.rows()[0][0].int_value(), 0);
}

TEST(IntegrationTest, EndToEndTrajectoryPipeline) {
  TempDir dir("traj_pipeline");
  auto engine = core::JustEngine::Open(Options(dir.path()));
  ASSERT_TRUE(engine.ok());
  sql::JustQL ql(engine->get());
  ASSERT_TRUE(ql.Execute("lab", "CREATE TABLE gps AS trajectory").ok());

  workload::TrajOptions gen;
  gen.num_trajectories = 30;
  gen.points_per_traj = 120;
  gen.num_days = 3;
  auto logs = workload::GenerateTrajectories(gen);
  for (const auto& t : logs) {
    exec::Row row = {exec::Value::String(t.oid()),
                     exec::Value::String("c_" + t.oid()),
                     exec::Value::Timestamp(t.start_time()),
                     exec::Value::Timestamp(t.end_time()),
                     exec::Value::TrajectoryVal(
                         std::make_shared<const traj::Trajectory>(t))};
    ASSERT_TRUE((*engine)->Insert("lab", "gps", row).ok());
  }
  ASSERT_TRUE((*engine)->Finalize().ok());

  // ST query -> view -> 1-N analysis -> aggregate, all in JustQL.
  TimestampMs base = ParseTimestamp(gen.start_date).value();
  char view_sql[512];
  std::snprintf(view_sql, sizeof(view_sql),
                "CREATE VIEW day1 AS SELECT tid, start_time, item FROM gps "
                "WHERE item WITHIN st_makeMBR(116.0, 39.6, 116.8, 40.2) AND "
                "start_time BETWEEN '%s' AND '%s'",
                FormatTimestamp(base).c_str(),
                FormatTimestamp(base + kMillisPerDay).c_str());
  auto view = ql.Execute("lab", view_sql);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto segments = ql.Execute("lab",
                             "SELECT st_trajSegmentation(item) FROM day1");
  ASSERT_TRUE(segments.ok()) << segments.status().ToString();
  auto lengths = ql.Execute(
      "lab", "SELECT st_trajLengthMeters(item) AS len FROM day1");
  ASSERT_TRUE(lengths.ok());
  for (const auto& row : lengths->frame.rows()) {
    EXPECT_GT(row[0].double_value(), 0);
  }
  auto stats = ql.Execute(
      "lab",
      "SELECT count(*) AS n, avg(len) AS avg_len FROM "
      "(SELECT st_trajLengthMeters(item) AS len FROM day1) t");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->frame.rows()[0][0].int_value(),
            static_cast<int64_t>(lengths->frame.num_rows()));
}

TEST(IntegrationTest, CompressionReducesIoOnScans) {
  TempDir dir("io_comp");
  core::EngineOptions options = Options(dir.path());
  options.store.block_cache_bytes = 4 << 10;  // effectively uncached
  auto engine = core::JustEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreatePluginTable("u", "gps", "trajectory").ok());

  workload::TrajOptions gen;
  gen.num_trajectories = 40;
  gen.points_per_traj = 400;
  auto logs = workload::GenerateTrajectories(gen);
  for (const auto& t : logs) {
    exec::Row row = {exec::Value::String(t.oid()),
                     exec::Value::String("c"),
                     exec::Value::Timestamp(t.start_time()),
                     exec::Value::Timestamp(t.end_time()),
                     exec::Value::TrajectoryVal(
                         std::make_shared<const traj::Trajectory>(t))};
    ASSERT_TRUE((*engine)->Insert("u", "gps", row).ok());
  }
  ASSERT_TRUE((*engine)->Finalize().ok());
  uint64_t before = kv::GlobalIoStats().bytes_read;
  auto frame = (*engine)->FullScan("u", "gps");
  ASSERT_TRUE(frame.ok());
  uint64_t compressed_read = kv::GlobalIoStats().bytes_read - before;
  // Logical GPS bytes: 400 pts x 24 B x 40 trajectories = 384 KB; the scan
  // must have read much less thanks to the delta+LZ77 cells.
  EXPECT_LT(compressed_read, 40u * 400u * 24u / 2);
  EXPECT_EQ(frame->num_rows(), 40u);
}

TEST(IntegrationTest, SpilledResultSetRoundTripsWholeTable) {
  TempDir dir("rs_table");
  auto engine = core::JustEngine::Open(Options(dir.path()));
  ASSERT_TRUE(engine.ok());
  meta::TableMeta table;
  table.user = "u";
  table.name = "pts";
  table.columns = {
      {"fid", exec::DataType::kString, true, "", ""},
      {"time", exec::DataType::kTimestamp, false, "", ""},
      {"geom", exec::DataType::kGeometry, false, "", ""},
  };
  ASSERT_TRUE((*engine)->CreateTable(table).ok());
  const int kRows = 3000;
  TimestampMs base = ParseTimestamp("2018-10-01").value();
  for (int i = 0; i < kRows; ++i) {
    ASSERT_TRUE((*engine)
                    ->Insert("u", "pts",
                             {exec::Value::String("p" + std::to_string(i)),
                              exec::Value::Timestamp(base + i),
                              exec::Value::GeometryVal(
                                  geo::Geometry::MakePoint(
                                      {116.0 + i * 1e-5, 39.0}))})
                    .ok());
  }
  auto frame = (*engine)->FullScan("u", "pts");
  ASSERT_TRUE(frame.ok());
  core::ResultSet::Options rs_options;
  rs_options.direct_row_limit = 100;
  rs_options.rows_per_chunk = 256;
  rs_options.spill_dir = dir.path() + "/spill";
  auto rs = core::ResultSet::Make(std::move(*frame), rs_options);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE((*rs)->spilled());
  int n = 0;
  while ((*rs)->HasNext()) {
    auto row = (*rs)->Next();
    ASSERT_TRUE(row.ok());
    ASSERT_EQ(row->size(), 3u);
    ++n;
  }
  EXPECT_EQ(n, kRows);
}

}  // namespace
}  // namespace just
