// Tests for the HTTP admin plane (src/obs/http_admin): routing semantics
// via the sockets-free Route() seam, and one real socket round-trip per
// endpoint — raw HTTP/1.0 GETs parsed byte-for-byte, since the contract is
// "scrapable with curl", not "works with our own client".

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <string>

#include "net/socket.h"
#include "obs/http_admin.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"

namespace just::obs {
namespace {

TEST(HttpAdminRouteTest, HealthzMetricsStatsz) {
  HttpAdminServer admin({});
  std::string body, ctype;

  EXPECT_EQ(admin.Route("GET", "/healthz", &body, &ctype), 200);
  EXPECT_EQ(body, "ok\n");
  EXPECT_EQ(ctype, "text/plain");

  Registry::Global().GetCounter("test_admin_route_total")->Add(9);
  EXPECT_EQ(admin.Route("GET", "/metrics", &body, &ctype), 200);
  EXPECT_NE(body.find("test_admin_route_total 9"), std::string::npos);
  EXPECT_NE(ctype.find("text/plain"), std::string::npos);

  EXPECT_EQ(admin.Route("GET", "/statsz", &body, &ctype), 200);
  EXPECT_EQ(ctype, "application/json");
  EXPECT_NE(body.find("\"counters\""), std::string::npos);

  EXPECT_EQ(admin.Route("GET", "/nope", &body, &ctype), 404);
  EXPECT_EQ(admin.Route("POST", "/healthz", &body, &ctype), 405);
  EXPECT_EQ(admin.Route("HEAD", "/metrics", &body, &ctype), 405);
}

TEST(HttpAdminRouteTest, TracezEmptyWithoutLogAndShowsEntriesWithOne) {
  {
    HttpAdminServer admin({});
    std::string body, ctype;
    EXPECT_EQ(admin.Route("GET", "/tracez", &body, &ctype), 200);
    EXPECT_EQ(ctype, "application/json");
    EXPECT_EQ(body, "[]\n");
  }
  SlowQueryLog log(/*threshold_us=*/0, /*capacity=*/8,
                   /*log_to_stderr=*/false);
  SlowQueryEntry entry{"alice", "rpc:scan", /*wall_us=*/1234, /*rows=*/5,
                       /*rows_scanned=*/50, /*key_ranges=*/2};
  entry.trace_json = "{\"name\":\"rpc.scan\"}";
  log.MaybeRecord(entry);
  HttpAdminServer::Options options;
  options.slow_log = &log;
  HttpAdminServer admin(options);
  std::string body, ctype;
  EXPECT_EQ(admin.Route("GET", "/tracez", &body, &ctype), 200);
  EXPECT_NE(body.find("\"sql\":\"rpc:scan\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"wall_us\":1234"), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"rpc.scan\""), std::string::npos);
}

/// One raw HTTP/1.0 GET against a live server; returns the full response.
std::string RawGet(int port, const std::string& request) {
  auto sock = net::Connect("127.0.0.1", port);
  if (!sock.ok()) return "";
  (void)sock->SetRecvTimeout(5000);
  if (!sock->WriteFully(request.data(), request.size()).ok()) return "";
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(sock->fd(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

TEST(HttpAdminServerTest, ServesRealSockets) {
  HttpAdminServer admin({});
  ASSERT_TRUE(admin.Start().ok());
  ASSERT_GT(admin.port(), 0);

  Registry::Global().GetCounter("test_admin_sock_total")->Add(4);
  std::string resp =
      RawGet(admin.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Content-Length:"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);
  EXPECT_NE(resp.find("test_admin_sock_total"), std::string::npos);

  resp = RawGet(admin.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("ok\n"), std::string::npos);

  // Query strings are routing no-ops, not 404s.
  resp = RawGet(admin.port(), "GET /healthz?verbose=1 HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;

  resp = RawGet(admin.port(), "GET /missing HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 404"), std::string::npos) << resp;

  resp = RawGet(admin.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 405"), std::string::npos) << resp;

  // Garbage that is not an HTTP request line gets a 400, not a hang.
  resp = RawGet(admin.port(), "\x01\x02garbage\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 400"), std::string::npos) << resp;

  // The server keeps serving after bad requests.
  resp = RawGet(admin.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;

  admin.Stop();
  admin.Stop();  // idempotent
}

}  // namespace
}  // namespace just::obs
