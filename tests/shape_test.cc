// "Shape" tests: deterministic, engine-free pins of the paper's headline
// comparative claims, expressed as index-selectivity invariants over an
// in-memory ordered map standing in for the KV store. If a refactor breaks
// the reason Z2T/XZ2T win, these fail even when functional tests still pass.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "curve/index_strategy.h"
#include "workload/generators.h"

namespace just::curve {
namespace {

struct SelectivityResult {
  size_t scanned = 0;   // candidate records in the key ranges
  size_t matched = 0;   // records truly satisfying the query
  size_t ranges = 0;
};

// Loads records through `strategy` into an ordered map and measures how many
// candidates a spatio-temporal box query scans.
SelectivityResult MeasureSelectivity(
    IndexType type, int64_t period_ms,
    const std::vector<workload::OrderRecord>& records, const geo::Mbr& box,
    TimestampMs t0, TimestampMs t1) {
  IndexOptions options;
  options.num_shards = 2;
  options.period_len_ms = period_ms;
  auto strategy = IndexStrategy::Create(type, options);
  std::map<std::string, const workload::OrderRecord*> store;
  for (const auto& r : records) {
    RecordRef ref;
    ref.mbr = geo::Mbr::Of(r.point.lng, r.point.lat, r.point.lng, r.point.lat);
    ref.t_min = ref.t_max = r.time;
    ref.fid = r.fid;
    store[strategy->EncodeKey(ref)] = &r;
  }
  SelectivityResult result;
  auto ranges = strategy->QueryRanges(box, t0, t1);
  result.ranges = ranges.size();
  for (const auto& range : ranges) {
    for (auto it = store.lower_bound(range.start);
         it != store.end() && it->first < range.end; ++it) {
      ++result.scanned;
      const auto* r = it->second;
      if (box.Contains(r->point) && r->time >= t0 && r->time <= t1) {
        ++result.matched;
      }
    }
  }
  return result;
}

class StShapeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::OrderOptions opts;
    opts.num_orders = 60000;
    records_ = workload::GenerateOrders(opts);
    base_ = ParseTimestamp(opts.start_date).value();
    // The paper's canonical query: 01:00-13:00 of one day, centered on a
    // known-dense spot (a record's own location).
    box_ = geo::SquareWindowKm(records_[100].point, 6.0);
    int64_t day = TimePeriodNumber(records_[100].time, kMillisPerDay);
    t0_ = TimePeriodStart(day, kMillisPerDay) + 1 * kMillisPerHour;
    t1_ = TimePeriodStart(day, kMillisPerDay) + 13 * kMillisPerHour;
  }

  std::vector<workload::OrderRecord> records_;
  TimestampMs base_ = 0;
  geo::Mbr box_;
  TimestampMs t0_ = 0, t1_ = 0;
};

// Section IV-B's headline: Z2T scans fewer candidates than Z3, whatever
// period Z3 uses — the "invalidation of spatial filtering" pathology.
TEST_F(StShapeTest, Z2TScansFewerCandidatesThanEveryZ3Period) {
  auto z2t = MeasureSelectivity(IndexType::kZ2T, kMillisPerDay, records_,
                                box_, t0_, t1_);
  ASSERT_GT(z2t.matched, 0u);  // the query is non-trivial
  // Same-period comparison (the paper's core motivation): strictly no
  // worse than Z3-day for a 12h window, typically much better.
  auto z3_day = MeasureSelectivity(IndexType::kZ3, kMillisPerDay, records_,
                                   box_, t0_, t1_);
  EXPECT_EQ(z3_day.matched, z2t.matched) << "different answers!";
  EXPECT_LE(z2t.scanned, z3_day.scanned);
  // Longer Z3 periods mitigate the pathology (Fig 12's observation 3);
  // Z2T stays at least comparable (within a small constant factor).
  for (int64_t period : {kMillisPerYear, kMillisPerCentury}) {
    auto z3 = MeasureSelectivity(IndexType::kZ3, period, records_, box_, t0_,
                                 t1_);
    EXPECT_EQ(z3.matched, z2t.matched) << "different answers!";
    EXPECT_LE(z2t.scanned, z3.scanned * 2 + 16)
        << "Z2T lost ground to Z3 with period " << period;
  }
}

// The paper's Fig 12 observation 3: among Z3 variants, a *longer* period
// scans fewer candidates than the one-day period for a 12-hour window
// (12h/24h dominates the interleaving; 12h/1y does not).
TEST_F(StShapeTest, LongerZ3PeriodsScanLessForSubDayWindows) {
  auto z3_day = MeasureSelectivity(IndexType::kZ3, kMillisPerDay, records_,
                                   box_, t0_, t1_);
  auto z3_year = MeasureSelectivity(IndexType::kZ3, kMillisPerYear, records_,
                                    box_, t0_, t1_);
  EXPECT_LE(z3_year.scanned, z3_day.scanned);
}

// Z2T's scan overhead is bounded: candidates are within a small factor of
// true matches (spatial filtering works inside each period).
TEST_F(StShapeTest, Z2TScanOverheadBounded) {
  auto z2t = MeasureSelectivity(IndexType::kZ2T, kMillisPerDay, records_,
                                box_, t0_, t1_);
  ASSERT_GT(z2t.matched, 0u);
  EXPECT_LE(z2t.scanned, z2t.matched * 12 + 32);
}

// The XZ2T analogue over trajectory MBRs (Section IV-C).
TEST(XzShapeTest, Xz2TScansFewerCandidatesThanXz3) {
  workload::TrajOptions opts;
  opts.num_trajectories = 600;
  opts.points_per_traj = 40;
  auto trajectories = workload::GenerateTrajectories(opts);
  // Center the query on a trajectory that exists; cover its start time.
  const auto& anchor = trajectories[42];
  geo::Mbr box = geo::SquareWindowKm(anchor.Bounds().Center(), 5.0);
  int64_t day = TimePeriodNumber(anchor.start_time(), kMillisPerDay);
  TimestampMs t0 = TimePeriodStart(day, kMillisPerDay);
  TimestampMs t1 = t0 + kMillisPerDay - 1;

  auto measure = [&](IndexType type, int64_t period) {
    IndexOptions options;
    options.num_shards = 2;
    options.period_len_ms = period;
    auto strategy = IndexStrategy::Create(type, options);
    std::map<std::string, const traj::Trajectory*> store;
    for (const auto& t : trajectories) {
      RecordRef ref;
      ref.mbr = t.Bounds();
      ref.t_min = t.start_time();
      ref.t_max = t.end_time();
      ref.fid = t.oid();
      store[strategy->EncodeKey(ref)] = &t;
    }
    SelectivityResult result;
    auto ranges = strategy->QueryRanges(box, t0, t1);
    result.ranges = ranges.size();
    for (const auto& range : ranges) {
      for (auto it = store.lower_bound(range.start);
           it != store.end() && it->first < range.end; ++it) {
        ++result.scanned;
        const auto* t = it->second;
        if (t->Bounds().Intersects(box) && t->start_time() >= t0 &&
            t->start_time() <= t1) {
          ++result.matched;
        }
      }
    }
    return result;
  };

  auto xz2t = measure(IndexType::kXz2T, kMillisPerDay);
  auto xz3_century = measure(IndexType::kXz3, kMillisPerCentury);
  ASSERT_GT(xz2t.matched, 0u);
  EXPECT_EQ(xz2t.matched, xz3_century.matched);
  EXPECT_LE(xz2t.scanned, xz3_century.scanned * 2)
      << "XZ2T lost its selectivity edge";
}

// Fig 14b's flat line, as an invariant: growing the dataset into NEW time
// periods leaves a fixed-window Z2T query's scan count unchanged.
TEST(ScalabilityShapeTest, Z2TScanCountUnaffectedByNewPeriods) {
  workload::OrderOptions opts;
  opts.num_orders = 8000;
  auto records = workload::GenerateOrders(opts);
  TimestampMs base = ParseTimestamp(opts.start_date).value();
  geo::Mbr box = geo::SquareWindowKm(records[7].point, 5.0);
  int64_t day = TimePeriodNumber(records[7].time, kMillisPerDay);
  TimestampMs t0 = TimePeriodStart(day, kMillisPerDay);
  TimestampMs t1 = t0 + kMillisPerDay - 1;

  auto small = MeasureSelectivity(IndexType::kZ2T, kMillisPerDay, records,
                                  box, t0, t1);
  ASSERT_GT(small.scanned, 0u);
  // Copy & sample into LATER periods (as the Synthetic dataset does).
  std::vector<workload::OrderRecord> grown = records;
  for (int copy = 1; copy <= 3; ++copy) {
    for (auto r : records) {
      r.fid += "_c" + std::to_string(copy);
      r.time += copy * 100 * kMillisPerDay;
      grown.push_back(std::move(r));
    }
  }
  auto big = MeasureSelectivity(IndexType::kZ2T, kMillisPerDay, grown, box,
                                t0, t1);
  EXPECT_EQ(big.matched, small.matched);
  EXPECT_EQ(big.scanned, small.scanned)  // the flat line of Fig 14b
      << "Z2T scan count changed when data grew into other periods";
}

}  // namespace
}  // namespace just::curve
