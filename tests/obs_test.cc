// Tests for the observability layer (src/obs): sharded counters under
// contention, histogram quantile accuracy, registry sources and their
// fold-on-unregister semantics, trace span trees, and the slow-query log.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "obs/trace_codec.h"

namespace just::obs {
namespace {

// --- Counter ---

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIters = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIters; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(CounterTest, RegistryPointersAreStable) {
  Counter* a = Registry::Global().GetCounter("test_obs_stable_total");
  Counter* b = Registry::Global().GetCounter("test_obs_stable_total");
  EXPECT_EQ(a, b);
  a->Add(7);
  EXPECT_EQ(Registry::Global().CounterValue("test_obs_stable_total"), 7u);
}

// --- Histogram ---

TEST(HistogramTest, ExactStatsAndSingleValueQuantiles) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(7);
  auto snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 700u);
  EXPECT_EQ(snap.min, 7u);
  EXPECT_EQ(snap.max, 7u);
  // All mass sits in bucket [4, 8); interpolation stays inside it.
  EXPECT_GE(snap.p50, 4.0);
  EXPECT_LE(snap.p50, 8.0);
  EXPECT_GE(snap.p99, 4.0);
  EXPECT_LE(snap.p99, 8.0);
}

TEST(HistogramTest, QuantilesWithinBucketErrorBounds) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  auto snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 500500u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 1000u);
  // Power-of-two buckets bound relative error by 2x: the true p50 of the
  // uniform 1..1000 distribution is 500, inside bucket [256, 512).
  EXPECT_GE(snap.p50, 250.0);
  EXPECT_LE(snap.p50, 1000.0);
  // True p95 = 950 and p99 = 990 both land in bucket [512, 1024).
  EXPECT_GE(snap.p95, 500.0);
  EXPECT_LE(snap.p95, 1024.0);
  EXPECT_GE(snap.p99, 500.0);
  EXPECT_LE(snap.p99, 1024.0);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kIters; ++i) {
        h.Record(static_cast<uint64_t>(i % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kIters);
}

// --- Registry sources ---

TEST(RegistryTest, CounterValueSumsOwnedCounterAndSources) {
  Registry registry;
  registry.GetCounter("x_total")->Add(5);
  uint64_t id1 = registry.RegisterSource(
      "x_total", Registry::SourceKind::kCumulative, [] { return 10u; });
  EXPECT_EQ(registry.CounterValue("x_total"), 15u);
  uint64_t id2 = registry.RegisterSource(
      "x_total", Registry::SourceKind::kCumulative, [] { return 7u; });
  EXPECT_EQ(registry.CounterValue("x_total"), 22u);
  // Unregistering a cumulative source folds its last value into a retained
  // base: the total never goes backwards.
  registry.Unregister(id1);
  EXPECT_EQ(registry.CounterValue("x_total"), 22u);
  registry.Unregister(id2);
  EXPECT_EQ(registry.CounterValue("x_total"), 22u);
  auto snap = registry.GetSnapshot();
  EXPECT_EQ(snap.counter("x_total"), 22u);
}

TEST(RegistryTest, LiveSourcesDropOutOnUnregister) {
  Registry registry;
  uint64_t id = registry.RegisterSource(
      "mem_bytes", Registry::SourceKind::kLive, [] { return 4096u; });
  EXPECT_EQ(registry.GetSnapshot().gauge("mem_bytes"), 4096);
  registry.Unregister(id);
  EXPECT_EQ(registry.GetSnapshot().gauge("mem_bytes"), 0);
}

TEST(RegistryTest, ScopedSourceFoldsOnDestruction) {
  const std::string name = "test_obs_fold_total";
  uint64_t before = Registry::Global().CounterValue(name);
  {
    ScopedSource source(name, Registry::SourceKind::kCumulative,
                        [] { return 42u; });
    EXPECT_EQ(Registry::Global().CounterValue(name), before + 42);
  }
  EXPECT_EQ(Registry::Global().CounterValue(name), before + 42);
}

TEST(RegistryTest, SnapshotAndExpositionContainMetrics) {
  auto& registry = Registry::Global();
  registry.GetCounter("test_obs_expo_total")->Add(3);
  registry.GetGauge("test_obs_expo_gauge")->Set(-4);
  registry.GetHistogram("test_obs_expo_us")->Record(100);

  auto snap = registry.GetSnapshot();
  EXPECT_GE(snap.counter("test_obs_expo_total"), 3u);
  EXPECT_EQ(snap.gauge("test_obs_expo_gauge"), -4);
  ASSERT_TRUE(snap.histograms.count("test_obs_expo_us"));
  EXPECT_GE(snap.histograms["test_obs_expo_us"].count, 1u);

  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE test_obs_expo_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_expo_gauge -4"), std::string::npos);
  EXPECT_NE(text.find("test_obs_expo_us_count"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);

  std::string json = registry.JsonDump();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test_obs_expo_total\""), std::string::npos);
}

TEST(RegistryTest, ConcurrentGetAndSnapshot) {
  Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 2000; ++i) {
        registry.GetCounter("c" + std::to_string(i % 8))->Increment();
        if (t == 0 && i % 100 == 0) registry.GetSnapshot();
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t total = 0;
  for (int i = 0; i < 8; ++i) {
    total += registry.CounterValue("c" + std::to_string(i));
  }
  EXPECT_EQ(total, 4u * 2000u);
}

// --- Labeled metrics & exposition edge cases ---

TEST(ExpositionTest, LabeledNameEscapesValues) {
  EXPECT_EQ(LabeledName("rpc_us", {{"type", "get"}}), "rpc_us{type=\"get\"}");
  EXPECT_EQ(LabeledName("m", {{"a", "1"}, {"b", "2"}}),
            "m{a=\"1\",b=\"2\"}");
  // Backslash, quote, and newline in label values per the exposition spec.
  EXPECT_EQ(LabeledName("m", {{"k", "a\\b"}}), "m{k=\"a\\\\b\"}");
  EXPECT_EQ(LabeledName("m", {{"k", "a\"b"}}), "m{k=\"a\\\"b\"}");
  EXPECT_EQ(LabeledName("m", {{"k", "a\nb"}}), "m{k=\"a\\nb\"}");
  EXPECT_EQ(LabeledName("m", {}), "m");
}

TEST(ExpositionTest, LabeledSeriesShareOneTypeFamily) {
  Registry registry;
  registry.GetCounter(LabeledName("test_rpc_total", {{"type", "get"}}))
      ->Add(3);
  registry.GetCounter(LabeledName("test_rpc_total", {{"type", "scan"}}))
      ->Add(5);
  registry.GetCounter("test_rpc_total")->Add(1);  // unlabeled sibling
  std::string text = registry.TextExposition();
  // Exactly one TYPE line for the family, covering all three series.
  size_t first = text.find("# TYPE test_rpc_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE test_rpc_total counter", first + 1),
            std::string::npos);
  EXPECT_NE(text.find("test_rpc_total{type=\"get\"} 3"), std::string::npos);
  EXPECT_NE(text.find("test_rpc_total{type=\"scan\"} 5"), std::string::npos);
  EXPECT_NE(text.find("test_rpc_total 1"), std::string::npos);
}

TEST(ExpositionTest, LabeledHistogramMergesLabelsWithSuffixes) {
  Registry registry;
  Histogram* h =
      registry.GetHistogram(LabeledName("test_lat_us", {{"type", "put"}}));
  h->Record(3);
  h->Record(100);
  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE test_lat_us histogram"), std::string::npos);
  // The le= bucket label merges with the series label inside one brace set.
  EXPECT_NE(text.find("test_lat_us_bucket{type=\"put\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_us_sum{type=\"put\"} 103"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_us_count{type=\"put\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_us{type=\"put\",quantile=\"0.99\"}"),
            std::string::npos);
}

TEST(ExpositionTest, EmptyHistogramExposesZeroSumAndCount) {
  Registry registry;
  registry.GetHistogram("test_empty_us");
  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE test_empty_us histogram"), std::string::npos);
  EXPECT_NE(text.find("test_empty_us_sum 0"), std::string::npos);
  EXPECT_NE(text.find("test_empty_us_count 0"), std::string::npos);
  EXPECT_NE(text.find("test_empty_us_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
}

TEST(ExpositionTest, SumAndCountMatchRecordedValues) {
  Registry registry;
  Histogram* h = registry.GetHistogram("test_sum_us");
  uint64_t want_sum = 0;
  for (uint64_t v = 1; v <= 200; ++v) {
    h->Record(v);
    want_sum += v;
  }
  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("test_sum_us_sum " + std::to_string(want_sum)),
            std::string::npos);
  EXPECT_NE(text.find("test_sum_us_count 200"), std::string::npos);
  // +Inf bucket must equal _count (cumulative buckets end at totality).
  EXPECT_NE(text.find("test_sum_us_bucket{le=\"+Inf\"} 200"),
            std::string::npos);
}

TEST(ExpositionTest, ConcurrentUpdatesDuringExposition) {
  // Snapshot/exposition while writers hammer the same metrics: must be
  // data-race free (the tsan job enforces this) and every exposition must
  // be well-formed enough to contain the family headers.
  Registry registry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    // Register in the main thread so every exposition below sees the
    // families; the workers race only on updates (and GetCounter lookups).
    registry.GetCounter(
        LabeledName("test_conc_total", {{"w", std::to_string(t)}}));
    registry.GetHistogram("test_conc_us");
    writers.emplace_back([&registry, &stop, t] {
      Counter* c = registry.GetCounter(
          LabeledName("test_conc_total", {{"w", std::to_string(t)}}));
      Histogram* h = registry.GetHistogram("test_conc_us");
      while (!stop.load(std::memory_order_relaxed)) {
        c->Increment();
        h->Record(17);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    std::string text = registry.TextExposition();
    EXPECT_NE(text.find("# TYPE test_conc_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE test_conc_us histogram"),
              std::string::npos);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

// --- Trace codec ---

TEST(TraceCodecTest, RoundTripsTreeWithCountersAndAttrs) {
  Trace trace("rpc.scan");
  {
    SpanScope scope(trace.root());
    trace.root()->AddAttr("queue_us", "12");
    TraceBytesRead(4096);
    TraceRowsScanned(50);
    TraceKeyRanges(2);
    {
      ScopedSpan child("sst_read");
      child.span()->AddAttr("level", "1");
      TraceCacheHit();
      TraceCacheMiss();
    }
  }
  trace.root()->End();

  std::string blob = EncodeSpanTree(*trace.root());
  Trace host("caller");
  Status st;
  TraceSpan* grafted = DecodeSpanTree(blob, host.root(), &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_NE(grafted, nullptr);
  EXPECT_EQ(grafted->name(), "rpc.scan");
  EXPECT_EQ(grafted->TotalBytesRead(), 4096u);
  EXPECT_EQ(grafted->TotalRowsScanned(), 50u);
  EXPECT_EQ(grafted->TotalKeyRanges(), 2u);
  EXPECT_EQ(grafted->TotalCacheHits(), 1u);
  ASSERT_EQ(grafted->children().size(), 1u);
  EXPECT_EQ(grafted->children()[0]->name(), "sst_read");
  // Attrs and wall time survive, so the rendered tree shows remote timing.
  std::string text = host.ToString();
  EXPECT_NE(text.find("rpc.scan"), std::string::npos);
  EXPECT_NE(text.find("queue_us=12"), std::string::npos);
  EXPECT_NE(text.find("sst_read level=1"), std::string::npos);
}

TEST(TraceCodecTest, MalformedBlobGraftsNothing) {
  Trace trace("rpc.get");
  trace.root()->End();
  std::string blob = EncodeSpanTree(*trace.root());
  // Every strict prefix must fail cleanly and leave the host untouched —
  // partial grafts would render half a remote tree without any marker.
  for (size_t len = 0; len < blob.size(); ++len) {
    Trace host("caller");
    Status st;
    TraceSpan* grafted =
        DecodeSpanTree(std::string_view(blob.data(), len), host.root(), &st);
    EXPECT_EQ(grafted, nullptr) << "len=" << len;
    EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
    EXPECT_TRUE(host.root()->children().empty()) << "len=" << len;
  }
  // Trailing garbage after a valid tree is also rejected outright.
  Trace host("caller");
  Status st;
  EXPECT_EQ(DecodeSpanTree(blob + "x", host.root(), &st), nullptr);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(TraceCodecTest, DepthLimitRejectsPathologicalNesting) {
  Trace trace("deep");
  TraceSpan* cur = trace.root();
  for (uint32_t i = 0; i < kTraceCodecMaxDepth + 8; ++i) {
    cur = cur->StartChild("d" + std::to_string(i));
  }
  trace.root()->End();
  std::string blob = EncodeSpanTree(*trace.root());
  Trace host("caller");
  Status st;
  EXPECT_EQ(DecodeSpanTree(blob, host.root(), &st), nullptr);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_TRUE(host.root()->children().empty());
}

TEST(TraceCodecTest, SpanCountLimitRejectsHugeTrees) {
  Trace trace("wide");
  for (uint32_t i = 0; i < kTraceCodecMaxSpans; ++i) {
    trace.root()->StartChild("c");
  }
  trace.root()->End();
  std::string blob = EncodeSpanTree(*trace.root());
  Trace host("caller");
  Status st;
  // root + kTraceCodecMaxSpans children exceeds the span budget.
  EXPECT_EQ(DecodeSpanTree(blob, host.root(), &st), nullptr);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

// --- Trace spans ---

TEST(TraceTest, HelpersAreNoopsWithoutActiveTrace) {
  EXPECT_EQ(CurrentSpan(), nullptr);
  ScopedSpan scoped("orphan");
  EXPECT_EQ(scoped.span(), nullptr);
  TraceBytesRead(10);  // must not crash
  TraceCacheHit();
  EXPECT_EQ(CurrentSpan(), nullptr);
}

TEST(TraceTest, SpanTreeCountersAndRendering) {
  Trace trace("Query");
  {
    SpanScope root_scope(trace.root());
    ScopedSpan scan("Scan orders");
    ASSERT_NE(scan.span(), nullptr);
    scan.span()->AddAttr("access", "st_range");
    TraceBytesRead(100);
    TraceCacheHit();
    TraceCacheMiss();
    TraceKeyRanges(4);
    TraceRowsScanned(20);
    TraceRowsMatched(12);
  }
  trace.root()->End();

  auto children = trace.root()->children();
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0]->name(), "Scan orders");
  EXPECT_EQ(trace.root()->TotalBytesRead(), 100u);
  EXPECT_EQ(trace.root()->TotalKeyRanges(), 4u);
  EXPECT_EQ(trace.root()->TotalCacheHits(), 1u);
  EXPECT_EQ(trace.root()->TotalRowsScanned(), 20u);

  std::string text = trace.ToString();
  EXPECT_NE(text.find("Query"), std::string::npos);
  EXPECT_NE(text.find("Scan orders access=st_range"), std::string::npos);
  EXPECT_NE(text.find("bytes_read=100"), std::string::npos);
  EXPECT_NE(text.find("ranges=4"), std::string::npos);
  EXPECT_NE(text.find("rows_scanned=20"), std::string::npos);
  EXPECT_NE(text.find("rows_matched=12"), std::string::npos);
  EXPECT_NE(text.find("cache_hit_rate=0.50"), std::string::npos);
  EXPECT_NE(text.find("time="), std::string::npos);

  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"Query\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_read\":100"), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
}

TEST(TraceTest, EndIsIdempotent) {
  Trace trace("q");
  trace.root()->End();
  uint64_t first = trace.root()->wall_ns();
  trace.root()->End();
  EXPECT_EQ(trace.root()->wall_ns(), first);
}

TEST(TraceTest, WorkerThreadsAttributeToHandedOffSpan) {
  Trace trace("Query");
  // The ParallelScan handoff pattern: capture the span before dispatch,
  // SpanScope inside each worker.
  TraceSpan* parent = trace.root();
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([parent] {
      SpanScope scope(parent);
      for (int i = 0; i < kIters; ++i) TraceRowsScanned(1);
    });
  }
  for (auto& t : workers) t.join();
  trace.root()->End();
  EXPECT_EQ(trace.root()->TotalRowsScanned(),
            static_cast<uint64_t>(kThreads) * kIters);
}

// --- Slow-query log ---

TEST(SlowQueryLogTest, ThresholdGatesRecording) {
  SlowQueryLog log(/*threshold_us=*/100, /*capacity=*/16,
                   /*log_to_stderr=*/false);
  log.MaybeRecord({"u", "fast", /*wall_us=*/99, 0, 0, 0});
  EXPECT_EQ(log.size(), 0u);
  log.MaybeRecord({"u", "slow", /*wall_us=*/100, 5, 50, 2});
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.Entries()[0].sql, "slow");
  EXPECT_EQ(log.Entries()[0].rows, 5u);
}

TEST(SlowQueryLogTest, NegativeThresholdDisables) {
  SlowQueryLog log(/*threshold_us=*/-1, /*capacity=*/16,
                   /*log_to_stderr=*/false);
  log.MaybeRecord({"u", "q", /*wall_us=*/1000000, 0, 0, 0});
  EXPECT_EQ(log.size(), 0u);
}

TEST(SlowQueryLogTest, ZeroCapturesAllAndBoundsCapacity) {
  uint64_t before =
      Registry::Global().CounterValue("just_sql_slow_queries_total");
  SlowQueryLog log(/*threshold_us=*/0, /*capacity=*/3,
                   /*log_to_stderr=*/false);
  for (int i = 0; i < 5; ++i) {
    log.MaybeRecord({"u", "q" + std::to_string(i),
                     /*wall_us=*/static_cast<uint64_t>(i), 0, 0, 0});
  }
  ASSERT_EQ(log.size(), 3u);
  auto entries = log.Entries();
  EXPECT_EQ(entries.front().sql, "q2");  // oldest surviving
  EXPECT_EQ(entries.back().sql, "q4");   // newest last
  EXPECT_EQ(
      Registry::Global().CounterValue("just_sql_slow_queries_total") - before,
      5u);
}

}  // namespace
}  // namespace just::obs
