#include <gtest/gtest.h>

#include <memory>

#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/expr_eval.h"
#include "sql/functions.h"
#include "sql/justql.h"
#include "sql/lexer.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "test_util.h"
#include "workload/generators.h"

namespace just::sql {
namespace {

using just::testing::TempDir;

// --- lexer ---

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT fid, geom FROM t WHERE fid = 52*9");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].value, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].value, "fid");
  EXPECT_TRUE(tokens->back().type == TokenType::kEnd);
}

TEST(LexerTest, CapturesJsonBlob) {
  auto tokens =
      Tokenize("USERDATA {'geomesa.indices.enabled':'z3', 'n': {'x': 1}}");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ((*tokens)[1].type, TokenType::kJson);
  EXPECT_EQ((*tokens)[1].value.front(), '{');
  EXPECT_EQ((*tokens)[1].value.back(), '}');
  EXPECT_NE((*tokens)[1].value.find("geomesa"), std::string::npos);
}

TEST(LexerTest, StringsAndComments) {
  auto tokens = Tokenize("SELECT 'a''s' -- comment\n, \"b\" FROM t");
  ASSERT_TRUE(tokens.ok());
  // 'a' then 's' as separate strings is fine; just check no comment token.
  for (const auto& t : *tokens) {
    EXPECT_EQ(t.value.find("comment"), std::string::npos);
  }
}

TEST(LexerTest, RejectsUnterminated) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
  EXPECT_FALSE(Tokenize("USERDATA {'a': 1").ok());
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

// --- parser: the paper's statements verbatim ---

TEST(ParserTest, PaperCreateCommonTable) {
  auto stmt = ParseStatement(R"(
      CREATE TABLE tra (
        fid integer:primary key,
        name string,
        time date,
        geom point:srid=4326,
        gpsList st_series:compress=gzip|zip
      ) USERDATA {'geomesa.indices.enabled':'z3'})");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  const auto& create = *stmt->create_table;
  EXPECT_EQ(create.name, "tra");
  ASSERT_EQ(create.columns.size(), 5u);
  EXPECT_TRUE(create.columns[0].primary_key);
  EXPECT_EQ(create.columns[3].srid, "4326");
  EXPECT_EQ(create.columns[4].compress, "gzip");
  EXPECT_NE(create.userdata_json.find("z3"), std::string::npos);
}

TEST(ParserTest, PaperCreatePluginTable) {
  auto stmt = ParseStatement("CREATE TABLE mytraj AS trajectory");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->create_table->plugin, "trajectory");
}

TEST(ParserTest, PaperSpatialRangeQuery) {
  auto stmt = ParseStatement(
      "SELECT fid, name, time, geom FROM tbl WHERE geom WITHIN "
      "st_makeMBR(116.0, 39.0, 117.0, 40.0)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& select = *stmt->select;
  EXPECT_EQ(select.items.size(), 4u);
  ASSERT_NE(select.where, nullptr);
  EXPECT_EQ(select.where->op, BinaryOp::kWithin);
}

TEST(ParserTest, PaperStRangeQuery) {
  auto stmt = ParseStatement(
      "SELECT fid FROM tbl WHERE geom WITHIN st_makeMBR(1,2,3,4) AND "
      "time BETWEEN '2018-10-01' AND '2018-10-02'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->select->where->op, BinaryOp::kAnd);
  EXPECT_EQ(stmt->select->where->args[1]->op, BinaryOp::kBetween);
}

TEST(ParserTest, PaperKnnQuery) {
  auto stmt = ParseStatement(
      "SELECT fid, name, time, geom FROM tbl WHERE geom IN "
      "st_KNN(st_makePoint(116.4, 39.9), 50)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->select->where->op, BinaryOp::kIn);
  EXPECT_EQ(stmt->select->where->args[1]->call_name, "st_knn");
}

TEST(ParserTest, PaperSection6Query) {
  auto stmt = ParseStatement(R"(
      SELECT name, geom
      FROM (SELECT * FROM tbl) t
      WHERE fid=52*9 AND geom WITHIN st_makeMBR(1, 2, 3, 4)
      ORDER BY time)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& select = *stmt->select;
  ASSERT_NE(select.subquery, nullptr);
  EXPECT_EQ(select.subquery_alias, "t");
  EXPECT_EQ(select.order_by.size(), 1u);
  EXPECT_EQ(select.order_by[0].column, "time");
}

TEST(ParserTest, PaperLoadStatement) {
  auto stmt = ParseStatement(R"(
      LOAD hive:mydb.mytable TO geomesa:tra
      CONFIG {'fid': 'trajId', 'time': 'long_to_date_ms(timestamp)',
              'geom': 'lng_lat_to_point(lng, lat)'}
      FILTER 'trajId="1068" limit 10')");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->load->source_kind, "hive");
  EXPECT_EQ(stmt->load->source_path, "mydb.mytable");
  EXPECT_EQ(stmt->load->target_table, "tra");
  EXPECT_NE(stmt->load->config_json.find("trajId"), std::string::npos);
  EXPECT_NE(stmt->load->filter.find("limit 10"), std::string::npos);
}

TEST(ParserTest, PaperViewStatements) {
  auto create = ParseStatement("CREATE VIEW v1 AS SELECT fid FROM t");
  ASSERT_TRUE(create.ok());
  EXPECT_EQ(create->create_view->name, "v1");
  auto store = ParseStatement("STORE VIEW v1 TO TABLE t2");
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->store_view->view, "v1");
  EXPECT_EQ(store->store_view->table, "t2");
  auto drop = ParseStatement("DROP VIEW v1");
  ASSERT_TRUE(drop.ok());
  EXPECT_TRUE(drop->drop->is_view);
  auto show = ParseStatement("SHOW VIEWS");
  ASSERT_TRUE(show.ok());
  EXPECT_TRUE(show->show->views);
  auto desc = ParseStatement("DESC TABLE t");
  ASSERT_TRUE(desc.ok());
  EXPECT_FALSE(desc->desc->is_view);
}

TEST(ParserTest, PaperAnalysisOperations) {
  auto t1 = ParseStatement("SELECT st_WGS84ToGCJ02(lng, lat) FROM v");
  ASSERT_TRUE(t1.ok());
  auto t2 = ParseStatement("SELECT st_trajNoiseFilter(item) FROM v");
  ASSERT_TRUE(t2.ok());
  auto t3 = ParseStatement("SELECT st_DBSCAN(geom, 5, 0.001) FROM v");
  ASSERT_TRUE(t3.ok());
}

TEST(ParserTest, GroupByOrderLimit) {
  auto stmt = ParseStatement(
      "SELECT name, count(*) AS cnt FROM t GROUP BY name "
      "ORDER BY cnt DESC LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->select->group_by.size(), 1u);
  EXPECT_FALSE(stmt->select->order_by[0].ascending);
  EXPECT_EQ(stmt->select->limit, 5);
}

TEST(ParserTest, InsertValues) {
  auto stmt = ParseStatement(
      "INSERT INTO t VALUES ('a', '2018-10-01 00:00:00', "
      "st_makePoint(116.4, 39.9)), ('b', '2018-10-02 00:00:00', "
      "st_makePoint(116.5, 39.8))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->insert->rows.size(), 2u);
  EXPECT_EQ(stmt->insert->rows[0].size(), 3u);
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseStatement("SELEC fid FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t extra garbage").ok());
}

// --- expression evaluation ---

TEST(ExprEvalTest, ArithmeticAndComparison) {
  exec::Schema schema({{"x", exec::DataType::kInt}});
  exec::Row row = {exec::Value::Int(10)};
  auto parse_where = [](const std::string& cond) {
    auto stmt = ParseStatement("SELECT a FROM t WHERE " + cond);
    return std::move(stmt.value().select->where);
  };
  auto eval = [&](const std::string& cond) {
    auto expr = parse_where(cond);
    auto v = EvaluateExpr(*expr, schema, row);
    return v.ok() && v->bool_value();
  };
  EXPECT_TRUE(eval("x = 10"));
  EXPECT_TRUE(eval("x + 5 = 15"));
  EXPECT_TRUE(eval("x * 2 > 19"));
  EXPECT_TRUE(eval("x BETWEEN 5 AND 15"));
  EXPECT_FALSE(eval("x BETWEEN 11 AND 15"));
  EXPECT_TRUE(eval("x = 10 AND x < 11"));
  EXPECT_TRUE(eval("x = 9 OR x = 10"));
  EXPECT_TRUE(eval("x / 2 = 5"));
  EXPECT_FALSE(eval("x != 10"));
}

TEST(ExprEvalTest, ConstantFoldingDetection) {
  auto stmt = ParseStatement(
      "SELECT a FROM t WHERE fid = 52*9 AND geom WITHIN "
      "st_makeMBR(1, 2, 3, 4)");
  ASSERT_TRUE(stmt.ok());
  const Expr& where = *stmt->select->where;
  EXPECT_FALSE(IsConstantExpr(where));                   // references fid
  EXPECT_TRUE(IsConstantExpr(*where.args[0]->args[1]));  // 52*9
  EXPECT_TRUE(IsConstantExpr(*where.args[1]->args[1]));  // st_makeMBR(...)
  auto folded = EvaluateConstant(*where.args[0]->args[1]);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->int_value(), 468);
}

TEST(ExprEvalTest, ScalarFunctions) {
  auto eval_const = [](const std::string& call) {
    auto stmt = ParseStatement("SELECT a FROM t WHERE x = " + call);
    return EvaluateConstant(*stmt.value().select->where->args[1]);
  };
  auto mbr = eval_const("st_makeMBR(116, 39, 117, 40)");
  ASSERT_TRUE(mbr.ok());
  EXPECT_EQ(mbr->type(), exec::DataType::kGeometry);
  auto dist = eval_const(
      "st_distance(st_makePoint(0, 0), st_makePoint(3, 4))");
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->double_value(), 5.0, 1e-9);
  auto within = eval_const(
      "st_within(st_makePoint(116.5, 39.5), st_makeMBR(116, 39, 117, 40))");
  ASSERT_TRUE(within.ok());
  EXPECT_TRUE(within->bool_value());
  auto gcj = eval_const("st_WGS84ToGCJ02(116.4, 39.9)");
  ASSERT_TRUE(gcj.ok());
  EXPECT_NE(gcj->geometry_value().AsPoint().lng, 116.4);
  auto text = eval_const("st_asText(st_makePoint(1, 2))");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->string_value(), "POINT (1.000000 2.000000)");
}

TEST(ExprEvalTest, BoundExprMatchesEvaluateExprOverFrame) {
  just::testing::FrameBuilder b;
  b.Col("x", exec::DataType::kInt)
      .Col("y", exec::DataType::kDouble)
      .Row({exec::Value::Int(1), exec::Value::Double(0.5)})
      .Row({exec::Value::Null(), exec::Value::Double(2.0)})
      .Row({exec::Value::Int(3), exec::Value::Null()});
  exec::DataFrame frame = b.Frame();
  auto stmt = ParseStatement("SELECT a FROM t WHERE x + 1 > y");
  ASSERT_TRUE(stmt.ok());
  const Expr& where = *stmt->select->where;
  auto bound = BoundExpr::Bind(where, frame.schema());
  ASSERT_TRUE(bound.ok());
  for (const exec::Row& row : frame.rows()) {
    auto slow = EvaluateExpr(where, frame.schema(), row);
    auto fast = bound->Eval(row);
    ASSERT_EQ(slow.ok(), fast.ok());
    if (slow.ok()) EXPECT_TRUE(slow->Equals(*fast));
  }
  // Binding against a schema missing a referenced column fails up front.
  exec::Schema missing({{"x", exec::DataType::kInt}});
  EXPECT_FALSE(BoundExpr::Bind(where, missing).ok());
}

// --- full stack: engine + JustQL ---

class JustQLTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("justql");
    core::EngineOptions options;
    options.data_dir = dir_->path();
    options.num_servers = 2;
    options.num_shards = 4;
    auto engine = core::JustEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).value();
    ql_ = std::make_unique<JustQL>(engine_.get());
  }

  Result<QueryResult> Run(const std::string& sql) {
    return ql_->Execute("tester", sql);
  }

  void MustRun(const std::string& sql) {
    auto r = Run(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  void LoadOrders(int n) {
    MustRun(
        "CREATE TABLE orders (fid string:primary key, time date, "
        "geom point:srid=4326)");
    workload::OrderOptions opts;
    opts.num_orders = n;
    for (const auto& order : workload::GenerateOrders(opts)) {
      exec::Row row = {
          exec::Value::String(order.fid), exec::Value::Timestamp(order.time),
          exec::Value::GeometryVal(geo::Geometry::MakePoint(order.point))};
      ASSERT_TRUE(engine_->Insert("tester", "orders", row).ok());
    }
    ASSERT_TRUE(engine_->Finalize().ok());
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<core::JustEngine> engine_;
  std::unique_ptr<JustQL> ql_;
};

TEST_F(JustQLTest, DdlRoundTrip) {
  MustRun(
      "CREATE TABLE t1 (fid string:primary key, time date, "
      "geom point:srid=4326)");
  MustRun("CREATE TABLE mytraj AS trajectory");
  auto show = Run("SHOW TABLES");
  ASSERT_TRUE(show.ok());
  EXPECT_EQ(show->frame.num_rows(), 2u);
  auto desc = Run("DESC TABLE t1");
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->frame.num_rows(), 3u);
  MustRun("DROP TABLE t1");
  show = Run("SHOW TABLES");
  EXPECT_EQ(show->frame.num_rows(), 1u);
  EXPECT_FALSE(Run("DROP TABLE t1").ok());  // already gone
  EXPECT_FALSE(Run("CREATE TABLE mytraj AS trajectory").ok());  // duplicate
}

TEST_F(JustQLTest, UserdataSelectsIndexes) {
  MustRun(
      "CREATE TABLE z3only (fid string:primary key, time date, "
      "geom point) USERDATA {'geomesa.indices.enabled':'z3'}");
  auto meta = engine_->DescribeTable("tester", "z3only");
  ASSERT_TRUE(meta.ok());
  ASSERT_EQ(meta->indexes.size(), 1u);
  EXPECT_EQ(meta->indexes[0].type, curve::IndexType::kZ3);
  MustRun(
      "CREATE TABLE yearly (fid string:primary key, time date, geom point) "
      "USERDATA {'geomesa.indices.enabled':'z3', 'just.period':'year'}");
  meta = engine_->DescribeTable("tester", "yearly");
  EXPECT_EQ(meta->indexes[0].period_len_ms, kMillisPerYear);
}

TEST_F(JustQLTest, InsertAndSelectWhere) {
  MustRun(
      "CREATE TABLE pts (fid string:primary key, time date, geom point)");
  MustRun(
      "INSERT INTO pts VALUES "
      "('a', '2018-10-01 10:00:00', st_makePoint(116.40, 39.90)), "
      "('b', '2018-10-02 11:00:00', st_makePoint(116.50, 39.95)), "
      "('c', '2018-10-03 12:00:00', st_makePoint(120.00, 30.00))");
  auto r = Run(
      "SELECT fid FROM pts WHERE geom WITHIN "
      "st_makeMBR(116.0, 39.0, 117.0, 40.0) ORDER BY fid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->frame.num_rows(), 2u);
  EXPECT_EQ(r->frame.rows()[0][0].string_value(), "a");
  EXPECT_EQ(r->frame.rows()[1][0].string_value(), "b");
}

TEST_F(JustQLTest, SpatioTemporalRangeViaSql) {
  MustRun(
      "CREATE TABLE pts (fid string:primary key, time date, geom point)");
  MustRun(
      "INSERT INTO pts VALUES "
      "('early', '2018-10-01 01:00:00', st_makePoint(116.40, 39.90)), "
      "('late', '2018-10-20 01:00:00', st_makePoint(116.40, 39.90))");
  auto r = Run(
      "SELECT fid FROM pts WHERE geom WITHIN "
      "st_makeMBR(116.0, 39.0, 117.0, 40.0) AND "
      "time BETWEEN '2018-10-01' AND '2018-10-02'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->frame.num_rows(), 1u);
  EXPECT_EQ(r->frame.rows()[0][0].string_value(), "early");
}

TEST_F(JustQLTest, KnnViaSql) {
  LoadOrders(500);
  auto r = Run(
      "SELECT fid, geom FROM orders WHERE geom IN "
      "st_KNN(st_makePoint(116.4, 39.9), 7)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.num_rows(), 7u);
}

TEST_F(JustQLTest, AggregatesAndGroupBy) {
  MustRun(
      "CREATE TABLE pts (fid string:primary key, city string, time date, "
      "geom point)");
  MustRun(
      "INSERT INTO pts VALUES "
      "('a', 'bj', '2018-10-01 10:00:00', st_makePoint(116.4, 39.9)), "
      "('b', 'bj', '2018-10-01 11:00:00', st_makePoint(116.5, 39.8)), "
      "('c', 'sh', '2018-10-01 12:00:00', st_makePoint(121.4, 31.2))");
  auto r = Run(
      "SELECT city, count(*) AS cnt FROM pts GROUP BY city ORDER BY cnt "
      "DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->frame.num_rows(), 2u);
  EXPECT_EQ(r->frame.rows()[0][0].string_value(), "bj");
  EXPECT_EQ(r->frame.rows()[0][1].int_value(), 2);
}

TEST_F(JustQLTest, ViewsAndStoreView) {
  LoadOrders(300);
  MustRun(
      "CREATE VIEW nearby AS SELECT fid, time, geom FROM orders WHERE geom "
      "WITHIN st_makeMBR(116.2, 39.8, 116.6, 40.0)");
  auto show = Run("SHOW VIEWS");
  ASSERT_TRUE(show.ok());
  EXPECT_EQ(show->frame.num_rows(), 1u);
  auto from_view = Run("SELECT count(*) AS n FROM nearby");
  ASSERT_TRUE(from_view.ok());
  int64_t view_count = from_view->frame.rows()[0][0].int_value();
  EXPECT_GT(view_count, 0);
  // "One query, multiple usages": store the view into a new table.
  MustRun("STORE VIEW nearby TO TABLE nearby_tbl");
  auto stored = Run("SELECT count(*) AS n FROM nearby_tbl");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->frame.rows()[0][0].int_value(), view_count);
  MustRun("DROP VIEW nearby");
  EXPECT_FALSE(Run("SELECT * FROM nearby").ok());
}

TEST_F(JustQLTest, SubqueryAndProjectionPruning) {
  LoadOrders(200);
  auto r = Run(
      "SELECT fid FROM (SELECT * FROM orders) t WHERE geom WITHIN "
      "st_makeMBR(116.0, 39.0, 117.0, 41.0) LIMIT 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LE(r->frame.num_rows(), 10u);
  EXPECT_EQ(r->frame.schema().num_fields(), 1u);
}

TEST_F(JustQLTest, JoinOnViews) {
  MustRun(
      "CREATE TABLE pts (fid string:primary key, city string, time date, "
      "geom point)");
  MustRun(
      "INSERT INTO pts VALUES "
      "('a', 'bj', '2018-10-01 10:00:00', st_makePoint(116.4, 39.9)), "
      "('b', 'sh', '2018-10-01 11:00:00', st_makePoint(121.4, 31.2))");
  MustRun("CREATE VIEW left_v AS SELECT fid, city FROM pts");
  MustRun("CREATE VIEW right_v AS SELECT city, count(*) AS cnt FROM pts "
          "GROUP BY city");
  auto r = Run(
      "SELECT fid, cnt FROM left_v JOIN right_v ON city = city");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.num_rows(), 2u);
}

TEST_F(JustQLTest, CoordinateTransform1to1) {
  MustRun(
      "CREATE TABLE pts (fid string:primary key, time date, geom point)");
  MustRun(
      "INSERT INTO pts VALUES ('a', '2018-10-01 10:00:00', "
      "st_makePoint(116.4, 39.9))");
  auto r = Run("SELECT st_WGS84ToGCJ02(geom) AS gcj FROM pts");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->frame.num_rows(), 1u);
  geo::Point p = r->frame.rows()[0][0].geometry_value().AsPoint();
  EXPECT_NE(p.lng, 116.4);  // offset applied
  EXPECT_NEAR(p.lng, 116.4, 0.01);
}

TEST_F(JustQLTest, TrajectoryAnalysis1toN) {
  MustRun("CREATE TABLE mytraj AS trajectory");
  workload::TrajOptions opts;
  opts.num_trajectories = 5;
  opts.points_per_traj = 50;
  for (const auto& t : workload::GenerateTrajectories(opts)) {
    exec::Row row = {
        exec::Value::String(t.oid()), exec::Value::String("c_" + t.oid()),
        exec::Value::Timestamp(t.start_time()),
        exec::Value::Timestamp(t.end_time()),
        exec::Value::TrajectoryVal(
            std::make_shared<const traj::Trajectory>(t))};
    ASSERT_TRUE(engine_->Insert("tester", "mytraj", row).ok());
  }
  auto r = Run("SELECT st_trajNoiseFilter(item) FROM mytraj");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.num_rows(), 5u);
  EXPECT_GE(r->frame.schema().IndexOf("item"), 0);
  auto seg = Run("SELECT st_trajSegmentation(item) FROM mytraj");
  ASSERT_TRUE(seg.ok());
  EXPECT_GE(seg->frame.num_rows(), 5u);
}

TEST_F(JustQLTest, DbscanNtoM) {
  LoadOrders(400);
  auto r = Run("SELECT st_DBSCAN(geom, 5, 0.002) FROM orders");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.num_rows(), 400u);
  // At least one cluster should emerge from hotspot data.
  int64_t max_label = -1;
  for (const auto& row : r->frame.rows()) {
    max_label = std::max(max_label, row[0].int_value());
  }
  EXPECT_GE(max_label, 0);
}

TEST_F(JustQLTest, LoadCsvStatement) {
  MustRun(
      "CREATE TABLE pts (fid string:primary key, time date, geom point)");
  std::string csv = dir_->path() + "/in.csv";
  std::FILE* f = std::fopen(csv.c_str(), "wb");
  std::fputs("id,ts,lng,lat\nx1,1538352000000,116.4,39.9\n"
             "x2,1538352060000,116.5,39.8\n",
             f);
  std::fclose(f);
  auto r = Run("LOAD csv:'" + csv +
               "' TO geomesa:pts CONFIG {'fid': 'id', "
               "'time': 'long_to_date_ms(ts)', "
               "'geom': 'lng_lat_to_point(lng, lat)'}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto count = Run("SELECT count(*) AS n FROM pts");
  EXPECT_EQ(count->frame.rows()[0][0].int_value(), 2);
}

TEST_F(JustQLTest, MultiUserIsolationViaSql) {
  MustRun("CREATE TABLE t (fid string:primary key, time date, geom point)");
  auto other = ql_->Execute("someone_else", "SHOW TABLES");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->frame.num_rows(), 0u);
  EXPECT_FALSE(ql_->Execute("someone_else", "SELECT * FROM t").ok());
}

// --- optimizer: the Figure 8 rewrite ---

TEST_F(JustQLTest, Figure8PlanOptimization) {
  MustRun(
      "CREATE TABLE tbl (fid integer:primary key, name string, time date, "
      "geom point:srid=4326)");
  std::string sql =
      "SELECT name, geom FROM (SELECT * FROM tbl) t "
      "WHERE fid=52*9 AND geom WITHIN st_makeMBR(116, 39, 117, 40) "
      "ORDER BY time";
  auto explain = ql_->ExplainSelect("tester", sql);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  const std::string& text = *explain;

  // Analyzed plan: constant NOT folded yet.
  size_t analyzed_pos = text.find("=== Analyzed");
  size_t optimized_pos = text.find("=== Optimized");
  ASSERT_NE(analyzed_pos, std::string::npos);
  ASSERT_NE(optimized_pos, std::string::npos);
  std::string analyzed = text.substr(analyzed_pos, optimized_pos);
  std::string optimized = text.substr(optimized_pos);

  // Rule 1: 52*9 folded to 468, st_makeMBR folded to a literal polygon.
  EXPECT_NE(analyzed.find("52 * 9"), std::string::npos);
  EXPECT_EQ(optimized.find("52 * 9"), std::string::npos);
  EXPECT_NE(optimized.find("468"), std::string::npos);
  EXPECT_EQ(optimized.find("st_makembr"), std::string::npos);

  // Rule 2: in the optimized plan the Filter sits directly above the Scan.
  size_t filter_pos = optimized.find("Filter");
  size_t scan_pos = optimized.find("Scan [tbl");
  ASSERT_NE(filter_pos, std::string::npos);
  ASSERT_NE(scan_pos, std::string::npos);
  EXPECT_LT(filter_pos, scan_pos);
  std::string between = optimized.substr(filter_pos, scan_pos - filter_pos);
  EXPECT_EQ(between.find("Project"), std::string::npos)
      << "filter was not pushed below the projection";

  // Rule 3: the scan records only the needed columns (name, geom, fid,
  // time), i.e. projection pushdown happened.
  EXPECT_NE(optimized.find("columns:"), std::string::npos);
  size_t col_pos = optimized.find("columns:");
  std::string cols = optimized.substr(col_pos, optimized.find(']', col_pos) -
                                                   col_pos);
  EXPECT_NE(cols.find("name"), std::string::npos);
  EXPECT_NE(cols.find("geom"), std::string::npos);
  EXPECT_NE(cols.find("fid"), std::string::npos);
  EXPECT_NE(cols.find("time"), std::string::npos);

  // And the optimized query still executes correctly.
  auto r = Run(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST_F(JustQLTest, OptimizedAndUnoptimizedAgree) {
  LoadOrders(300);
  // Compare a query through the full pipeline against a manual filter of a
  // full scan (semantic equivalence of the optimizer).
  std::string sql =
      "SELECT fid FROM (SELECT * FROM orders) t WHERE geom WITHIN "
      "st_makeMBR(116.2, 39.8, 116.5, 40.0) ORDER BY fid";
  auto optimized = Run(sql);
  ASSERT_TRUE(optimized.ok());
  auto full = Run("SELECT fid, geom FROM orders ORDER BY fid");
  ASSERT_TRUE(full.ok());
  geo::Mbr box = geo::Mbr::Of(116.2, 39.8, 116.5, 40.0);
  std::vector<std::string> expected;
  for (const auto& row : full->frame.rows()) {
    if (row[1].geometry_value().Within(box)) {
      expected.push_back(row[0].string_value());
    }
  }
  ASSERT_EQ(optimized->frame.num_rows(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(optimized->frame.rows()[i][0].string_value(), expected[i]);
  }
}

TEST_F(JustQLTest, ScanStatsShowIndexEffectiveness) {
  LoadOrders(2000);
  Analyzer analyzer(engine_.get(), "tester");
  auto stmt = ParseStatement(
      "SELECT fid FROM orders WHERE geom WITHIN "
      "st_makeMBR(116.38, 39.88, 116.42, 39.92)");
  ASSERT_TRUE(stmt.ok());
  auto plan = analyzer.Analyze(*stmt->select);
  ASSERT_TRUE(plan.ok());
  auto optimized = Optimize(std::move(*plan));
  ASSERT_TRUE(optimized.ok());
  Executor executor(engine_.get(), "tester");
  core::QueryStats stats;
  auto frame = executor.Execute(**optimized, &stats);
  ASSERT_TRUE(frame.ok());
  // The Z2 index must scan a small fraction of the table.
  EXPECT_LT(stats.rows_scanned, 1000u);
  EXPECT_GE(stats.rows_scanned, stats.rows_matched);
}

}  // namespace
}  // namespace just::sql
