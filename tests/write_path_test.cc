// Regression and stress tests for the concurrent write path: group-commit
// WAL, background flush with immutable-memtable handoff, snapshot scans,
// and the cross-shard cluster scan bugs the old stop-the-world write path
// was masking.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/region_cluster.h"
#include "kvstore/fault_env.h"
#include "kvstore/lsm_store.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace just::kv {
namespace {

using just::testing::TempDir;

/// An Env that blocks SSTable builds (appends to "*.sst.tmp" files) until
/// the gate opens, so tests can hold a background flush in flight and probe
/// what the store allows meanwhile. All other operations pass through.
class GateEnv : public Env {
 public:
  explicit GateEnv(Env* base = nullptr)
      : base_(base != nullptr ? base : Env::Default()) {}

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
  }
  void OpenGate() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  /// Blocks until a builder thread is waiting at the closed gate.
  void AwaitArrival() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return waiting_ > 0 || open_; });
  }
  bool HasArrived() {
    std::lock_guard<std::mutex> lock(mu_);
    return waiting_ > 0;
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    JUST_ASSIGN_OR_RETURN(auto file, base_->NewWritableFile(path, truncate));
    constexpr std::string_view kGated = ".sst.tmp";
    if (path.size() >= kGated.size() &&
        path.compare(path.size() - kGated.size(), kGated.size(), kGated) ==
            0) {
      return {std::make_unique<GatedFile>(this, std::move(file))};
    }
    return {std::move(file)};
  }
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    return base_->NewRandomAccessFile(path);
  }
  Status ReadFileToString(const std::string& path, std::string* out) override {
    return base_->ReadFileToString(path, out);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return base_->TruncateFile(path, size);
  }
  Status CreateDirs(const std::string& path) override {
    return base_->CreateDirs(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }

 private:
  class GatedFile : public WritableFile {
   public:
    GatedFile(GateEnv* env, std::unique_ptr<WritableFile> base)
        : env_(env), base_(std::move(base)) {}
    Status Append(std::string_view data) override {
      env_->WaitGate();
      return base_->Append(data);
    }
    Status Sync() override {
      env_->WaitGate();
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    GateEnv* env_;
    std::unique_ptr<WritableFile> base_;
  };

  void WaitGate() {
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
    --waiting_;
  }

  Env* base_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = true;
  int waiting_ = 0;
};

StoreOptions SmallStoreOptions(const std::string& dir, Env* env) {
  StoreOptions opts;
  opts.dir = dir;
  opts.env = env;
  opts.memtable_bytes = 1 << 10;  // tiny: flushes are easy to trigger
  opts.block_size = 256;
  return opts;
}

uint64_t GlobalCounter(const std::string& name) {
  return obs::Registry::Global().GetCounter(name)->Value();
}

// ---------------------------------------------------------------------------
// Tentpole: writes proceed while a flush is in progress.

TEST(WritePathTest, PutCompletesWhileFlushInProgress) {
  TempDir dir("bg_flush_put");
  GateEnv gate;
  StoreOptions opts = SmallStoreOptions(dir.path(), &gate);
  auto store_or = LsmStore::Open(opts);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  LsmStore* store = store_or->get();

  gate.CloseGate();
  // Fill the memtable past its limit: the triggering Put swaps it out and
  // hands it to the background flusher, which now blocks at the gate. Five
  // ~200-byte entries cross the 1 KiB limit exactly once — a second swap
  // would stall against the closed gate.
  std::string big(200, 'x');
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store->Put("fill" + std::to_string(i), big).ok());
  }
  gate.AwaitArrival();
  ASSERT_TRUE(gate.HasArrived());

  // The acceptance check of this PR: a Put issued while the SSTable build
  // is stuck must complete without waiting for it. The old write path held
  // the store lock across the whole build, so this Put would hang until the
  // gate opened.
  auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(store->Put("during_flush", "v").ok());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_TRUE(gate.HasArrived()) << "flush finished early; test proves nothing";
  EXPECT_LT(elapsed.count(), 1000);

  // Reads see both generations while the flush is still stuck: the new key
  // from the active memtable, the old ones from the immutable one.
  std::string value;
  EXPECT_TRUE(store->Get("during_flush", &value).ok());
  EXPECT_TRUE(store->Get("fill0", &value).ok());
  EXPECT_EQ(value, big);

  gate.OpenGate();
  ASSERT_TRUE(store->Flush().ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(store->Get("fill" + std::to_string(i), &value).ok());
  }
  EXPECT_TRUE(store->Get("during_flush", &value).ok());
}

TEST(WritePathTest, WriteStallIsCountedWhenSecondMemtableFills) {
  TempDir dir("write_stall");
  GateEnv gate;
  StoreOptions opts = SmallStoreOptions(dir.path(), &gate);
  auto store_or = LsmStore::Open(opts);
  ASSERT_TRUE(store_or.ok());
  LsmStore* store = store_or->get();

  const uint64_t stalls_before = GlobalCounter("just_kv_write_stalls_total");
  gate.CloseGate();
  std::string big(200, 'x');
  // One swap only (see PutCompletesWhileFlushInProgress): the stall is
  // provoked below, on a thread this test controls.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store->Put("a" + std::to_string(i), big).ok());
  }
  gate.AwaitArrival();

  // Fill the *second* memtable while the first is still flushing: the swap
  // must wait for the flush slot — the only point the new write path stalls.
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store->Put("b" + std::to_string(i), big).ok());
    }
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(done.load()) << "second memtable swap did not stall";
  gate.OpenGate();
  writer.join();

  EXPECT_GT(GlobalCounter("just_kv_write_stalls_total"), stalls_before);
  ASSERT_TRUE(store->Flush().ok());
  std::string value;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(store->Get("a" + std::to_string(i), &value).ok());
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(store->Get("b" + std::to_string(i), &value).ok());
  }
}

// ---------------------------------------------------------------------------
// Satellite: named regression for the scan-callback re-entrancy deadlock.

// The old Scan held the store's reader lock while running the callback, so
// a callback that wrote to the same store self-deadlocked (Put wants the
// writer lock the scan holds). Snapshot scans release everything before
// iterating, making re-entrant callbacks legal.
TEST(WritePathTest, ScanCallbackReentrancyNoSelfDeadlock) {
  TempDir dir("scan_reentrant");
  StoreOptions opts = SmallStoreOptions(dir.path(), Env::Default());
  auto store_or = LsmStore::Open(opts);
  ASSERT_TRUE(store_or.ok());
  LsmStore* store = store_or->get();

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i), "v").ok());
  }
  int seen = 0;
  Status st = store->Scan("", "", [&](std::string_view key, std::string_view) {
    ++seen;
    // Writing back into the scanned store used to deadlock right here.
    EXPECT_TRUE(store->Put("derived/" + std::string(key), "d").ok());
    std::string value;
    EXPECT_TRUE(store->Get(std::string(key), &value).ok());
    return true;
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(seen, 20);  // snapshot semantics: new keys not visited mid-scan
  std::string value;
  EXPECT_TRUE(store->Get("derived/key0", &value).ok());
}

// ---------------------------------------------------------------------------
// Satellite: cross-shard ParallelScan dropped rows.

cluster::ClusterOptions SmallClusterOptions(const std::string& dir) {
  cluster::ClusterOptions opts;
  opts.dir = dir;
  opts.num_servers = 5;
  opts.store.memtable_bytes = 1 << 12;
  opts.store.block_size = 256;
  return opts;
}

// Routing is first_byte % num_servers, which is NOT contiguous: the range
// ["\x04", "\x07") lands on servers 4, 0 and 1 of 5. The old fallback
// scanned only [ServerFor(start), ServerFor(end)] — clamped here to server
// 4 alone — and silently dropped every row on servers 0 and 1.
TEST(ClusterScanTest, ParallelScanCoversCrossShardRanges) {
  TempDir dir("cross_shard");
  auto cluster_or = cluster::RegionCluster::Open(SmallClusterOptions(dir.path()));
  ASSERT_TRUE(cluster_or.ok());
  cluster::RegionCluster* cluster = cluster_or->get();

  std::set<std::string> expected;
  for (char shard = 4; shard <= 6; ++shard) {
    for (int i = 0; i < 8; ++i) {
      std::string key(1, shard);
      key += "key" + std::to_string(i);
      ASSERT_TRUE(cluster->Put(key, "v").ok());
      expected.insert(key);
    }
  }
  // Keys outside the range must stay excluded.
  ASSERT_TRUE(cluster->Put(std::string(1, 7) + "outside", "v").ok());

  curve::KeyRange range;
  range.start = std::string(1, 4);
  range.end = std::string(1, 7);
  auto results_or = cluster->ParallelScan({range});
  ASSERT_TRUE(results_or.ok());
  std::set<std::string> got;
  for (const auto& row : (*results_or)[0].rows) got.insert(row.key);
  EXPECT_EQ(got, expected);
}

TEST(ClusterScanTest, ParallelScanSingleShardRangeStillWorks) {
  TempDir dir("single_shard");
  auto cluster_or = cluster::RegionCluster::Open(SmallClusterOptions(dir.path()));
  ASSERT_TRUE(cluster_or.ok());
  cluster::RegionCluster* cluster = cluster_or->get();

  for (int i = 0; i < 10; ++i) {
    std::string key(1, 3);
    key += "k" + std::to_string(i);
    ASSERT_TRUE(cluster->Put(key, "v").ok());
  }
  // The planner's usual shape: [prefix..., next shard byte) — single server.
  curve::KeyRange range;
  range.start = std::string(1, 3) + "k";
  range.end = std::string(1, 4);
  auto results_or = cluster->ParallelScan({range});
  ASSERT_TRUE(results_or.ok());
  EXPECT_EQ((*results_or)[0].rows.size(), 10u);
}

// ---------------------------------------------------------------------------
// Satellite: Scan buffered each server's whole range before early stop.

TEST(ClusterScanTest, ScanStreamsInBoundedBatches) {
  TempDir dir("scan_stream");
  cluster::ClusterOptions opts = SmallClusterOptions(dir.path());
  opts.scan_batch_rows = 10;
  auto cluster_or = cluster::RegionCluster::Open(opts);
  ASSERT_TRUE(cluster_or.ok());
  cluster::RegionCluster* cluster = cluster_or->get();

  for (int i = 0; i < 200; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    ASSERT_TRUE(cluster->Put(std::string(1, 2) + buf, "v").ok());
  }

  // Early-stopping consumer: the old code fetched all 200 rows into memory
  // before the callback saw the first one; streaming fetches one batch.
  uint64_t fetched_before =
      GlobalCounter("just_cluster_scan_rows_fetched_total");
  int seen = 0;
  Status st = cluster->Scan("", "", [&](std::string_view, std::string_view) {
    return ++seen < 5;
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(seen, 5);
  uint64_t fetched =
      GlobalCounter("just_cluster_scan_rows_fetched_total") - fetched_before;
  EXPECT_EQ(fetched, opts.scan_batch_rows);

  // Full consumption still sees every row exactly once, in order.
  fetched_before = GlobalCounter("just_cluster_scan_rows_fetched_total");
  std::vector<std::string> keys;
  st = cluster->Scan("", "", [&](std::string_view key, std::string_view) {
    keys.emplace_back(key);
    return true;
  });
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(keys.size(), 200u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  std::set<std::string> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), 200u);
  fetched =
      GlobalCounter("just_cluster_scan_rows_fetched_total") - fetched_before;
  EXPECT_EQ(fetched, 200u);
}

// ---------------------------------------------------------------------------
// Crash mid-background-flush: recovery must replay the retained WAL.

TEST(WritePathTest, CrashMidBackgroundFlushRecoversFromWal) {
  TempDir dir("crash_mid_flush");
  FaultInjectionEnv fault;
  GateEnv gate(&fault);
  StoreOptions opts = SmallStoreOptions(dir.path(), &gate);
  opts.sync_wal = true;  // acked writes are durable in the WAL
  std::map<std::string, std::string> acked;
  {
    auto store_or = LsmStore::Open(opts);
    ASSERT_TRUE(store_or.ok());
    LsmStore* store = store_or->get();

    gate.CloseGate();
    std::string big(200, 'x');
    // Five entries: one swap (a second would stall on the closed gate).
    for (int i = 0; i < 5; ++i) {
      std::string key = "key" + std::to_string(i);
      ASSERT_TRUE(store->Put(key, big).ok());
      acked[key] = big;
    }
    gate.AwaitArrival();  // flush is mid-SSTable-build

    // Power loss while the build is in flight: unsynced bytes (the partial
    // .sst.tmp among them) vanish; synced WAL records survive.
    fault.DropUnsyncedWrites();
    gate.OpenGate();  // the stuck build now fails against the dead disk
    // Destruction joins the background thread, which latches its error.
  }

  fault.ClearFaults();
  StoreOptions reopen = SmallStoreOptions(dir.path(), &fault);
  auto store_or = LsmStore::Open(reopen);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  LsmStore* store = store_or->get();
  for (const auto& [key, value] : acked) {
    std::string got;
    ASSERT_TRUE(store->Get(key, &got).ok()) << "lost acked key " << key;
    EXPECT_EQ(got, value);
  }
  // No .tmp leftovers survive recovery, and the store works again.
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  ASSERT_TRUE(store->Put("after", "crash").ok());
  ASSERT_TRUE(store->Flush().ok());
  std::string got;
  EXPECT_TRUE(store->Get("after", &got).ok());
}

// ---------------------------------------------------------------------------
// Concurrency stress: writers + scanners + background flush/compaction.
// Primarily a ThreadSanitizer target (the CI TSan job runs this binary).

TEST(WritePathTest, ConcurrentWritersScannersFlushStress) {
  TempDir dir("stress");
  StoreOptions opts = SmallStoreOptions(dir.path(), Env::Default());
  opts.compaction_trigger = 3;  // keep compactions in the mix
  auto store_or = LsmStore::Open(opts);
  ASSERT_TRUE(store_or.ok());
  LsmStore* store = store_or->get();

  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 400;
  std::atomic<bool> stop_readers{false};
  std::atomic<int> put_failures{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        std::string key =
            "w" + std::to_string(w) + "/k" + std::to_string(i);
        if (!store->Put(key, "value" + std::to_string(i)).ok()) {
          put_failures.fetch_add(1);
        }
        if (i % 64 == 0) {
          (void)store->Delete("w" + std::to_string(w) + "/k0");
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop_readers.load()) {
        size_t rows = 0;
        Status st = store->Scan(
            "", "", [&](std::string_view, std::string_view) {
              ++rows;
              return true;
            });
        EXPECT_TRUE(st.ok());
        std::string value;
        (void)store->Get("w0/k1", &value);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop_readers.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(put_failures.load(), 0);

  ASSERT_TRUE(store->Flush().ok());
  // Every writer's final keys are present (k0 may be deleted).
  std::string value;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 1; i < kKeysPerWriter; ++i) {
      std::string key = "w" + std::to_string(w) + "/k" + std::to_string(i);
      ASSERT_TRUE(store->Get(key, &value).ok()) << "missing " << key;
      ASSERT_EQ(value, "value" + std::to_string(i));
    }
  }
  EXPECT_GT(GlobalCounter("just_kv_flushes_total"), 0u);
}

// Group commit is observable: concurrent writers share WAL appends.
TEST(WritePathTest, GroupCommitBatchesConcurrentWriters) {
  TempDir dir("group_commit");
  StoreOptions opts;
  opts.dir = dir.path();
  opts.env = Env::Default();
  opts.memtable_bytes = 4 << 20;  // no flush interference
  auto store_or = LsmStore::Open(opts);
  ASSERT_TRUE(store_or.ok());
  LsmStore* store = store_or->get();

  auto* hist =
      obs::Registry::Global().GetHistogram("just_kv_group_commit_batch_ops");
  const uint64_t count_before = hist->Count();
  const uint64_t sum_before = hist->Sum();

  // A multi-op WriteBatch is at minimum one group of its own size.
  std::vector<WriteOp> batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back(WriteOp{"batch/k" + std::to_string(i),
                            "v" + std::to_string(i), false});
  }
  ASSERT_TRUE(store->WriteBatch(batch).ok());
  EXPECT_GE(hist->Count(), count_before + 1);
  EXPECT_GE(hist->Sum(), sum_before + 50);

  std::string value;
  ASSERT_TRUE(store->Get("batch/k49", &value).ok());
  EXPECT_EQ(value, "v49");

  // Batches are crash-atomic up to the synced prefix: after reopen, the
  // whole batch replays (it was one WAL append).
}

}  // namespace
}  // namespace just::kv
