#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/baseline.h"
#include "common/rng.h"
#include "test_util.h"

namespace just::baselines {
namespace {

using just::testing::TempDir;

std::vector<BaselineRecord> RandomRecords(int n, uint64_t seed,
                                          size_t payload = 0) {
  Rng rng(seed);
  TimestampMs base = ParseTimestamp("2018-10-01").value();
  std::vector<BaselineRecord> out;
  for (int i = 0; i < n; ++i) {
    BaselineRecord r;
    double lng = rng.Uniform(116.0, 117.0);
    double lat = rng.Uniform(39.0, 40.0);
    r.box = geo::Mbr::Of(lng, lat, lng, lat);
    r.t_min = r.t_max = base + static_cast<int64_t>(rng.Uniform(10)) *
                                   kMillisPerDay;
    r.id = static_cast<uint64_t>(i);
    r.payload_bytes = payload;
    out.push_back(r);
  }
  return out;
}

std::set<uint64_t> BruteForce(const std::vector<BaselineRecord>& records,
                              const geo::Mbr& box) {
  std::set<uint64_t> out;
  for (const auto& r : records) {
    if (r.box.Intersects(box)) out.insert(r.id);
  }
  return out;
}

class BaselineCorrectnessTest : public ::testing::TestWithParam<std::string> {
 protected:
  BaselineOptions FastOptions() {
    BaselineOptions opts;
    opts.mapreduce_job_cost_ms = 1;  // keep tests quick
    opts.scratch_dir = dir_.path();
    return opts;
  }

  TempDir dir_{"baseline"};
};

TEST_P(BaselineCorrectnessTest, SpatialRangeMatchesBruteForce) {
  auto system = MakeBaseline(GetParam(), FastOptions());
  ASSERT_TRUE(system.ok());
  auto records = RandomRecords(1500, 7);
  ASSERT_TRUE((*system)->BuildIndex(records).ok());
  Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    double lng = rng.Uniform(116.0, 116.8);
    double lat = rng.Uniform(39.0, 39.8);
    geo::Mbr box = geo::Mbr::Of(lng, lat, lng + 0.2, lat + 0.2);
    auto ids = (*system)->SpatialRange(box);
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
    std::set<uint64_t> got(ids->begin(), ids->end());
    EXPECT_EQ(got, BruteForce(records, box)) << GetParam();
  }
}

TEST_P(BaselineCorrectnessTest, KnnWorksOrIsUnsupported) {
  auto system = MakeBaseline(GetParam(), FastOptions());
  ASSERT_TRUE(system.ok());
  auto records = RandomRecords(800, 9);
  ASSERT_TRUE((*system)->BuildIndex(records).ok());
  geo::Point q{116.5, 39.5};
  auto ids = (*system)->Knn(q, 10);
  if (!(*system)->traits().knn) {
    EXPECT_EQ(ids.status().code(), StatusCode::kNotSupported);
    return;
  }
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids->size(), 10u);
  // Distances must match the true 10 nearest.
  std::vector<double> all;
  for (const auto& r : records) all.push_back(r.box.MinDistance(q));
  std::sort(all.begin(), all.end());
  std::vector<double> got;
  for (uint64_t id : *ids) got.push_back(records[id].box.MinDistance(q));
  std::sort(got.begin(), got.end());
  for (int i = 0; i < 10; ++i) EXPECT_NEAR(got[i], all[i], 1e-12);
}

TEST_P(BaselineCorrectnessTest, StRangeSupportMatchesTable6) {
  auto system = MakeBaseline(GetParam(), FastOptions());
  ASSERT_TRUE(system.ok());
  auto records = RandomRecords(500, 10);
  ASSERT_TRUE((*system)->BuildIndex(records).ok());
  TimestampMs base = ParseTimestamp("2018-10-01").value();
  auto ids = (*system)->StRange(geo::Mbr::Of(116, 39, 117, 40), base,
                                base + 3 * kMillisPerDay);
  if (!(*system)->traits().spatio_temporal) {
    EXPECT_EQ(ids.status().code(), StatusCode::kNotSupported);
    return;
  }
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  std::set<uint64_t> expected;
  for (const auto& r : records) {
    if (r.t_min <= base + 3 * kMillisPerDay && r.t_max >= base) {
      expected.insert(r.id);
    }
  }
  EXPECT_EQ(std::set<uint64_t>(ids->begin(), ids->end()), expected);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, BaselineCorrectnessTest,
                         ::testing::ValuesIn(BaselineNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           name.erase(std::remove(name.begin(), name.end(),
                                                  '-'),
                                      name.end());
                           return name;
                         });

TEST(BaselineOomTest, SparkLikesFailOnSmallBudget) {
  // The Section VIII observation: in-memory systems die when data exceeds
  // RAM; JUST (disk-based) keeps working. Payload bytes model Traj's GPS
  // lists.
  for (const char* name : {"Simba", "LocationSpark"}) {
    BaselineOptions opts;
    opts.memory_budget_bytes = 1 << 20;  // 1 MiB budget
    auto system = MakeBaseline(name, opts);
    ASSERT_TRUE(system.ok());
    auto big = RandomRecords(2000, 11, /*payload=*/4096);  // ~8 MB
    Status st = (*system)->BuildIndex(big);
    EXPECT_TRUE(st.IsResourceExhausted()) << name << ": " << st.ToString();
    // A small dataset still fits.
    auto small = RandomRecords(100, 12);
    EXPECT_TRUE((*system)->BuildIndex(small).ok()) << name;
  }
}

TEST(BaselineOomTest, LocationSparkOomsBeforeSimba) {
  // LocationSpark's heavier index structures exhaust memory at a smaller
  // data size (the paper: OOM "even for 20% of Traj" vs Simba's 40%).
  auto records = RandomRecords(1000, 13, /*payload=*/1024);
  size_t simba_need = 0, locationspark_need = 0;
  {
    auto simba = MakeBaseline("Simba", BaselineOptions());
    ASSERT_TRUE((*simba)->BuildIndex(records).ok());
    simba_need = (*simba)->MemoryUsage();
  }
  {
    auto ls = MakeBaseline("LocationSpark", BaselineOptions());
    ASSERT_TRUE((*ls)->BuildIndex(records).ok());
    locationspark_need = (*ls)->MemoryUsage();
  }
  EXPECT_GT(locationspark_need, simba_need);
}

TEST(BaselineTraitsTest, Table1FeatureMatrix) {
  // Spot-check Table I rows.
  auto simba = MakeBaseline("Simba", BaselineOptions());
  EXPECT_TRUE((*simba)->traits().sql);
  EXPECT_FALSE((*simba)->traits().scalable);
  EXPECT_FALSE((*simba)->traits().data_update);
  auto sthadoop = MakeBaseline("ST-Hadoop", BaselineOptions());
  EXPECT_TRUE((*sthadoop)->traits().scalable);
  EXPECT_TRUE((*sthadoop)->traits().spatio_temporal);
  auto geospark = MakeBaseline("GeoSpark", BaselineOptions());
  EXPECT_TRUE((*geospark)->traits().data_processing);
  EXPECT_TRUE((*geospark)->traits().non_point);
  EXPECT_FALSE((*geospark)->traits().sql);
  auto spatialspark = MakeBaseline("SpatialSpark", BaselineOptions());
  EXPECT_FALSE((*spatialspark)->traits().knn);
}

TEST(BaselineFactoryTest, UnknownNameRejected) {
  EXPECT_FALSE(MakeBaseline("Postgres", BaselineOptions()).ok());
  EXPECT_EQ(BaselineNames().size(), 6u);
}

}  // namespace
}  // namespace just::baselines
