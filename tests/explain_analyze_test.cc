// The EXPLAIN / EXPLAIN ANALYZE surface and its acceptance criterion: the
// per-operator counters printed in the annotated plan must equal the global
// registry's snapshot delta across the same query — both sides are fed by
// the same storage-layer call sites, so any drift is an attribution bug.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/justql.h"
#include "test_util.h"

namespace just::sql {
namespace {

using just::testing::TempDir;

// Sums every `<token><number>` occurrence in `text` (e.g. token
// " bytes_read=" over all span lines of an EXPLAIN ANALYZE rendering).
uint64_t SumToken(const std::string& text, const std::string& token) {
  uint64_t total = 0;
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    pos += token.size();
    uint64_t value = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      value = value * 10 + static_cast<uint64_t>(text[pos] - '0');
      ++pos;
    }
    total += value;
  }
  return total;
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("explain");
    core::EngineOptions options;
    options.data_dir = dir_->path();
    options.num_servers = 2;
    options.num_shards = 4;
    // A tiny block cache forces real block reads so bytes_read is non-zero.
    options.store.block_cache_bytes = 64 << 10;
    // Capture every statement in the slow-query log, silently.
    options.slow_query_threshold_us = 0;
    options.slow_query_log_to_stderr = false;
    auto engine = core::JustEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).value();

    meta::TableMeta table;
    table.user = "u";
    table.name = "orders";
    table.columns = {
        {"fid", exec::DataType::kString, true, "", ""},
        {"time", exec::DataType::kTimestamp, false, "", ""},
        {"geom", exec::DataType::kGeometry, false, "", ""},
    };
    table.indexes = {{curve::IndexType::kZ2, kMillisPerDay},
                     {curve::IndexType::kZ2T, kMillisPerDay}};
    ASSERT_TRUE(engine_->CreateTable(table).ok());

    TimestampMs base = ParseTimestamp("2018-10-01").value();
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
      exec::Row row = {
          exec::Value::String("o" + std::to_string(i)),
          exec::Value::Timestamp(base + (i % (3 * 24)) * kMillisPerHour),
          exec::Value::GeometryVal(geo::Geometry::MakePoint(
              {116.0 + rng.NextDouble(), 39.5 + rng.NextDouble()})),
      };
      ASSERT_TRUE(engine_->Insert("u", "orders", row).ok());
    }
    ASSERT_TRUE(engine_->Finalize().ok());
    ql_ = std::make_unique<JustQL>(engine_.get());
  }

  Result<QueryResult> Run(const std::string& sql) {
    return ql_->Execute("u", sql);
  }

  static constexpr const char* kStQuery =
      "SELECT fid FROM orders WHERE geom WITHIN "
      "st_makeMBR(116.0, 39.5, 116.5, 40.0) AND "
      "time BETWEEN '2018-10-01' AND '2018-10-02'";

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<core::JustEngine> engine_;
  std::unique_ptr<JustQL> ql_;
};

TEST_F(ExplainAnalyzeTest, PlainExplainPrintsOptimizedPlan) {
  auto r = Run(std::string("EXPLAIN ") + kStQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.num_rows(), 0u);
  EXPECT_NE(r->message.find("=== Optimized Logical Plan ==="),
            std::string::npos);
  EXPECT_NE(r->message.find("Scan"), std::string::npos);
  // No execution happened: no trace rendering.
  EXPECT_EQ(r->message.find("time="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, ExplainRejectsNonSelect) {
  EXPECT_FALSE(Run("EXPLAIN DROP TABLE orders").ok());
  EXPECT_FALSE(Run("EXPLAIN ANALYZE INSERT INTO orders VALUES ('x')").ok());
}

TEST_F(ExplainAnalyzeTest, AnalyzePrintsAnnotatedSpanTree) {
  auto r = Run(std::string("EXPLAIN ANALYZE ") + kStQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->frame.num_rows(), 0u);
  const std::string& msg = r->message;
  EXPECT_NE(msg.find("=== EXPLAIN ANALYZE ==="), std::string::npos);
  EXPECT_NE(msg.find("Query"), std::string::npos);
  EXPECT_NE(msg.find("Scan orders access=st_range"), std::string::npos);
  EXPECT_NE(msg.find("cluster.ParallelScan"), std::string::npos);
  EXPECT_NE(msg.find("time="), std::string::npos);
  // The root reports the rows the statement returned.
  EXPECT_NE(msg.find(" rows=" + std::to_string(r->frame.num_rows())),
            std::string::npos);
}

// The acceptance criterion: the counters EXPLAIN ANALYZE prints equal the
// registry delta across the same query.
TEST_F(ExplainAnalyzeTest, AnalyzeCountersMatchRegistryDelta) {
  auto& registry = obs::Registry::Global();
  obs::RegistrySnapshot before = registry.GetSnapshot();
  auto r = Run(std::string("EXPLAIN ANALYZE ") + kStQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  obs::RegistrySnapshot after = registry.GetSnapshot();
  const std::string& msg = r->message;

  auto delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };

  // Storage attribution: every SSTable read increments the store's IoStats
  // (surfaced through registry sources) and the active span at the same
  // call site.
  EXPECT_GT(delta("just_kv_bytes_read_total"), 0u);
  EXPECT_EQ(SumToken(msg, " bytes_read="), delta("just_kv_bytes_read_total"));
  EXPECT_EQ(SumToken(msg, " read_ops="), delta("just_kv_read_ops_total"));
  EXPECT_EQ(SumToken(msg, " cache_hits="),
            delta("just_kv_block_cache_hits_total"));
  EXPECT_EQ(SumToken(msg, " cache_misses="),
            delta("just_kv_block_cache_misses_total"));
  EXPECT_EQ(SumToken(msg, " bloom_prunes="),
            delta("just_kv_bloom_prunes_total"));
  EXPECT_EQ(SumToken(msg, " bloom_fallbacks="),
            delta("just_kv_bloom_fallbacks_total"));

  // Planner/refinement attribution.
  EXPECT_EQ(SumToken(msg, " rows_scanned="),
            delta("just_query_rows_scanned_total"));
  EXPECT_EQ(SumToken(msg, " rows_matched="),
            delta("just_query_rows_matched_total"));
  uint64_t ranges = delta("just_query_key_ranges_total");
  EXPECT_GT(ranges, 0u);
  // "ranges=" appears both as the ParallelScan attribute and as the scan
  // span's counter; check the printed value rather than the sum.
  EXPECT_NE(msg.find(" ranges=" + std::to_string(ranges)),
            std::string::npos);

  // The statement itself was counted and timed.
  EXPECT_EQ(delta("just_sql_statements_total"), 1u);
  EXPECT_EQ(after.histograms["just_sql_statement_us"].count -
                before.histograms["just_sql_statement_us"].count,
            1u);
}

// The columnar path's EXPLAIN surface: per-stage batch counts plus the
// predicate-program evaluation mode and its specialized-vs-interpreted time.
TEST_F(ExplainAnalyzeTest, AnalyzeShowsBatchCountsAndEvalMode) {
  // fid != 'o1' is a residual conjunct with a specialized string kernel.
  auto r = Run(
      "EXPLAIN ANALYZE SELECT fid FROM orders WHERE geom WITHIN "
      "st_makeMBR(116.0, 39.5, 116.5, 40.0) AND fid != 'o1'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string& msg = r->message;
  EXPECT_GT(SumToken(msg, " batches="), 0u) << msg;
  EXPECT_NE(msg.find("eval_mode=specialized"), std::string::npos) << msg;

  // A function-call conjunct has no specialized kernel: the program runs it
  // through the interpreted fallback and reports the time there.
  auto r2 = Run(
      "EXPLAIN ANALYZE SELECT fid FROM orders WHERE "
      "st_distance(geom, st_makePoint(116.2, 39.8)) < 0.3");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  const std::string& msg2 = r2->message;
  EXPECT_NE(msg2.find("eval_mode=interpreted"), std::string::npos) << msg2;
  EXPECT_GT(SumToken(msg2, " eval_interpreted_us="), 0u) << msg2;
}

TEST_F(ExplainAnalyzeTest, SlowQueryLogCapturesStatements) {
  ASSERT_NE(engine_->slow_query_log(), nullptr);
  size_t before = engine_->slow_query_log()->size();
  auto r = Run(kStQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto entries = engine_->slow_query_log()->Entries();
  ASSERT_GT(entries.size(), before);
  const auto& entry = entries.back();
  EXPECT_EQ(entry.user, "u");
  EXPECT_EQ(entry.sql, kStQuery);
  EXPECT_EQ(entry.rows, r->frame.num_rows());
  EXPECT_GT(entry.rows_scanned, 0u);
  EXPECT_GT(entry.key_ranges, 0u);
}

TEST_F(ExplainAnalyzeTest, TracingLeavesNoResidue) {
  ASSERT_TRUE(Run(std::string("EXPLAIN ANALYZE ") + kStQuery).ok());
  // After the statement returns, the thread has no dangling current span;
  // plain queries must not crash or mis-attribute.
  EXPECT_EQ(obs::CurrentSpan(), nullptr);
  auto r = Run(kStQuery);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->frame.num_rows(), 0u);
}

}  // namespace
}  // namespace just::sql
