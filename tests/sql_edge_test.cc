// Edge cases and failure-path tests for the SQL layer: analyzer rejections,
// type errors, odd-but-legal syntax, optimizer safety (no pushdown through
// computed columns), and function misuse.

#include <gtest/gtest.h>

#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/justql.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace just::sql {
namespace {

using just::testing::TempDir;

class SqlEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("sql_edge");
    core::EngineOptions options;
    options.data_dir = dir_->path();
    options.num_servers = 1;
    options.num_shards = 2;
    auto engine = core::JustEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).value();
    ql_ = std::make_unique<JustQL>(engine_.get());
    ASSERT_TRUE(ql_->Execute("u",
                             "CREATE TABLE t (fid string:primary key, "
                             "n integer, time date, geom point)")
                    .ok());
    ASSERT_TRUE(ql_->Execute("u",
                             "INSERT INTO t VALUES "
                             "('a', 1, '2018-10-01 00:00:00', "
                             "st_makePoint(116.4, 39.9)), "
                             "('b', 2, '2018-10-02 00:00:00', "
                             "st_makePoint(116.5, 39.8))")
                    .ok());
  }

  Result<QueryResult> Run(const std::string& sql) {
    return ql_->Execute("u", sql);
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<core::JustEngine> engine_;
  std::unique_ptr<JustQL> ql_;
};

// --- analyzer rejections ---

TEST_F(SqlEdgeTest, UnknownColumnRejectedEverywhere) {
  EXPECT_FALSE(Run("SELECT ghost FROM t").ok());
  EXPECT_FALSE(Run("SELECT fid FROM t WHERE ghost = 1").ok());
  EXPECT_FALSE(Run("SELECT fid FROM t ORDER BY ghost").ok());
  EXPECT_FALSE(Run("SELECT ghost, count(*) c FROM t GROUP BY ghost").ok());
}

TEST_F(SqlEdgeTest, UnknownTableAndFunction) {
  EXPECT_TRUE(Run("SELECT * FROM nope").status().IsNotFound());
  EXPECT_FALSE(Run("SELECT st_imaginary(fid) FROM t").ok());
}

TEST_F(SqlEdgeTest, NonBooleanWhereRejected) {
  EXPECT_FALSE(Run("SELECT fid FROM t WHERE n + 1").ok());
}

TEST_F(SqlEdgeTest, NonGroupedColumnRejected) {
  EXPECT_FALSE(Run("SELECT fid, count(*) c FROM t GROUP BY n").ok());
}

TEST_F(SqlEdgeTest, TableFunctionMustBeAlone) {
  ASSERT_TRUE(Run("CREATE TABLE traj AS trajectory").ok());
  EXPECT_FALSE(Run("SELECT st_trajNoiseFilter(item), tid FROM traj").ok());
}

// --- odd but legal ---

TEST_F(SqlEdgeTest, KeywordsAndColumnsAreCaseInsensitive) {
  // Table names stay case-sensitive (they are namespace entries, as in
  // HBase); keywords and column references are not.
  auto r = Run("select FID from t where N = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.num_rows(), 1u);
  EXPECT_TRUE(Run("select fid from T").status().IsNotFound());
}

TEST_F(SqlEdgeTest, TrailingSemicolonAndComments) {
  auto r = Run("SELECT fid FROM t -- trailing comment\n;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.num_rows(), 2u);
}

TEST_F(SqlEdgeTest, LimitZeroAndHugeLimit) {
  EXPECT_EQ(Run("SELECT fid FROM t LIMIT 0")->frame.num_rows(), 0u);
  EXPECT_EQ(Run("SELECT fid FROM t LIMIT 9999")->frame.num_rows(), 2u);
}

TEST_F(SqlEdgeTest, ArithmeticPrecedence) {
  auto r = Run("SELECT fid FROM t WHERE n = 8 - 3 * 2 - 1");  // n = 1
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->frame.num_rows(), 1u);
  EXPECT_EQ(r->frame.rows()[0][0].string_value(), "a");
  auto r2 = Run("SELECT fid FROM t WHERE n = (8 - 3) * (2 - 1) - 3");  // 2
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->frame.rows()[0][0].string_value(), "b");
}

TEST_F(SqlEdgeTest, UnaryMinus) {
  auto r = Run("SELECT fid FROM t WHERE n = -1 + 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.num_rows(), 1u);
}

TEST_F(SqlEdgeTest, BetweenOnStringsAndDates) {
  auto r = Run("SELECT fid FROM t WHERE fid BETWEEN 'a' AND 'a'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->frame.num_rows(), 1u);
  auto r2 = Run(
      "SELECT fid FROM t WHERE time BETWEEN '2018-10-01' AND "
      "'2018-10-01 23:59:59'");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->frame.num_rows(), 1u);
}

TEST_F(SqlEdgeTest, DivisionByZeroIsAnError) {
  EXPECT_FALSE(Run("SELECT fid FROM t WHERE n = 1 / 0").ok());
}

TEST_F(SqlEdgeTest, EmptyTableQueries) {
  ASSERT_TRUE(Run("CREATE TABLE empty (fid string:primary key, time date, "
                  "geom point)")
                  .ok());
  EXPECT_EQ(Run("SELECT * FROM empty")->frame.num_rows(), 0u);
  EXPECT_EQ(Run("SELECT count(*) c FROM empty")->frame.rows()[0][0]
                .int_value(),
            0);
  auto knn = Run(
      "SELECT fid FROM empty WHERE geom IN "
      "st_KNN(st_makePoint(116.4, 39.9), 5)");
  ASSERT_TRUE(knn.ok()) << knn.status().ToString();
  EXPECT_EQ(knn->frame.num_rows(), 0u);
}

TEST_F(SqlEdgeTest, KnnWithMoreKThanRows) {
  auto r = Run(
      "SELECT fid FROM t WHERE geom IN st_KNN(st_makePoint(116.4, 39.9), "
      "100)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.num_rows(), 2u);  // all rows, gracefully
}

TEST_F(SqlEdgeTest, SelectLiteralOnly) {
  auto r = Run("SELECT 1 + 1 AS two FROM t LIMIT 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.rows()[0][0].int_value(), 2);
}

// --- optimizer safety ---

TEST_F(SqlEdgeTest, NoPushdownThroughComputedColumns) {
  // The filter references a computed alias: pushing it below the project
  // would break; the optimizer must keep it above, and the query must
  // still be correct.
  auto r = Run(
      "SELECT fid FROM (SELECT fid, n * 10 AS big FROM t) x "
      "WHERE big = 20");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->frame.num_rows(), 1u);
  EXPECT_EQ(r->frame.rows()[0][0].string_value(), "b");
}

TEST_F(SqlEdgeTest, AliasRenamePushdownStillCorrect) {
  auto r = Run(
      "SELECT renamed FROM (SELECT fid AS renamed, geom FROM t) x "
      "WHERE geom WITHIN st_makeMBR(116.0, 39.0, 116.45, 40.0)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->frame.num_rows(), 1u);
  EXPECT_EQ(r->frame.rows()[0][0].string_value(), "a");
}

TEST_F(SqlEdgeTest, DoubleNestedSubqueries) {
  auto r = Run(
      "SELECT fid FROM (SELECT * FROM (SELECT * FROM t) a) b WHERE n = 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.num_rows(), 1u);
}

TEST_F(SqlEdgeTest, OrPredicateNotPushedAsIndexQuery) {
  // OR between spatial and attribute predicates cannot use the index alone;
  // results must still be exact.
  auto r = Run(
      "SELECT fid FROM t WHERE geom WITHIN "
      "st_makeMBR(116.45, 39.75, 116.55, 39.85) OR n = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->frame.num_rows(), 2u);  // 'b' spatially, 'a' by n
}

// --- DDL edges ---

TEST_F(SqlEdgeTest, BadUserdataRejected) {
  EXPECT_FALSE(Run("CREATE TABLE bad (fid string:primary key, time date, "
                   "geom point) USERDATA {'geomesa.indices.enabled':'rtree'}")
                   .ok());
  EXPECT_FALSE(Run("CREATE TABLE bad2 (fid string:primary key, time date, "
                   "geom point) USERDATA {'just.period':'fortnight'}")
                   .ok());
}

TEST_F(SqlEdgeTest, InsertWidthMismatch) {
  EXPECT_FALSE(Run("INSERT INTO t VALUES ('only-one-value')").ok());
}

TEST_F(SqlEdgeTest, InsertTypeCoercionDateString) {
  ASSERT_TRUE(Run("INSERT INTO t VALUES ('c', 3, '2018-10-03', "
                  "st_makePoint(116.6, 39.7))")
                  .ok());
  auto r = Run("SELECT time FROM t WHERE fid = 'c'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->frame.num_rows(), 1u);
  EXPECT_EQ(r->frame.rows()[0][0].type(), exec::DataType::kTimestamp);
}

TEST_F(SqlEdgeTest, LoadUnsupportedSourceExplains) {
  Status st =
      Run("LOAD hive:db.tbl TO geomesa:t CONFIG {'fid': 'x'}").status();
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
  EXPECT_NE(st.message().find("csv"), std::string::npos);
}

}  // namespace
}  // namespace just::sql
