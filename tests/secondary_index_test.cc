// Tests for hybrid secondary indexing (CREATE INDEX): DDL round-trips,
// covering point/range lookups, curve-intersection access-path selection,
// write-path index maintenance (tombstones ride the same group-commit
// batch), the online non-blocking build protocol, crash/fault recovery,
// and the two rider bugfixes (LIMIT scan budgets, plan-cache invalidation
// across DDL).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "kvstore/fault_env.h"
#include "obs/metrics.h"
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/justql.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/predicate_program.h"
#include "test_util.h"

namespace just::core {
namespace {

using just::testing::TempDir;

uint64_t CounterValue(const std::string& name) {
  return obs::Registry::Global().GetCounter(name)->Value();
}

/// Parse -> analyze -> optimize -> execute, surfacing QueryStats (JustQL's
/// public Execute has no stats out-param).
Result<exec::DataFrame> RunSelect(JustEngine* engine, const std::string& sql,
                                  QueryStats* stats = nullptr) {
  sql::Analyzer analyzer(engine, "u");
  JUST_ASSIGN_OR_RETURN(auto stmt, sql::ParseStatement(sql));
  JUST_ASSIGN_OR_RETURN(auto plan, analyzer.Analyze(*stmt.select));
  JUST_ASSIGN_OR_RETURN(plan, sql::Optimize(std::move(plan)));
  sql::Executor executor(engine, "u");
  return executor.Execute(*plan, stats);
}

std::multiset<std::string> FidSet(const exec::DataFrame& frame, int col = 0) {
  std::multiset<std::string> fids;
  for (const auto& row : frame.rows()) {
    fids.insert(row[static_cast<size_t>(col)].string_value());
  }
  return fids;
}

class SecondaryIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("secidx");
    OpenEngine();

    meta::TableMeta table;
    table.user = "u";
    table.name = "orders";
    table.columns = {
        {"fid", exec::DataType::kString, true, "", ""},
        {"courier", exec::DataType::kString, false, "", ""},
        {"amount", exec::DataType::kInt, false, "", ""},
        {"time", exec::DataType::kTimestamp, false, "", ""},
        {"geom", exec::DataType::kGeometry, false, "", ""},
    };
    ASSERT_TRUE(engine_->CreateTable(table).ok());

    TimestampMs base = ParseTimestamp("2018-10-01").value();
    Rng rng(7);
    std::vector<exec::Row> rows;
    for (int i = 0; i < 400; ++i) {
      rows.push_back({
          exec::Value::String("o" + std::to_string(i)),
          exec::Value::String("c" + std::to_string(i % 20)),
          exec::Value::Int(i % 50),
          exec::Value::Timestamp(base + i * kMillisPerMinute),
          exec::Value::GeometryVal(geo::Geometry::MakePoint(
              {116.0 + rng.NextDouble(), 39.5 + rng.NextDouble()})),
      });
    }
    ASSERT_TRUE(engine_->InsertBatch("u", "orders", rows).ok());
    ASSERT_TRUE(engine_->Finalize().ok());
  }

  void OpenEngine() {
    EngineOptions options;
    options.data_dir = dir_->path();
    options.num_servers = 2;
    options.num_shards = 4;
    auto engine = JustEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<JustEngine> engine_;
};

// --- DDL -----------------------------------------------------------------

TEST_F(SecondaryIndexTest, CreateAndDropIndexSql) {
  sql::JustQL ql(engine_.get());
  auto created = ql.Execute("u", "CREATE INDEX idx_courier ON orders (courier)");
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  auto described = engine_->DescribeTable("u", "orders");
  ASSERT_TRUE(described.ok());
  ASSERT_EQ(described->secondary_indexes.size(), 1u);
  EXPECT_EQ(described->secondary_indexes[0].name, "idx_courier");
  EXPECT_EQ(described->secondary_indexes[0].column, "courier");
  EXPECT_EQ(described->secondary_indexes[0].state, meta::IndexState::kReady);

  // Duplicate names and unknown columns are rejected.
  EXPECT_FALSE(
      ql.Execute("u", "CREATE INDEX idx_courier ON orders (amount)").ok());
  EXPECT_FALSE(
      ql.Execute("u", "CREATE INDEX idx_nope ON orders (no_such_col)").ok());

  auto dropped = ql.Execute("u", "DROP INDEX idx_courier ON orders");
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  described = engine_->DescribeTable("u", "orders");
  ASSERT_TRUE(described.ok());
  EXPECT_TRUE(described->secondary_indexes.empty());
  EXPECT_FALSE(ql.Execute("u", "DROP INDEX idx_courier ON orders").ok());
}

// --- Lookup correctness --------------------------------------------------

TEST_F(SecondaryIndexTest, PointLookupMatchesFullScanAndReadsOnlyMatches) {
  const std::string q = "SELECT fid FROM orders WHERE courier = 'c7'";
  auto before = RunSelect(engine_.get(), q);  // pre-index: full scan path
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->num_rows(), 20u);

  ASSERT_TRUE(engine_->CreateIndex("u", "orders", "idx_c", "courier").ok());
  QueryStats stats;
  auto after = RunSelect(engine_.get(), q, &stats);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(FidSet(*after), FidSet(*before));
  // Covering index: only the matching entries are read, not the table.
  EXPECT_EQ(stats.rows_scanned, 20u);
}

TEST_F(SecondaryIndexTest, RangeLookupsMatchFullScan) {
  const std::string gt = "SELECT fid FROM orders WHERE amount > 44";
  const std::string between =
      "SELECT fid FROM orders WHERE amount BETWEEN 10 AND 12";
  auto gt_before = RunSelect(engine_.get(), gt);
  auto between_before = RunSelect(engine_.get(), between);
  ASSERT_TRUE(gt_before.ok());
  ASSERT_TRUE(between_before.ok());
  ASSERT_EQ(gt_before->num_rows(), 40u);   // amounts 45..49, 8 rows each
  ASSERT_EQ(between_before->num_rows(), 24u);

  ASSERT_TRUE(engine_->CreateIndex("u", "orders", "idx_a", "amount").ok());
  QueryStats stats;
  auto gt_after = RunSelect(engine_.get(), gt, &stats);
  ASSERT_TRUE(gt_after.ok());
  EXPECT_EQ(FidSet(*gt_after), FidSet(*gt_before));
  EXPECT_EQ(stats.rows_scanned, 40u);  // the order-preserving key range

  auto between_after = RunSelect(engine_.get(), between);
  ASSERT_TRUE(between_after.ok());
  EXPECT_EQ(FidSet(*between_after), FidSet(*between_before));
}

TEST_F(SecondaryIndexTest, CoveringLookupReturnsFullRows) {
  ASSERT_TRUE(engine_->CreateIndex("u", "orders", "idx_c", "courier").ok());
  auto frame = RunSelect(engine_.get(),
                         "SELECT * FROM orders WHERE courier = 'c3'");
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->num_rows(), 20u);
  for (const auto& row : frame->rows()) {
    int i = std::stoi(row[0].string_value().substr(1));
    EXPECT_EQ(i % 20, 3);
    EXPECT_EQ(row[1].string_value(), "c3");
    EXPECT_EQ(row[2].int_value(), i % 50);  // entries cover every column
  }
}

// --- Access-path selection (EXPLAIN) -------------------------------------

TEST_F(SecondaryIndexTest, ExplainShowsChosenAccessPath) {
  sql::JustQL ql(engine_.get());
  constexpr const char* kBoxed =
      "SELECT fid FROM orders WHERE courier = 'c7' AND geom WITHIN "
      "st_makeMBR(116.0, 39.5, 116.5, 40.5)";

  // Before the index exists the spatial curve drives.
  auto plan = ql.ExplainSelect("u", kBoxed);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("access: spatial_range"), std::string::npos) << *plan;

  ASSERT_TRUE(engine_->CreateIndex("u", "orders", "idx_c", "courier").ok());
  plan = ql.ExplainSelect("u", "SELECT fid FROM orders WHERE courier = 'c7'");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("access: secondary_index"), std::string::npos) << *plan;

  // 20 index entries is far below the intersection threshold: the index
  // drives and the box refines the covering values.
  plan = ql.ExplainSelect("u", kBoxed);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("access: index_intersection"), std::string::npos)
      << *plan;

  plan = ql.ExplainSelect("u", "SELECT fid FROM orders");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("access: full_scan"), std::string::npos) << *plan;
}

TEST_F(SecondaryIndexTest, IntersectionMatchesPreIndexResult) {
  constexpr const char* kBoxed =
      "SELECT fid FROM orders WHERE courier = 'c3' AND geom WITHIN "
      "st_makeMBR(116.0, 39.5, 116.5, 40.5)";
  auto before = RunSelect(engine_.get(), kBoxed);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before->num_rows(), 0u);
  ASSERT_LT(before->num_rows(), 20u);  // the box must actually cut

  ASSERT_TRUE(engine_->CreateIndex("u", "orders", "idx_c", "courier").ok());
  uint64_t intersections = CounterValue("just_idx_intersections_total");
  QueryStats stats;
  auto after = RunSelect(engine_.get(), kBoxed, &stats);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(FidSet(*after), FidSet(*before));
  // The index drove: only its 20 entries were read, not a curve range.
  EXPECT_EQ(stats.rows_scanned, 20u);
  EXPECT_GT(CounterValue("just_idx_intersections_total"), intersections);
}

TEST_F(SecondaryIndexTest, UnselectiveIndexDemotesToCurveScan) {
  // With the intersection threshold at zero the cardinality probe always
  // says "too wide": the curve index must drive and the attribute bound
  // becomes residual refinement — same rows, different path.
  TempDir dir("secidx_demote");
  EngineOptions options;
  options.data_dir = dir.path();
  options.num_servers = 2;
  options.num_shards = 4;
  options.index_intersection_threshold = 0;
  auto engine = JustEngine::Open(options);
  ASSERT_TRUE(engine.ok());

  meta::TableMeta table;
  table.user = "u";
  table.name = "orders";
  table.columns = {
      {"fid", exec::DataType::kString, true, "", ""},
      {"courier", exec::DataType::kString, false, "", ""},
      {"time", exec::DataType::kTimestamp, false, "", ""},
      {"geom", exec::DataType::kGeometry, false, "", ""},
  };
  ASSERT_TRUE((*engine)->CreateTable(table).ok());
  TimestampMs base = ParseTimestamp("2018-10-01").value();
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    exec::Row row = {
        exec::Value::String("o" + std::to_string(i)),
        exec::Value::String("c" + std::to_string(i % 3)),
        exec::Value::Timestamp(base + i * kMillisPerMinute),
        exec::Value::GeometryVal(geo::Geometry::MakePoint(
            {116.0 + rng.NextDouble(), 39.5 + rng.NextDouble()})),
    };
    ASSERT_TRUE((*engine)->Insert("u", "orders", row).ok());
  }
  ASSERT_TRUE((*engine)->Finalize().ok());
  ASSERT_TRUE((*engine)->CreateIndex("u", "orders", "idx_c", "courier").ok());

  sql::JustQL ql(engine->get());
  constexpr const char* kBoxed =
      "SELECT fid FROM orders WHERE courier = 'c1' AND geom WITHIN "
      "st_makeMBR(116.0, 39.5, 117.5, 41.0)";
  auto plan = ql.ExplainSelect("u", kBoxed);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("access: spatial_range"), std::string::npos) << *plan;
  auto frame = ql.Execute("u", kBoxed);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->frame.num_rows(), 20u);
}

// --- Write-path maintenance ----------------------------------------------

TEST_F(SecondaryIndexTest, DeleteTombstonesIndexEntriesInSameBatch) {
  ASSERT_TRUE(engine_->CreateIndex("u", "orders", "idx_c", "courier").ok());
  auto full = engine_->FullScan("u", "orders");
  ASSERT_TRUE(full.ok());
  exec::Row doomed;
  for (const auto& row : full->rows()) {
    if (row[0].string_value() == "o7") doomed = row;
  }
  ASSERT_EQ(doomed.size(), 5u);
  ASSERT_TRUE(engine_->Remove("u", "orders", doomed).ok());

  // The tombstone rode the same group-commit batch as the base-row delete:
  // an index lookup immediately after must not resurrect the row.
  auto frame = RunSelect(engine_.get(),
                         "SELECT fid FROM orders WHERE courier = 'c7'");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 19u);
  EXPECT_EQ(FidSet(*frame).count("o7"), 0u);
}

TEST_F(SecondaryIndexTest, ReplaceRetiresStaleIndexEntry) {
  ASSERT_TRUE(engine_->CreateIndex("u", "orders", "idx_c", "courier").ok());
  auto full = engine_->FullScan("u", "orders");
  ASSERT_TRUE(full.ok());
  exec::Row old_row;
  for (const auto& row : full->rows()) {
    if (row[0].string_value() == "o1") old_row = row;
  }
  ASSERT_EQ(old_row.size(), 5u);
  exec::Row new_row = old_row;
  new_row[1] = exec::Value::String("zz");
  ASSERT_TRUE(engine_->Replace("u", "orders", old_row, new_row).ok());

  auto stale = RunSelect(engine_.get(),
                         "SELECT fid FROM orders WHERE courier = 'c1'");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->num_rows(), 19u);
  EXPECT_EQ(FidSet(*stale).count("o1"), 0u);

  auto fresh = RunSelect(engine_.get(),
                         "SELECT fid FROM orders WHERE courier = 'zz'");
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->num_rows(), 1u);
  EXPECT_EQ(fresh->rows()[0][0].string_value(), "o1");
}

// --- Online, non-blocking build ------------------------------------------

TEST_F(SecondaryIndexTest, ConcurrentWritersAreNeverBlockedAndIndexIsExact) {
  // A writer hammers Puts while CREATE INDEX backfills. Every Put must
  // succeed (the build never blocks writers), and the finished index must
  // agree exactly with a post-hoc scan of the base table: backfilled rows,
  // rows dual-written during the build, and rows replayed from the
  // catch-up journal are all indistinguishable.
  std::atomic<bool> writer_ok{true};
  std::thread writer([&] {
    TimestampMs base = ParseTimestamp("2018-10-02").value();
    Rng rng(23);
    for (int i = 0; i < 300; ++i) {
      exec::Row row = {
          exec::Value::String("w" + std::to_string(i)),
          exec::Value::String("c" + std::to_string(i % 20)),
          exec::Value::Int(i % 50),
          exec::Value::Timestamp(base + i * kMillisPerMinute),
          exec::Value::GeometryVal(geo::Geometry::MakePoint(
              {116.0 + rng.NextDouble(), 39.5 + rng.NextDouble()})),
      };
      if (!engine_->Insert("u", "orders", row).ok()) {
        writer_ok.store(false);
        return;
      }
    }
  });
  Status built = engine_->CreateIndex("u", "orders", "idx_c", "courier");
  writer.join();
  ASSERT_TRUE(built.ok()) << built.ToString();
  ASSERT_TRUE(writer_ok.load()) << "a Put failed during the online build";

  auto full = engine_->FullScan("u", "orders");
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->num_rows(), 700u);
  for (int c = 0; c < 20; ++c) {
    std::string courier = "c" + std::to_string(c);
    std::multiset<std::string> oracle;
    for (const auto& row : full->rows()) {
      if (row[1].string_value() == courier) {
        oracle.insert(row[0].string_value());
      }
    }
    QueryStats stats;
    auto frame = RunSelect(
        engine_.get(), "SELECT fid FROM orders WHERE courier = '" + courier +
                           "'", &stats);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(FidSet(*frame), oracle) << courier;
    EXPECT_EQ(stats.rows_scanned, oracle.size()) << courier;
  }
}

// --- Persistence and crash recovery --------------------------------------

TEST_F(SecondaryIndexTest, ReadyIndexSurvivesReopen) {
  ASSERT_TRUE(engine_->CreateIndex("u", "orders", "idx_c", "courier").ok());
  ASSERT_TRUE(engine_->Finalize().ok());
  engine_.reset();
  OpenEngine();

  auto described = engine_->DescribeTable("u", "orders");
  ASSERT_TRUE(described.ok());
  const meta::SecondaryIndexDef* def = described->FindSecondaryIndex("idx_c");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->state, meta::IndexState::kReady);

  QueryStats stats;
  auto frame = RunSelect(engine_.get(),
                         "SELECT fid FROM orders WHERE courier = 'c7'", &stats);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 20u);
  EXPECT_EQ(stats.rows_scanned, 20u);
}

TEST_F(SecondaryIndexTest, LeftoverBuildingIndexIsDroppedOnOpen) {
  // Simulate a process that died mid-build: a `building` catalog entry with
  // no living journal. Open() must drop it; CREATE INDEX can then be rerun.
  auto described = engine_->DescribeTable("u", "orders");
  ASSERT_TRUE(described.ok());
  meta::SecondaryIndexDef def;
  def.name = "idx_zombie";
  def.column = "courier";
  def.slot = std::max<uint32_t>(
      static_cast<uint32_t>(described->indexes.size() +
                            described->attr_indexes.size()),
      described->next_index_slot);
  def.state = meta::IndexState::kBuilding;
  ASSERT_TRUE(engine_->catalog()->AddIndex("u", "orders", def).ok());
  ASSERT_TRUE(engine_->Finalize().ok());
  engine_.reset();
  OpenEngine();

  described = engine_->DescribeTable("u", "orders");
  ASSERT_TRUE(described.ok());
  EXPECT_EQ(described->FindSecondaryIndex("idx_zombie"), nullptr);
  ASSERT_TRUE(engine_->CreateIndex("u", "orders", "idx_zombie", "courier").ok());
  auto frame = RunSelect(engine_.get(),
                         "SELECT fid FROM orders WHERE courier = 'c0'");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 20u);
}

// --- Observability -------------------------------------------------------

TEST_F(SecondaryIndexTest, CountersAdvanceThroughTheIndexLifecycle) {
  uint64_t build = CounterValue("just_idx_build_rows_total");
  uint64_t written = CounterValue("just_idx_entries_written_total");
  uint64_t lookups = CounterValue("just_idx_lookups_total");

  ASSERT_TRUE(engine_->CreateIndex("u", "orders", "idx_c", "courier").ok());
  EXPECT_GE(CounterValue("just_idx_build_rows_total"), build + 400);

  TimestampMs base = ParseTimestamp("2018-10-03").value();
  exec::Row row = {
      exec::Value::String("extra"),
      exec::Value::String("c0"),
      exec::Value::Int(1),
      exec::Value::Timestamp(base),
      exec::Value::GeometryVal(geo::Geometry::MakePoint({116.5, 40.0})),
  };
  ASSERT_TRUE(engine_->Insert("u", "orders", row).ok());
  EXPECT_GT(CounterValue("just_idx_entries_written_total"), written);

  auto frame = RunSelect(engine_.get(),
                         "SELECT fid FROM orders WHERE courier = 'c0'");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 21u);
  EXPECT_GT(CounterValue("just_idx_lookups_total"), lookups);
}

// --- Bugfix regressions --------------------------------------------------

TEST_F(SecondaryIndexTest, PlanCacheInvalidatedByDdl) {
  // The compiled-predicate cache key folds in the table's catalog
  // generation. Dropping and recreating a table (same name, same schema)
  // or adding an index must not serve a stale program.
  meta::TableMeta table;
  table.user = "u";
  table.name = "t2";
  table.columns = {
      {"fid", exec::DataType::kString, true, "", ""},
      {"v", exec::DataType::kInt, false, "", ""},
      {"w", exec::DataType::kInt, false, "", ""},
      {"time", exec::DataType::kTimestamp, false, "", ""},
      {"geom", exec::DataType::kGeometry, false, "", ""},
  };
  TimestampMs base = ParseTimestamp("2018-10-01").value();
  auto insert_rows = [&](int value_base) {
    for (int i = 0; i < 10; ++i) {
      exec::Row row = {
          exec::Value::String("r" + std::to_string(i)),
          exec::Value::Int(value_base + i),
          exec::Value::Int(i),
          exec::Value::Timestamp(base + i * kMillisPerMinute),
          exec::Value::GeometryVal(geo::Geometry::MakePoint({116.1, 39.9})),
      };
      ASSERT_TRUE(engine_->Insert("u", "t2", row).ok());
    }
  };
  ASSERT_TRUE(engine_->CreateTable(table).ok());
  insert_rows(0);  // v = 0..9
  ASSERT_TRUE(engine_->Finalize().ok());

  const std::string q = "SELECT fid FROM t2 WHERE v >= 5";
  auto frame = RunSelect(engine_.get(), q);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->num_rows(), 5u);

  // Warm: the same statement against the unchanged table is a cache hit.
  uint64_t misses = sql::PredicateProgramCache::Global().misses();
  frame = RunSelect(engine_.get(), q);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 5u);
  EXPECT_EQ(sql::PredicateProgramCache::Global().misses(), misses);

  // Drop + recreate with different data: same SQL text, same schema — the
  // generation-scoped key forces a recompile and the fresh rows win.
  ASSERT_TRUE(engine_->DropTable("u", "t2").ok());
  ASSERT_TRUE(engine_->CreateTable(table).ok());
  insert_rows(100);  // v = 100..109: all match now
  ASSERT_TRUE(engine_->Finalize().ok());
  frame = RunSelect(engine_.get(), q);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 10u);
  EXPECT_GT(sql::PredicateProgramCache::Global().misses(), misses);

  // CREATE INDEX bumps the generation too (on an unrelated column, so the
  // probe query still carries a compiled residual).
  misses = sql::PredicateProgramCache::Global().misses();
  ASSERT_TRUE(engine_->CreateIndex("u", "t2", "idx_w", "w").ok());
  frame = RunSelect(engine_.get(), q);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 10u);
  EXPECT_GT(sql::PredicateProgramCache::Global().misses(), misses);
}

TEST(SecondaryIndexLimitTest, LimitStopsScanningEarly) {
  // Regression for the LIMIT full-materialization bug: LIMIT 10 over a
  // 100k-row table must not scan anywhere near 100k rows.
  TempDir dir("secidx_limit");
  EngineOptions options;
  options.data_dir = dir.path();
  options.num_servers = 2;
  options.num_shards = 4;
  auto engine = JustEngine::Open(options);
  ASSERT_TRUE(engine.ok());

  meta::TableMeta table;
  table.user = "u";
  table.name = "big";
  table.columns = {
      {"fid", exec::DataType::kString, true, "", ""},
      {"amount", exec::DataType::kInt, false, "", ""},
      {"time", exec::DataType::kTimestamp, false, "", ""},
      {"geom", exec::DataType::kGeometry, false, "", ""},
  };
  ASSERT_TRUE((*engine)->CreateTable(table).ok());
  TimestampMs base = ParseTimestamp("2018-10-01").value();
  Rng rng(41);
  constexpr int kRows = 100000;
  std::vector<exec::Row> chunk;
  chunk.reserve(10000);
  for (int i = 0; i < kRows; ++i) {
    chunk.push_back({
        exec::Value::String("o" + std::to_string(i)),
        exec::Value::Int(i % 1000),
        exec::Value::Timestamp(base + (i % 100000) * 100),
        exec::Value::GeometryVal(geo::Geometry::MakePoint(
            {116.0 + rng.NextDouble(), 39.5 + rng.NextDouble()})),
    });
    if (chunk.size() == 10000) {
      ASSERT_TRUE((*engine)->InsertBatch("u", "big", chunk).ok());
      chunk.clear();
    }
  }
  ASSERT_TRUE((*engine)->Finalize().ok());

  {
    QueryStats stats;
    auto frame = RunSelect(engine->get(), "SELECT fid FROM big LIMIT 10",
                           &stats);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->num_rows(), 10u);
    EXPECT_LT(stats.rows_scanned, static_cast<size_t>(kRows) / 10)
        << "LIMIT did not stop the scan";
    EXPECT_GT(stats.rows_scanned, 0u);
  }
  {
    // With a residual predicate: the budget applies it per batch and still
    // stops early.
    QueryStats stats;
    auto frame = RunSelect(
        engine->get(), "SELECT fid FROM big WHERE amount >= 0 LIMIT 10",
        &stats);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->num_rows(), 10u);
    EXPECT_LT(stats.rows_scanned, static_cast<size_t>(kRows) / 10);
  }
  {
    // A LIMIT beyond the table must still return everything.
    auto frame = RunSelect(engine->get(),
                           "SELECT fid FROM big WHERE amount < 3 LIMIT 500");
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->num_rows(), 300u);
  }
}

// --- Storage-fault sweep -------------------------------------------------

TEST(SecondaryIndexFaultTest, OnlineBuildIsAtomicUnderDiskFaults) {
  // Inject storage faults at varied points of the online build — one-shot
  // (transient) and dead-disk — then reopen. In every outcome the index
  // must be atomic: either absent (rolled back / swept) or `ready` and
  // exactly matching the base table. Never half-built-but-queryable.
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    TempDir dir("secidx_fault" + std::to_string(round));
    kv::FaultInjectionEnv env;
    EngineOptions options;
    options.data_dir = dir.path();
    options.num_servers = 2;
    options.num_shards = 4;
    options.store.env = &env;
    options.index_build_batch_rows = 32;  // several batches -> several ops

    meta::TableMeta table;
    table.user = "u";
    table.name = "orders";
    table.columns = {
        {"fid", exec::DataType::kString, true, "", ""},
        {"courier", exec::DataType::kString, false, "", ""},
        {"time", exec::DataType::kTimestamp, false, "", ""},
        {"geom", exec::DataType::kGeometry, false, "", ""},
    };

    Status built;
    {
      auto engine = JustEngine::Open(options);
      ASSERT_TRUE(engine.ok());
      ASSERT_TRUE((*engine)->CreateTable(table).ok());
      TimestampMs base = ParseTimestamp("2018-10-01").value();
      Rng rng(100 + round);
      std::vector<exec::Row> rows;
      for (int i = 0; i < 160; ++i) {
        rows.push_back({
            exec::Value::String("o" + std::to_string(i)),
            exec::Value::String("c" + std::to_string(i % 4)),
            exec::Value::Timestamp(base + i * kMillisPerMinute),
            exec::Value::GeometryVal(geo::Geometry::MakePoint(
                {116.0 + rng.NextDouble(), 39.5 + rng.NextDouble()})),
        });
      }
      ASSERT_TRUE((*engine)->InsertBatch("u", "orders", rows).ok());
      ASSERT_TRUE((*engine)->Finalize().ok());

      env.FailWriteOp(env.write_ops() + 1 + round * 3,
                      /*all_after=*/round % 2 == 0);
      built = (*engine)->CreateIndex("u", "orders", "idx_c", "courier");
      env.ClearFaults();
    }

    auto engine = JustEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    auto described = (*engine)->DescribeTable("u", "orders");
    ASSERT_TRUE(described.ok());
    const meta::SecondaryIndexDef* def =
        described->FindSecondaryIndex("idx_c");
    if (def == nullptr) {
      EXPECT_FALSE(built.ok());
      // The build can simply be rerun on the recovered disk.
      ASSERT_TRUE(
          (*engine)->CreateIndex("u", "orders", "idx_c", "courier").ok());
    } else {
      EXPECT_EQ(def->state, meta::IndexState::kReady);
    }
    QueryStats stats;
    auto frame = RunSelect(engine->get(),
                           "SELECT fid FROM orders WHERE courier = 'c2'",
                           &stats);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->num_rows(), 40u);
    EXPECT_EQ(stats.rows_scanned, 40u);
  }
}

}  // namespace
}  // namespace just::core
