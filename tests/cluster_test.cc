#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "cluster/region_cluster.h"
#include "common/bytes.h"
#include "net_harness.h"
#include "test_util.h"

namespace just::cluster {
namespace {

using just::testing::ServerProcess;
using just::testing::TempDir;

std::string ShardKey(int shard, const std::string& rest) {
  std::string key(1, static_cast<char>(shard));
  return key + rest;
}

/// Runs the whole suite against both deployments of the cluster:
///  - "inproc": every region server is an LSM store in this process (the
///    historical single-binary mode);
///  - "socket": every region server is a real spawned `just_region_server`
///    process reached over the wire protocol.
/// Identical behaviour across the two is the point of the RegionBackend
/// seam, so the assertions are byte-for-byte the same.
class RegionClusterTest : public ::testing::TestWithParam<std::string> {
 protected:
  Result<std::unique_ptr<RegionCluster>> OpenCluster(int num_servers = 3) {
    dir_ = std::make_unique<TempDir>("cluster_" + GetParam());
    ClusterOptions opts;
    opts.dir = dir_->path();
    opts.num_servers = num_servers;
    opts.store.memtable_bytes = 32 << 10;
    if (GetParam() == "socket") {
      for (int i = 0; i < num_servers; ++i) {
        ServerProcess::Options po;
        po.dir = dir_->path() + "/rs" + std::to_string(i);
        std::filesystem::create_directories(po.dir);
        // No crash tests here, so skip the per-commit fsync; keep the tiny
        // memtable so flush/compaction paths run just like inproc.
        po.sync_wal = false;
        po.memtable_bytes = 32 << 10;
        auto server = std::make_unique<ServerProcess>(po);
        if (!server->Start()) {
          return Status::Internal("failed to start region server process");
        }
        opts.server_addrs.push_back(server->addr());
        servers_.push_back(std::move(server));
      }
    }
    return RegionCluster::Open(opts);
  }

  void TearDown() override {
    for (auto& server : servers_) server->Terminate();
    servers_.clear();
  }

  std::unique_ptr<TempDir> dir_;
  std::vector<std::unique_ptr<ServerProcess>> servers_;
};

TEST_P(RegionClusterTest, RoutesByShardByte) {
  auto cluster = OpenCluster();
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  for (int shard = 0; shard < 8; ++shard) {
    ASSERT_TRUE(
        (*cluster)->Put(ShardKey(shard, "key"), "v" + std::to_string(shard))
            .ok());
  }
  for (int shard = 0; shard < 8; ++shard) {
    std::string v;
    ASSERT_TRUE((*cluster)->Get(ShardKey(shard, "key"), &v).ok());
    EXPECT_EQ(v, "v" + std::to_string(shard));
  }
}

TEST_P(RegionClusterTest, ParallelScanHonorsRangeBounds) {
  auto cluster = OpenCluster();
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  // Shard 1: keys 000..099.
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%03d", i);
    ASSERT_TRUE((*cluster)->Put(ShardKey(1, buf), "v").ok());
  }
  std::vector<curve::KeyRange> ranges;
  curve::KeyRange r1{ShardKey(1, "010"), ShardKey(1, "020"), true};
  curve::KeyRange r2{ShardKey(1, "050"), ShardKey(1, "055"), false};
  ranges.push_back(r1);
  ranges.push_back(r2);
  auto results = (*cluster)->ParallelScan(ranges);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].rows.size(), 10u);
  EXPECT_TRUE((*results)[0].contained);
  EXPECT_EQ((*results)[1].rows.size(), 5u);
  EXPECT_FALSE((*results)[1].contained);
}

TEST_P(RegionClusterTest, ParallelScanManyRanges) {
  auto cluster = OpenCluster(4);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  for (int shard = 0; shard < 8; ++shard) {
    for (int i = 0; i < 50; ++i) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%03d", i);
      ASSERT_TRUE((*cluster)->Put(ShardKey(shard, buf), "v").ok());
    }
  }
  std::vector<curve::KeyRange> ranges;
  for (int shard = 0; shard < 8; ++shard) {
    ranges.push_back(curve::KeyRange{ShardKey(shard, "000"),
                                     ShardKey(shard, "025"), false});
  }
  auto results = (*cluster)->ParallelScan(ranges);
  ASSERT_TRUE(results.ok());
  size_t total = 0;
  for (const auto& rr : *results) total += rr.rows.size();
  EXPECT_EQ(total, 8u * 25u);
}

TEST_P(RegionClusterTest, WriteBatchRoutesAcrossServers) {
  auto cluster = OpenCluster();
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  std::vector<kv::WriteOp> ops;
  for (int shard = 0; shard < 8; ++shard) {
    for (int i = 0; i < 20; ++i) {
      ops.push_back(kv::WriteOp{ShardKey(shard, "b" + std::to_string(i)),
                                "v" + std::to_string(shard), false});
    }
  }
  ASSERT_TRUE((*cluster)->WriteBatch(std::move(ops)).ok());
  for (int shard = 0; shard < 8; ++shard) {
    std::string v;
    ASSERT_TRUE((*cluster)->Get(ShardKey(shard, "b0"), &v).ok());
    EXPECT_EQ(v, "v" + std::to_string(shard));
  }
}

TEST_P(RegionClusterTest, StatsAggregateAcrossServers) {
  auto cluster = OpenCluster();
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  for (int shard = 0; shard < 6; ++shard) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*cluster)
                      ->Put(ShardKey(shard, "key" + std::to_string(i)),
                            std::string(100, 'x'))
                      .ok());
    }
  }
  ASSERT_TRUE((*cluster)->FlushAll().ok());
  auto stats = (*cluster)->GetStats();
  EXPECT_EQ(stats.entries, 6u * 200u);
  EXPECT_GT(stats.disk_bytes, 0u);
}

TEST_P(RegionClusterTest, CompactAllReducesSstables) {
  auto cluster = OpenCluster();
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          (*cluster)->Put(ShardKey(0, "key" + std::to_string(i)), "v").ok());
    }
    ASSERT_TRUE((*cluster)->FlushAll().ok());
  }
  ASSERT_TRUE((*cluster)->CompactAll().ok());
  auto stats = (*cluster)->GetStats();
  EXPECT_LE(stats.num_sstables, 3u);  // at most one per server
}

INSTANTIATE_TEST_SUITE_P(Backends, RegionClusterTest,
                         ::testing::Values("inproc", "socket"),
                         [](const auto& info) { return info.param; });

TEST(RegionClusterOpenTest, RejectsZeroServers) {
  ClusterOptions opts;
  opts.dir = "/tmp/never";
  opts.num_servers = 0;
  EXPECT_FALSE(RegionCluster::Open(opts).ok());
}

TEST(RegionClusterOpenTest, RejectsUnreachableServerAddr) {
  ClusterOptions opts;
  // Nothing listens here; Open must fail with a transient status rather
  // than hang or crash.
  opts.server_addrs = {"127.0.0.1:1"};
  auto cluster = RegionCluster::Open(opts);
  ASSERT_FALSE(cluster.ok());
  EXPECT_TRUE(cluster.status().IsTransient());
}

TEST(RegionClusterOpenTest, RejectsMalformedServerAddr) {
  ClusterOptions opts;
  opts.server_addrs = {"no-port-here"};
  EXPECT_FALSE(RegionCluster::Open(opts).ok());
}

}  // namespace
}  // namespace just::cluster
