#include <gtest/gtest.h>

#include <set>

#include "cluster/region_cluster.h"
#include "common/bytes.h"
#include "test_util.h"

namespace just::cluster {
namespace {

using just::testing::TempDir;

ClusterOptions SmallCluster(const std::string& dir, int servers = 3) {
  ClusterOptions opts;
  opts.dir = dir;
  opts.num_servers = servers;
  opts.store.memtable_bytes = 32 << 10;
  return opts;
}

std::string ShardKey(int shard, const std::string& rest) {
  std::string key(1, static_cast<char>(shard));
  return key + rest;
}

TEST(RegionClusterTest, RoutesByShardByte) {
  TempDir dir("cluster_route");
  auto cluster = RegionCluster::Open(SmallCluster(dir.path()));
  ASSERT_TRUE(cluster.ok());
  for (int shard = 0; shard < 8; ++shard) {
    ASSERT_TRUE(
        (*cluster)->Put(ShardKey(shard, "key"), "v" + std::to_string(shard))
            .ok());
  }
  for (int shard = 0; shard < 8; ++shard) {
    std::string v;
    ASSERT_TRUE((*cluster)->Get(ShardKey(shard, "key"), &v).ok());
    EXPECT_EQ(v, "v" + std::to_string(shard));
  }
}

TEST(RegionClusterTest, ParallelScanHonorsRangeBounds) {
  TempDir dir("cluster_scan");
  auto cluster = RegionCluster::Open(SmallCluster(dir.path()));
  ASSERT_TRUE(cluster.ok());
  // Shard 1: keys 000..099.
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%03d", i);
    ASSERT_TRUE((*cluster)->Put(ShardKey(1, buf), "v").ok());
  }
  std::vector<curve::KeyRange> ranges;
  curve::KeyRange r1{ShardKey(1, "010"), ShardKey(1, "020"), true};
  curve::KeyRange r2{ShardKey(1, "050"), ShardKey(1, "055"), false};
  ranges.push_back(r1);
  ranges.push_back(r2);
  auto results = (*cluster)->ParallelScan(ranges);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].rows.size(), 10u);
  EXPECT_TRUE((*results)[0].contained);
  EXPECT_EQ((*results)[1].rows.size(), 5u);
  EXPECT_FALSE((*results)[1].contained);
}

TEST(RegionClusterTest, ParallelScanManyRanges) {
  TempDir dir("cluster_many");
  auto cluster = RegionCluster::Open(SmallCluster(dir.path(), 4));
  ASSERT_TRUE(cluster.ok());
  for (int shard = 0; shard < 8; ++shard) {
    for (int i = 0; i < 50; ++i) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%03d", i);
      ASSERT_TRUE((*cluster)->Put(ShardKey(shard, buf), "v").ok());
    }
  }
  std::vector<curve::KeyRange> ranges;
  for (int shard = 0; shard < 8; ++shard) {
    ranges.push_back(curve::KeyRange{ShardKey(shard, "000"),
                                     ShardKey(shard, "025"), false});
  }
  auto results = (*cluster)->ParallelScan(ranges);
  ASSERT_TRUE(results.ok());
  size_t total = 0;
  for (const auto& rr : *results) total += rr.rows.size();
  EXPECT_EQ(total, 8u * 25u);
}

TEST(RegionClusterTest, StatsAggregateAcrossServers) {
  TempDir dir("cluster_stats");
  auto cluster = RegionCluster::Open(SmallCluster(dir.path()));
  ASSERT_TRUE(cluster.ok());
  for (int shard = 0; shard < 6; ++shard) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*cluster)
                      ->Put(ShardKey(shard, "key" + std::to_string(i)),
                            std::string(100, 'x'))
                      .ok());
    }
  }
  ASSERT_TRUE((*cluster)->FlushAll().ok());
  auto stats = (*cluster)->GetStats();
  EXPECT_EQ(stats.entries, 6u * 200u);
  EXPECT_GT(stats.disk_bytes, 0u);
}

TEST(RegionClusterTest, CompactAllReducesSstables) {
  TempDir dir("cluster_compact");
  auto cluster = RegionCluster::Open(SmallCluster(dir.path()));
  ASSERT_TRUE(cluster.ok());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          (*cluster)->Put(ShardKey(0, "key" + std::to_string(i)), "v").ok());
    }
    ASSERT_TRUE((*cluster)->FlushAll().ok());
  }
  ASSERT_TRUE((*cluster)->CompactAll().ok());
  auto stats = (*cluster)->GetStats();
  EXPECT_LE(stats.num_sstables, 3u);  // at most one per server
}

TEST(RegionClusterTest, RejectsZeroServers) {
  ClusterOptions opts;
  opts.dir = "/tmp/never";
  opts.num_servers = 0;
  EXPECT_FALSE(RegionCluster::Open(opts).ok());
}

}  // namespace
}  // namespace just::cluster
