// End-to-end cross-process tracing (the PR's acceptance test): an engine
// whose region servers are real spawned `just_region_server` processes runs
// EXPLAIN ANALYZE, and the rendered span tree must contain per-server
// remote subtrees (grafted from the response extension field) whose
// counters match what the same data and query produce in-process. Also
// covers the version-tolerance seams (old server, old client) and the
// spawned server's HTTP admin plane (/metrics histograms, /tracez slow-RPC
// trees).

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "core/engine.h"
#include "net/region_client.h"
#include "net/socket.h"
#include "net/wire_protocol.h"
#include "net_harness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/justql.h"
#include "test_util.h"

namespace just {
namespace {

using just::testing::ServerProcess;
using just::testing::TempDir;

constexpr const char* kStQuery =
    "SELECT fid FROM orders WHERE geom WITHIN "
    "st_makeMBR(116.0, 39.5, 117.5, 41.0) AND "
    "time BETWEEN '2018-10-01' AND '2018-10-02'";

/// Sums every `<token><number>` occurrence in `text`.
uint64_t SumToken(const std::string& text, const std::string& token) {
  uint64_t total = 0;
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    pos += token.size();
    uint64_t value = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      value = value * 10 + static_cast<uint64_t>(text[pos] - '0');
      ++pos;
    }
    total += value;
  }
  return total;
}

/// SumToken restricted to lines containing `line_filter` — e.g. counter
/// sums over only the remote (` server=`-tagged) spans of a rendering.
uint64_t SumTokenOnLines(const std::string& text,
                         const std::string& line_filter,
                         const std::string& token) {
  uint64_t total = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(line_filter) != std::string::npos) {
      total += SumToken(line, token);
    }
  }
  return total;
}

/// Loads the shared orders fixture into `engine` (identical data for the
/// socket-backed and in-process engines, so totals are comparable).
void LoadOrders(core::JustEngine* engine) {
  meta::TableMeta table;
  table.user = "u";
  table.name = "orders";
  table.columns = {
      {"fid", exec::DataType::kString, true, "", ""},
      {"time", exec::DataType::kTimestamp, false, "", ""},
      {"geom", exec::DataType::kGeometry, false, "", ""},
  };
  table.indexes = {{curve::IndexType::kZ2, kMillisPerDay},
                   {curve::IndexType::kZ2T, kMillisPerDay}};
  ASSERT_TRUE(engine->CreateTable(table).ok());
  TimestampMs base = ParseTimestamp("2018-10-01").value();
  Rng rng(17);
  std::vector<exec::Row> rows;
  for (int i = 0; i < 400; ++i) {
    rows.push_back({
        exec::Value::String("o" + std::to_string(i)),
        exec::Value::Timestamp(base + (i % (3 * 24)) * kMillisPerHour),
        exec::Value::GeometryVal(geo::Geometry::MakePoint(
            {116.0 + rng.NextDouble(), 39.5 + rng.NextDouble()})),
    });
  }
  ASSERT_TRUE(engine->InsertBatch("u", "orders", rows).ok());
  ASSERT_TRUE(engine->Finalize().ok());
}

/// One raw HTTP/1.0 GET against a spawned server's admin port.
std::string RawGet(int port, const std::string& path) {
  auto sock = net::Connect("127.0.0.1", port);
  if (!sock.ok()) return "";
  (void)sock->SetRecvTimeout(5000);
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!sock->WriteFully(request.data(), request.size()).ok()) return "";
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(sock->fd(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

class RemoteTraceTest : public ::testing::Test {
 protected:
  /// Spawns `n` region server processes (admin plane on, slow-RPC log
  /// capturing everything) and opens an engine routed at them.
  void StartSocketEngine(int n = 2) {
    dir_ = std::make_unique<TempDir>("remote_trace");
    core::EngineOptions options;
    options.data_dir = dir_->path() + "/engine";
    std::filesystem::create_directories(options.data_dir);
    options.num_servers = n;
    options.num_shards = 4;
    for (int i = 0; i < n; ++i) {
      ServerProcess::Options po;
      po.dir = dir_->path() + "/rs" + std::to_string(i);
      std::filesystem::create_directories(po.dir);
      po.sync_wal = false;
      po.admin = true;
      po.slow_query_us = 0;
      auto server = std::make_unique<ServerProcess>(po);
      ASSERT_TRUE(server->Start()) << "region server " << i;
      ASSERT_GT(server->admin_port(), 0) << "admin port missing";
      options.server_addrs.push_back(server->addr());
      servers_.push_back(std::move(server));
    }
    auto engine = core::JustEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
    LoadOrders(engine_.get());
    ql_ = std::make_unique<sql::JustQL>(engine_.get());
  }

  void TearDown() override {
    ql_.reset();
    engine_.reset();
    for (auto& server : servers_) server->Terminate();
    servers_.clear();
  }

  std::unique_ptr<TempDir> dir_;
  std::vector<std::unique_ptr<ServerProcess>> servers_;
  std::unique_ptr<core::JustEngine> engine_;
  std::unique_ptr<sql::JustQL> ql_;
};

TEST_F(RemoteTraceTest, ExplainAnalyzeRendersRemoteSubtrees) {
  StartSocketEngine(2);
  auto r = ql_->Execute("u", std::string("EXPLAIN ANALYZE ") + kStQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->frame.num_rows(), 0u);
  const std::string& msg = r->message;

  // Remote per-server subtrees: rpc spans tagged with the server address.
  EXPECT_NE(msg.find("rpc.scan"), std::string::npos) << msg;
  ASSERT_NE(msg.find(" server="), std::string::npos) << msg;
  for (const auto& server : servers_) {
    EXPECT_NE(msg.find("server=" + server->addr()), std::string::npos)
        << "no subtree from " << server->addr() << "\n"
        << msg;
  }

  // The remote spans carry real counters: the rows the servers scanned sum
  // to what the client-side scan span reports (the remote lines are the
  // per-server breakdown of the same total), and the servers did real
  // block reads.
  uint64_t remote_rows =
      SumTokenOnLines(msg, " server=", " rows_scanned=");
  EXPECT_GT(remote_rows, 0u) << msg;
  uint64_t local_rows =
      SumToken(msg, " rows_scanned=") - remote_rows;
  EXPECT_EQ(remote_rows, local_rows) << msg;
  EXPECT_GT(SumTokenOnLines(msg, " server=", " bytes_read="), 0u) << msg;
  // Queue wait is attributed on every remote span.
  EXPECT_NE(msg.find("queue_us="), std::string::npos) << msg;

  // Same data and query, in-process backend: the remote breakdown must
  // match the single-process totals (the backends are interchangeable).
  TempDir inproc_dir("remote_trace_inproc");
  core::EngineOptions inproc;
  inproc.data_dir = inproc_dir.path();
  inproc.num_servers = 2;
  inproc.num_shards = 4;
  auto inproc_engine = core::JustEngine::Open(inproc);
  ASSERT_TRUE(inproc_engine.ok());
  LoadOrders(inproc_engine->get());
  sql::JustQL inproc_ql(inproc_engine->get());
  auto r2 =
      inproc_ql.Execute("u", std::string("EXPLAIN ANALYZE ") + kStQuery);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->frame.num_rows(), r->frame.num_rows());
  EXPECT_EQ(remote_rows, SumToken(r2->message, " rows_scanned="))
      << "socket:\n"
      << msg << "\ninproc:\n"
      << r2->message;
}

TEST_F(RemoteTraceTest, UntracedQueriesDegradeNothing) {
  StartSocketEngine(1);
  // No EXPLAIN ANALYZE: no thread-local span, so frames stay in the
  // pre-extension layout and no degrade/decode counters move.
  auto& registry = obs::Registry::Global();
  uint64_t degrades_before =
      registry.CounterValue("just_net_client_trace_degrades_total");
  auto r = ql_->Execute("u", kStQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->frame.num_rows(), 0u);
  EXPECT_EQ(registry.CounterValue("just_net_client_trace_degrades_total"),
            degrades_before);
}

TEST_F(RemoteTraceTest, AdminPlaneServesMetricsAndTracez) {
  StartSocketEngine(1);
  // Drive some RPCs through the engine so the server has latency samples
  // and slow-RPC entries (threshold 0 records everything).
  auto r = ql_->Execute("u", kStQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  int admin_port = servers_[0]->admin_port();
  std::string health = RawGet(admin_port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos) << health;
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  std::string metrics = RawGet(admin_port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  // Per-RPC latency histograms by type, exposed as one labeled family.
  EXPECT_NE(metrics.find("# TYPE just_net_server_rpc_us histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("just_net_server_rpc_us_count{type=\"scan\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("just_net_server_requests_total"),
            std::string::npos);

  // /tracez shows the recorded slow RPCs with their span trees.
  std::string tracez = RawGet(admin_port, "/tracez");
  EXPECT_NE(tracez.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(tracez.find("\"sql\":\"rpc:scan\""), std::string::npos)
      << tracez;
  EXPECT_NE(tracez.find("\"name\":\"rpc.scan\""), std::string::npos)
      << tracez;
}

TEST_F(RemoteTraceTest, OldClientFramesAgainstNewServer) {
  StartSocketEngine(1);
  // An old client never sets the extension flag; its frames are
  // byte-identical to what EncodePingRequest emits with no ext (pinned by
  // the wire tests). The new server must answer without an extension.
  net::RegionClientOptions copts;
  copts.port = servers_[0]->port();
  net::RegionClient client(copts);
  ASSERT_TRUE(client.EnsureConnected().ok());
  std::string frame;
  net::EncodePingRequest(7, &frame);
  ASSERT_TRUE(client.RawSend(frame).ok());
  std::string payload;
  ASSERT_TRUE(client.RawRecvPayload(&payload).ok());
  net::FrameHeader header;
  std::string_view body;
  ASSERT_TRUE(net::ParsePayload(payload, &header, &body).ok());
  EXPECT_EQ(header.type, net::MsgType::kStatusResp);
  EXPECT_EQ(header.request_id, 7u);
  EXPECT_FALSE(header.has_ext);
  net::StatusResponse resp;
  ASSERT_TRUE(net::DecodeStatusResponse(body, &resp).ok());
  EXPECT_TRUE(resp.status.ok());
}

/// A minimal in-process stand-in for a pre-extension server: anything with
/// the extension flag set is an unknown message type to it, answered with
/// kInvalidArgument on a surviving connection (exactly what the old
/// ParsePayload produced); plain pings are answered OK.
class FakeOldServer {
 public:
  FakeOldServer() {
    auto listener = net::Listener::Listen("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok());
    listener_ = std::move(*listener);
    thread_ = std::thread([this] { Serve(); });
  }

  ~FakeOldServer() {
    listener_.Close();
    if (thread_.joinable()) thread_.join();
  }

  int port() const { return listener_.port(); }

 private:
  void Serve() {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) return;
    net::Socket sock = std::move(*accepted);
    (void)sock.SetRecvTimeout(5000);
    for (;;) {
      std::string payload;
      if (!net::ReadFramePayload(sock, &payload).ok()) return;
      if (payload.size() < net::kPayloadHeaderBytes) return;
      uint8_t raw = static_cast<uint8_t>(payload[0]);
      uint64_t id = GetFixed64(payload.data() + 1);
      std::string out;
      if (raw & net::kExtensionFlag) {
        net::EncodeStatusResponse(
            {Status::InvalidArgument("unknown message type " +
                                     std::to_string(raw))},
            id, &out);
      } else {
        net::EncodeStatusResponse({Status::OK()}, id, &out);
      }
      if (!sock.WriteFully(out.data(), out.size()).ok()) return;
    }
  }

  net::Listener listener_;
  std::thread thread_;
};

TEST_F(RemoteTraceTest, TracedClientDegradesAgainstOldServer) {
  FakeOldServer old_server;
  net::RegionClientOptions copts;
  copts.port = old_server.port();
  net::RegionClient client(copts);

  auto& registry = obs::Registry::Global();
  uint64_t degrades_before =
      registry.CounterValue("just_net_client_trace_degrades_total");

  obs::Trace trace("caller");
  obs::SpanScope scope(trace.root());
  // First traced RPC: flagged frame rejected, client retries untraced on
  // the same connection and succeeds.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.peer_trace_unsupported());
  EXPECT_EQ(
      registry.CounterValue("just_net_client_trace_degrades_total"),
      degrades_before + 1);
  // The degrade is sticky: no second round-trip is wasted.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(
      registry.CounterValue("just_net_client_trace_degrades_total"),
      degrades_before + 1);
  // No remote subtree was grafted (the old server has none to send).
  EXPECT_TRUE(trace.root()->children().empty());
}

}  // namespace
}  // namespace just
