#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "curve/index_strategy.h"
#include "curve/sfc.h"
#include "curve/xz2.h"
#include "curve/xz3.h"
#include "curve/z2.h"
#include "curve/z3.h"
#include "curve/zorder.h"

namespace just::curve {
namespace {

bool InRanges(const std::vector<SfcRange>& ranges, uint64_t v) {
  for (const SfcRange& r : ranges) {
    if (v >= r.lo && v <= r.hi) return true;
  }
  return false;
}

// --- zorder primitives ---

TEST(ZOrderTest, Interleave2RoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    uint32_t x = static_cast<uint32_t>(rng.Next()) & 0x7FFFFFFF;
    uint32_t y = static_cast<uint32_t>(rng.Next()) & 0x7FFFFFFF;
    uint32_t dx, dy;
    Deinterleave2(Interleave2(x, y), &dx, &dy);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

TEST(ZOrderTest, Interleave2BitPlacement) {
  EXPECT_EQ(Interleave2(1, 0), 1u);       // x bit 0 -> z bit 0
  EXPECT_EQ(Interleave2(0, 1), 2u);       // y bit 0 -> z bit 1
  EXPECT_EQ(Interleave2(2, 0), 4u);       // x bit 1 -> z bit 2
  EXPECT_EQ(Interleave2(0xFFFFFFFF, 0), 0x5555555555555555ull);
}

TEST(ZOrderTest, Interleave3RoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    uint32_t x = static_cast<uint32_t>(rng.Next()) & 0x1FFFFF;
    uint32_t y = static_cast<uint32_t>(rng.Next()) & 0x1FFFFF;
    uint32_t t = static_cast<uint32_t>(rng.Next()) & 0x1FFFFF;
    uint32_t dx, dy, dt;
    Deinterleave3(Interleave3(x, y, t), &dx, &dy, &dt);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
    EXPECT_EQ(dt, t);
  }
}

TEST(ZOrderTest, NormalizeClampsAndInverts) {
  EXPECT_EQ(NormalizeToBits(-180, -180, 180, 8), 0u);
  EXPECT_EQ(NormalizeToBits(180, -180, 180, 8), 255u);
  EXPECT_EQ(NormalizeToBits(-200, -180, 180, 8), 0u);   // clamp low
  EXPECT_EQ(NormalizeToBits(200, -180, 180, 8), 255u);  // clamp high
  uint32_t n = NormalizeToBits(10.5, -180, 180, 16);
  double lo = DenormalizeFromBits(n, -180, 180, 16);
  double hi = DenormalizeFromBits(n + 1, -180, 180, 16);
  EXPECT_LE(lo, 10.5);
  EXPECT_GT(hi, 10.5);
}

// --- Z2 ---

TEST(Z2Test, FigureThreeExample) {
  // Figure 3a: lat 40.78 -> 101, lng -73.97 -> 010 at 3 bits;
  // Figure 3b crosswise combination (lng first) = 011001.
  Z2Sfc z2(3);
  uint64_t z = z2.Index(geo::Point{-73.97, 40.78});
  // lng bits x=010 (2), lat bits y=101 (5): interleave x,y with x at even
  // positions: bits: y2 x2 y1 x1 y0 x0 = 1 0 0 1 1 0 = 0b100110 = 38.
  EXPECT_EQ(z, Interleave2(2, 5));
  EXPECT_EQ(z, 38u);
}

TEST(Z2Test, IndexInvertConsistent) {
  Z2Sfc z2(30);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    geo::Point p{rng.Uniform(-180.0, 180.0), rng.Uniform(-90.0, 90.0)};
    geo::Point cell = z2.Invert(z2.Index(p));
    EXPECT_NEAR(cell.lng, p.lng, 360.0 / (1 << 16));
    EXPECT_NEAR(cell.lat, p.lat, 180.0 / (1 << 16));
  }
}

TEST(Z2Test, LocalityNearbyPointsShareHighBits) {
  Z2Sfc z2(30);
  uint64_t a = z2.Index(geo::Point{116.40000, 39.90000});
  uint64_t b = z2.Index(geo::Point{116.40001, 39.90001});
  uint64_t far = z2.Index(geo::Point{-73.97, 40.78});
  int close_xor_msb = 63 - __builtin_clzll(a ^ b | 1);
  int far_xor_msb = 63 - __builtin_clzll(a ^ far | 1);
  EXPECT_LT(close_xor_msb, far_xor_msb);
}

// Property: every point inside the query box is covered by the ranges.
TEST(Z2Test, RangesCoverContainedPoints) {
  Z2Sfc z2(30);
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    double lng = rng.Uniform(-170.0, 160.0);
    double lat = rng.Uniform(-80.0, 70.0);
    geo::Mbr query = geo::Mbr::Of(lng, lat, lng + rng.Uniform(0.01, 5.0),
                                  lat + rng.Uniform(0.01, 5.0));
    auto ranges = z2.Ranges(query);
    ASSERT_FALSE(ranges.empty());
    for (int i = 0; i < 50; ++i) {
      geo::Point p{rng.Uniform(query.lng_min, query.lng_max),
                   rng.Uniform(query.lat_min, query.lat_max)};
      EXPECT_TRUE(InRanges(ranges, z2.Index(p)))
          << "point " << p.lng << "," << p.lat << " missed";
    }
  }
}

TEST(Z2Test, ContainedRangesNeedNoRefinement) {
  Z2Sfc z2(30);
  geo::Mbr query = geo::Mbr::Of(116.0, 39.0, 117.0, 40.0);
  auto ranges = z2.Ranges(query);
  Rng rng(5);
  for (const SfcRange& r : ranges) {
    if (!r.contained) continue;
    // Sample z-values inside the contained range: their cells must be in
    // the query.
    for (int i = 0; i < 5; ++i) {
      uint64_t z = r.lo + rng.Uniform(r.hi - r.lo + 1);
      geo::Point cell = z2.Invert(z);
      EXPECT_TRUE(query.Contains(cell));
    }
  }
}

TEST(Z2Test, RangesAreSortedAndDisjoint) {
  Z2Sfc z2(30);
  auto ranges = z2.Ranges(geo::Mbr::Of(10, 10, 30, 25));
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].lo, ranges[i - 1].hi);
  }
}

TEST(Z2Test, RangeBudgetRespectedApproximately) {
  Z2Sfc z2(30);
  auto ranges = z2.Ranges(geo::Mbr::Of(-170, -80, 170, 80), 16);
  // Budget causes coarser covering, never failure.
  EXPECT_LE(ranges.size(), 200u);
  EXPECT_FALSE(ranges.empty());
}

// --- Z3 ---

TEST(Z3Test, RangesCoverContainedSpaceTimePoints) {
  Z3Sfc z3(20);
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    geo::Mbr query = geo::Mbr::Of(116.0, 39.0, 116.5, 39.5);
    double t0 = rng.Uniform(0.0, 0.5);
    double t1 = t0 + rng.Uniform(0.05, 0.5);
    auto ranges = z3.Ranges(query, t0, t1);
    for (int i = 0; i < 50; ++i) {
      geo::Point p{rng.Uniform(query.lng_min, query.lng_max),
                   rng.Uniform(query.lat_min, query.lat_max)};
      double tf = rng.Uniform(t0, std::min(1.0, t1));
      EXPECT_TRUE(InRanges(ranges, z3.Index(p, tf)));
    }
  }
}

// The Section IV-B pathology: with a large time-window/period ratio, Z3's
// covering scans far more curve volume relative to Z2T's per-period Z2.
TEST(Z3Test, WideTimeWindowDegradesSpatialSelectivity) {
  Z3Sfc z3(20);
  Z2Sfc z2(20);
  geo::Mbr small_box = geo::Mbr::Of(116.0, 39.0, 116.01, 39.01);  // ~1km
  // Z3 with the 1/2-period window (e.g. 01:00-13:00 of a day).
  auto z3_ranges = z3.Ranges(small_box, 0.0, 0.5, 1 << 20);
  auto z2_ranges = z2.Ranges(small_box, 1 << 20);
  long double z3_volume = 0, z2_volume = 0;
  for (const SfcRange& r : z3_ranges) z3_volume += r.hi - r.lo + 1;
  for (const SfcRange& r : z2_ranges) z2_volume += r.hi - r.lo + 1;
  // Normalize by total curve size to compare fractions of the key space.
  long double z3_frac = z3_volume / std::pow(2.0L, 60);
  long double z2_frac = z2_volume / std::pow(2.0L, 40);
  EXPECT_GT(z3_frac, z2_frac * 10);
}

// --- XZ2 ---

TEST(Xz2Test, IndexWithinBounds) {
  Xz2Sfc xz2(12);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    double lng = rng.Uniform(-170.0, 160.0);
    double lat = rng.Uniform(-80.0, 70.0);
    geo::Mbr mbr = geo::Mbr::Of(lng, lat, lng + rng.Uniform(0.0, 3.0),
                                lat + rng.Uniform(0.0, 3.0));
    uint64_t code = xz2.Index(mbr);
    EXPECT_LT(code, xz2.MaxCode());
  }
}

TEST(Xz2Test, PointLikeObjectsGetDeepCodes) {
  Xz2Sfc xz2(12);
  // A tiny object should land at max length (deepest element)...
  geo::Mbr tiny = geo::Mbr::Of(116.4, 39.9, 116.4000001, 39.9000001);
  // ...and a continent-sized object near the root.
  geo::Mbr huge = geo::Mbr::Of(-120, -60, 120, 60);
  EXPECT_GT(xz2.Index(tiny), xz2.Index(huge));
  EXPECT_LE(xz2.Index(huge), 4u);
}

// Core XZ2 property: a query's ranges cover the code of every object whose
// MBR intersects the query.
TEST(Xz2Test, RangesCoverIntersectingObjects) {
  Xz2Sfc xz2(12);
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    geo::Mbr query = geo::Mbr::Of(116.0, 39.0, 117.0, 40.0);
    auto ranges = xz2.Ranges(query, 1 << 16);
    for (int i = 0; i < 60; ++i) {
      // Random objects near and inside the query.
      double lng = rng.Uniform(115.5, 117.2);
      double lat = rng.Uniform(38.5, 40.2);
      geo::Mbr obj = geo::Mbr::Of(lng, lat, lng + rng.Uniform(0.0, 0.5),
                                  lat + rng.Uniform(0.0, 0.5));
      if (!obj.Intersects(query)) continue;
      EXPECT_TRUE(InRanges(ranges, xz2.Index(obj)))
          << "object " << obj.ToString() << " missed";
    }
  }
}

TEST(Xz2Test, DistantObjectsUsuallyExcluded) {
  Xz2Sfc xz2(12);
  geo::Mbr query = geo::Mbr::Of(116.0, 39.0, 116.2, 39.2);
  auto ranges = xz2.Ranges(query, 1 << 16);
  Rng rng(9);
  int excluded = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    double lng = rng.Uniform(-60.0, 40.0);  // other side of the world
    double lat = rng.Uniform(-60.0, 20.0);
    geo::Mbr obj = geo::Mbr::Of(lng, lat, lng + 0.1, lat + 0.1);
    ++total;
    if (!InRanges(ranges, xz2.Index(obj))) ++excluded;
  }
  EXPECT_GT(excluded, total * 9 / 10);  // XZ2 filtering is effective
}

// --- XZ3 ---

TEST(Xz3Test, RangesCoverIntersectingObjects) {
  Xz3Sfc xz3(8);
  Rng rng(10);
  geo::Mbr query = geo::Mbr::Of(116.0, 39.0, 116.6, 39.6);
  auto ranges = xz3.Ranges(query, 0.2, 0.7, 1 << 16);
  for (int i = 0; i < 100; ++i) {
    double lng = rng.Uniform(115.8, 116.8);
    double lat = rng.Uniform(38.8, 39.8);
    geo::Mbr obj = geo::Mbr::Of(lng, lat, lng + rng.Uniform(0.0, 0.2),
                                lat + rng.Uniform(0.0, 0.2));
    double t0 = rng.Uniform(0.0, 0.9);
    double t1 = t0 + rng.Uniform(0.0, 0.1);
    bool intersects = obj.Intersects(query) && !(t0 > 0.7 || t1 < 0.2);
    if (!intersects) continue;
    EXPECT_TRUE(InRanges(ranges, xz3.Index(obj, t0, t1)));
  }
}

TEST(Xz3Test, CodesWithinMaxCode) {
  Xz3Sfc xz3(8);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    geo::Mbr obj = geo::Mbr::Of(rng.Uniform(-180.0, 179.0),
                                rng.Uniform(-90.0, 89.0), 180, 90);
    EXPECT_LT(xz3.Index(obj, 0.1, 0.9), xz3.MaxCode());
  }
}

// --- MergeSfcRanges ---

TEST(SfcRangeTest, MergesAdjacentAndOverlapping) {
  std::vector<SfcRange> ranges = {
      {10, 20, true}, {21, 30, true}, {5, 8, false}, {25, 40, false}};
  MergeSfcRanges(&ranges);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].lo, 5u);
  EXPECT_EQ(ranges[0].hi, 8u);
  EXPECT_EQ(ranges[1].lo, 10u);
  EXPECT_EQ(ranges[1].hi, 40u);
  EXPECT_FALSE(ranges[1].contained);  // merged with a non-contained range
}

TEST(SfcRangeTest, KeepsDisjoint) {
  std::vector<SfcRange> ranges = {{1, 2, false}, {4, 5, false}};
  MergeSfcRanges(&ranges);
  EXPECT_EQ(ranges.size(), 2u);
}

// --- Index strategies (Eq. 2 / Eq. 3 keys + query ranges) ---

struct StrategyCase {
  IndexType type;
  bool extent;  // generate non-point records
};

class StrategyCoverageTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategyCoverageTest, QueryRangesFindInsertedRecords) {
  const StrategyCase param = GetParam();
  IndexOptions options;
  options.num_shards = 4;
  options.period_len_ms = kMillisPerDay;
  auto strategy = IndexStrategy::Create(param.type, options);
  ASSERT_NE(strategy, nullptr);
  EXPECT_EQ(strategy->type(), param.type);

  Rng rng(12345);
  TimestampMs base = ParseTimestamp("2014-03-01").value();
  // Insert synthetic records into an ordered map (stand-in for the store).
  struct Record {
    RecordRef ref;
    bool hit = false;
  };
  std::vector<Record> records;
  std::map<std::string, size_t> store;
  for (int i = 0; i < 400; ++i) {
    Record r;
    double lng = rng.Uniform(116.0, 117.0);
    double lat = rng.Uniform(39.0, 40.0);
    double w = param.extent ? rng.Uniform(0.0, 0.05) : 0.0;
    r.ref.mbr = geo::Mbr::Of(lng, lat, lng + w, lat + w);
    r.ref.t_min = base + static_cast<int64_t>(rng.Uniform(10)) *
                             kMillisPerDay +
                  static_cast<int64_t>(rng.Uniform(24)) * kMillisPerHour;
    r.ref.t_max = r.ref.t_min + (param.extent ? 2 * kMillisPerHour : 0);
    r.ref.fid = "f" + std::to_string(i);
    records.push_back(r);
    store[strategy->EncodeKey(records.back().ref)] = records.size() - 1;
  }

  geo::Mbr query = geo::Mbr::Of(116.3, 39.3, 116.7, 39.7);
  TimestampMs t0 = base + 2 * kMillisPerDay;
  TimestampMs t1 = base + 5 * kMillisPerDay;
  auto ranges = strategy->QueryRanges(query, t0, t1);
  ASSERT_FALSE(ranges.empty());
  for (const KeyRange& kr : ranges) {
    for (auto it = store.lower_bound(kr.start);
         it != store.end() && it->first < kr.end; ++it) {
      records[it->second].hit = true;
    }
  }
  bool temporal = IsSpatioTemporal(param.type);
  for (const Record& r : records) {
    bool spatial_match = param.extent ? r.ref.mbr.Intersects(query)
                                      : query.Contains(r.ref.mbr.Center());
    bool time_match =
        !temporal || (r.ref.t_min <= t1 && r.ref.t_max >= t0);
    if (spatial_match && time_match) {
      EXPECT_TRUE(r.hit) << IndexTypeName(param.type) << " missed record "
                         << r.ref.fid;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyCoverageTest,
    ::testing::Values(StrategyCase{IndexType::kZ2, false},
                      StrategyCase{IndexType::kZ3, false},
                      StrategyCase{IndexType::kZ2T, false},
                      StrategyCase{IndexType::kXz2, true},
                      StrategyCase{IndexType::kXz3, true},
                      StrategyCase{IndexType::kXz2T, true}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      return IndexTypeName(info.param.type);
    });

TEST(IndexStrategyTest, ParseNames) {
  EXPECT_EQ(ParseIndexType("Z2T").value(), IndexType::kZ2T);
  EXPECT_EQ(ParseIndexType("xz2t").value(), IndexType::kXz2T);
  EXPECT_FALSE(ParseIndexType("btree").ok());
  for (IndexType t : {IndexType::kZ2, IndexType::kZ3, IndexType::kXz2,
                      IndexType::kXz3, IndexType::kZ2T, IndexType::kXz2T}) {
    EXPECT_EQ(ParseIndexType(IndexTypeName(t)).value(), t);
  }
}

TEST(IndexStrategyTest, ShardsAreStableAndBounded) {
  IndexOptions options;
  options.num_shards = 4;
  auto strategy = IndexStrategy::Create(IndexType::kZ2, options);
  for (int i = 0; i < 100; ++i) {
    std::string fid = "fid" + std::to_string(i);
    int shard = strategy->ShardOf(fid);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    EXPECT_EQ(shard, strategy->ShardOf(fid));
  }
}

TEST(IndexStrategyTest, Z2TKeyLayoutMatchesEq2) {
  // Eq. (2): Num(t) :: Z2(lng, lat). Two records one day apart must differ
  // in the period prefix, same-day same-location records must share it.
  IndexOptions options;
  options.num_shards = 1;
  options.period_len_ms = kMillisPerDay;
  auto z2t = IndexStrategy::Create(IndexType::kZ2T, options);
  TimestampMs base = ParseTimestamp("2014-03-05").value();
  RecordRef a{geo::Mbr::Of(116.4, 39.9, 116.4, 39.9), base, base, "a"};
  RecordRef b = a;
  b.t_min = b.t_max = base + kMillisPerDay;
  b.fid = "b";
  RecordRef c = a;
  c.t_min = c.t_max = base + kMillisPerHour;
  c.fid = "c";
  std::string ka = z2t->EncodeKey(a);
  std::string kb = z2t->EncodeKey(b);
  std::string kc = z2t->EncodeKey(c);
  // shard byte(1) + period(4): same day -> same first 5 bytes.
  EXPECT_EQ(ka.substr(0, 5), kc.substr(0, 5));
  EXPECT_NE(ka.substr(0, 5), kb.substr(0, 5));
  // Within a day, the Z2 code ignores time entirely (Eq. 2).
  EXPECT_EQ(ka.substr(5, 8), kc.substr(5, 8));
}

TEST(IndexStrategyTest, Z2TSharesSpatialRangesAcrossPeriods) {
  IndexOptions options;
  options.num_shards = 1;
  auto z2t = IndexStrategy::Create(IndexType::kZ2T, options);
  TimestampMs base = ParseTimestamp("2014-03-01").value();
  geo::Mbr box = geo::Mbr::Of(116.3, 39.3, 116.4, 39.4);
  auto one_day = z2t->QueryRanges(box, base, base + kMillisPerHour);
  auto three_days = z2t->QueryRanges(box, base, base + 2 * kMillisPerDay +
                                                   kMillisPerHour);
  // Ranges scale with qualified periods (Section IV-B step 1).
  EXPECT_EQ(three_days.size(), one_day.size() * 3);
}

}  // namespace
}  // namespace just::curve
