// Parameterized property sweeps across module boundaries: encode/decode
// round-trips under random inputs, invariants that must hold for any seed.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "compress/codec.h"
#include "core/row_codec.h"
#include "curve/index_strategy.h"
#include "kvstore/lsm_store.h"
#include "test_util.h"

namespace just {
namespace {

using just::testing::TempDir;

// --- Row codec fuzz: random rows of every type survive the storage path ---

class RowCodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RowCodecFuzzTest, RandomRowsRoundTrip) {
  Rng rng(GetParam());
  meta::TableMeta table;
  table.user = "u";
  table.name = "fuzz";
  table.columns = {
      {"s", exec::DataType::kString, false, "", ""},
      {"i", exec::DataType::kInt, false, "", ""},
      {"d", exec::DataType::kDouble, false, "", ""},
      {"b", exec::DataType::kBool, false, "", ""},
      {"t", exec::DataType::kTimestamp, false, "", ""},
      {"g", exec::DataType::kGeometry, false, "", ""},
      {"z", exec::DataType::kString, false, "", "gzip"},  // compressed cell
  };
  for (int trial = 0; trial < 40; ++trial) {
    std::string s;
    for (uint64_t i = rng.Uniform(40); i > 0; --i) {
      s += static_cast<char>(rng.Next() & 0xFF);
    }
    std::string z;
    for (uint64_t i = rng.Uniform(3000); i > 0; --i) {
      z += static_cast<char>('a' + rng.Uniform(4));  // compressible
    }
    exec::Row row = {
        exec::Value::String(s),
        exec::Value::Int(static_cast<int64_t>(rng.Next())),
        exec::Value::Double(rng.Uniform(-1e6, 1e6)),
        exec::Value::Bool(rng.Uniform(2) == 0),
        exec::Value::Timestamp(static_cast<int64_t>(rng.Uniform(1ull << 41))),
        exec::Value::GeometryVal(geo::Geometry::MakePoint(
            {rng.Uniform(-180.0, 180.0), rng.Uniform(-90.0, 90.0)})),
        exec::Value::String(z),
    };
    auto encoded = core::EncodeRow(table, row);
    ASSERT_TRUE(encoded.ok());
    auto decoded = core::DecodeRow(table, *encoded);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->size(), row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_TRUE((*decoded)[c].Equals(row[c]))
          << "column " << c << " trial " << trial;
    }
  }
}

TEST_P(RowCodecFuzzTest, CorruptRowsNeverCrash) {
  Rng rng(GetParam() ^ 0xDEADBEEF);
  meta::TableMeta table;
  table.user = "u";
  table.name = "fuzz";
  table.columns = {
      {"s", exec::DataType::kString, false, "", ""},
      {"g", exec::DataType::kGeometry, false, "", ""},
  };
  exec::Row row = {exec::Value::String("hello"),
                   exec::Value::GeometryVal(
                       geo::Geometry::MakePoint({116.4, 39.9}))};
  auto encoded = core::EncodeRow(table, row);
  ASSERT_TRUE(encoded.ok());
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = *encoded;
    // Flip a few random bytes / truncate randomly.
    for (int flips = 0; flips < 3; ++flips) {
      if (mutated.empty()) break;
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Next() & 0xFF);
    }
    if (rng.Uniform(2) == 0 && !mutated.empty()) {
      mutated.resize(rng.Uniform(mutated.size()));
    }
    // Must either decode to *something* or return an error — never crash.
    auto decoded = core::DecodeRow(table, mutated);
    (void)decoded;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowCodecFuzzTest,
                         ::testing::Values(1ull, 42ull, 20260705ull));

// --- LSM store: scan after interleaved flush/compaction always ordered ---

class LsmPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LsmPropertyTest, ScansAlwaysSortedAndDeduplicated) {
  TempDir dir("lsm_prop");
  kv::StoreOptions options;
  options.dir = dir.path();
  options.memtable_bytes = 8 << 10;
  options.compaction_trigger = 3;
  auto store = kv::LsmStore::Open(options);
  ASSERT_TRUE(store.ok());
  Rng rng(GetParam());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(300));
    if (rng.Uniform(5) == 0) {
      ASSERT_TRUE((*store)->Delete(key).ok());
      model.erase(key);
    } else {
      std::string value(rng.Uniform(60), 'v');
      ASSERT_TRUE((*store)->Put(key, value).ok());
      model[key] = value;
    }
    if (rng.Uniform(97) == 0) {
      ASSERT_TRUE((*store)->Flush().ok());
    }
    if (i % 500 == 499) {
      std::string prev;
      size_t count = 0;
      ASSERT_TRUE((*store)
                      ->Scan("", "",
                             [&](std::string_view k, std::string_view v) {
                               EXPECT_GT(std::string(k), prev);  // ordered,
                               prev = std::string(k);            // no dupes
                               auto it = model.find(prev);
                               EXPECT_NE(it, model.end());
                               if (it != model.end()) {
                                 EXPECT_EQ(v, it->second);
                               }
                               ++count;
                               return true;
                             })
                      .ok());
      EXPECT_EQ(count, model.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmPropertyTest,
                         ::testing::Values(7ull, 1234ull, 987654321ull));

// --- Index strategies: time-period boundary records are never lost ---

class PeriodBoundaryTest
    : public ::testing::TestWithParam<curve::IndexType> {};

TEST_P(PeriodBoundaryTest, RecordsOnPeriodEdgesAreFound) {
  curve::IndexOptions options;
  options.num_shards = 2;
  options.period_len_ms = kMillisPerDay;
  auto strategy = curve::IndexStrategy::Create(GetParam(), options);
  TimestampMs day = ParseTimestamp("2014-03-10").value();
  geo::Point p{116.5, 39.5};
  // Records exactly at period start, end-1ms, and start of next period.
  std::vector<TimestampMs> times = {day, day + kMillisPerDay - 1,
                                    day + kMillisPerDay};
  std::map<std::string, size_t> store;
  for (size_t i = 0; i < times.size(); ++i) {
    curve::RecordRef ref;
    ref.mbr = geo::Mbr::Of(p.lng, p.lat, p.lng, p.lat);
    ref.t_min = ref.t_max = times[i];
    ref.fid = "r" + std::to_string(i);
    store[strategy->EncodeKey(ref)] = i;
  }
  // Query covering the full first day must find records 0 and 1 (and may
  // include 2 as a candidate for refinement).
  geo::Mbr box = geo::Mbr::Of(116.0, 39.0, 117.0, 40.0);
  auto ranges = strategy->QueryRanges(box, day, day + kMillisPerDay - 1);
  std::set<size_t> hit;
  for (const auto& range : ranges) {
    for (auto it = store.lower_bound(range.start);
         it != store.end() && it->first < range.end; ++it) {
      hit.insert(it->second);
    }
  }
  EXPECT_TRUE(hit.count(0)) << "period-start record missed";
  EXPECT_TRUE(hit.count(1)) << "period-end record missed";
}

INSTANTIATE_TEST_SUITE_P(
    TimeAware, PeriodBoundaryTest,
    ::testing::Values(curve::IndexType::kZ3, curve::IndexType::kXz3,
                      curve::IndexType::kZ2T, curve::IndexType::kXz2T),
    [](const ::testing::TestParamInfo<curve::IndexType>& info) {
      return curve::IndexTypeName(info.param);
    });

// --- Index strategies: planner ranges always cover the encoded key ---
//
// The fundamental recall contract of every curve index: if a record lies
// inside a query's box and time window, the key EncodeKey produces for it
// must fall inside at least one of the [start, end) ranges QueryRanges
// plans for that query — otherwise the SCAN layer silently drops a
// qualifying record and no refinement step can get it back.

class CurveCoverageTest
    : public ::testing::TestWithParam<std::tuple<curve::IndexType, uint64_t>> {
};

TEST_P(CurveCoverageTest, PlannerRangesCoverKeysOfQualifyingRecords) {
  auto [type, seed] = GetParam();
  curve::IndexOptions options;
  options.num_shards = 3;
  auto strategy = curve::IndexStrategy::Create(type, options);
  Rng rng(seed);
  TimestampMs day = ParseTimestamp("2014-03-10").value();
  for (int trial = 0; trial < 150; ++trial) {
    // Random query box, kept away from the domain edges.
    double lng0 = rng.Uniform(-170.0, 165.0);
    double lat0 = rng.Uniform(-80.0, 75.0);
    double width = rng.Uniform(0.05, 4.0);
    double height = rng.Uniform(0.05, 4.0);
    geo::Mbr qbox = geo::Mbr::Of(lng0, lat0, lng0 + width, lat0 + height);
    // Random time window between one millisecond and ~two periods long.
    TimestampMs t0 =
        day + static_cast<TimestampMs>(rng.Uniform(3 * kMillisPerDay));
    TimestampMs t1 =
        t0 + 1 + static_cast<TimestampMs>(rng.Uniform(2 * kMillisPerDay));

    // A record strictly inside the box and window. Point indexes get a
    // degenerate MBR; extent indexes get a small box contained in the query.
    double cx = rng.Uniform(lng0 + 0.05 * width, lng0 + 0.7 * width);
    double cy = rng.Uniform(lat0 + 0.05 * height, lat0 + 0.7 * height);
    curve::RecordRef ref;
    if (curve::IsExtentIndex(type)) {
      ref.mbr = geo::Mbr::Of(cx, cy, cx + rng.Uniform(0.0, 0.25 * width),
                             cy + rng.Uniform(0.0, 0.25 * height));
    } else {
      ref.mbr = geo::Mbr::Of(cx, cy, cx, cy);
    }
    ref.t_min = ref.t_max =
        t0 + static_cast<TimestampMs>(rng.Uniform(t1 - t0 + 1));
    ref.fid = "f" + std::to_string(trial);

    std::string key = strategy->EncodeKey(ref);
    auto ranges = strategy->QueryRanges(qbox, t0, t1);
    bool covered = false;
    for (const auto& range : ranges) {
      if (key >= range.start && (range.end.empty() || key < range.end)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << curve::IndexTypeName(type) << " trial " << trial
                         << ": record at (" << cx << ", " << cy
                         << ") t=" << ref.t_min << " escaped all "
                         << ranges.size() << " planned ranges";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, CurveCoverageTest,
    ::testing::Combine(::testing::Values(curve::IndexType::kZ2,
                                         curve::IndexType::kZ3,
                                         curve::IndexType::kXz2,
                                         curve::IndexType::kXz3,
                                         curve::IndexType::kZ2T,
                                         curve::IndexType::kXz2T),
                       ::testing::Values(11ull, 20140310ull)),
    [](const ::testing::TestParamInfo<std::tuple<curve::IndexType, uint64_t>>&
           info) {
      return curve::IndexTypeName(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- Compression framing: every payload length round-trips exactly ---

TEST(CompressionPropertyTest, AllSmallLengthsRoundTrip) {
  Rng rng(31337);
  for (size_t len = 0; len < 300; ++len) {
    std::string raw(len, '\0');
    for (char& c : raw) c = static_cast<char>(rng.Next() & 0xFF);
    for (const compress::Codec* codec :
         {compress::NoneCodec(), compress::Lz77Codec()}) {
      std::string cell = compress::EncodeCell(*codec, raw);
      auto back = compress::DecodeCell(cell);
      ASSERT_TRUE(back.ok()) << "len " << len;
      EXPECT_EQ(*back, raw);
    }
  }
}

}  // namespace
}  // namespace just
