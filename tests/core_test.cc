#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/engine.h"
#include "core/loader.h"
#include "core/plugins.h"
#include "core/result_set.h"
#include "core/row_codec.h"
#include "test_util.h"
#include "workload/generators.h"

namespace just::core {
namespace {

using just::testing::TempDir;

EngineOptions SmallEngine(const std::string& dir) {
  EngineOptions opts;
  opts.data_dir = dir;
  opts.num_servers = 3;
  opts.num_shards = 6;
  opts.store.memtable_bytes = 256 << 10;
  return opts;
}

meta::TableMeta PointTableMeta(const std::string& user,
                               const std::string& name) {
  meta::TableMeta table;
  table.user = user;
  table.name = name;
  table.columns = {
      {"fid", exec::DataType::kString, true, "", ""},
      {"time", exec::DataType::kTimestamp, false, "", ""},
      {"geom", exec::DataType::kGeometry, false, "4326", ""},
  };
  return table;
}

exec::Row PointRow(const std::string& fid, double lng, double lat,
                   TimestampMs t) {
  return {exec::Value::String(fid), exec::Value::Timestamp(t),
          exec::Value::GeometryVal(geo::Geometry::MakePoint({lng, lat}))};
}

// --- row codec ---

TEST(RowCodecTest, RoundTripAllColumnTypes) {
  meta::TableMeta table = PointTableMeta("u", "t");
  exec::Row row = PointRow("f1", 116.4, 39.9, 1393632000000LL);
  auto encoded = EncodeRow(table, row);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeRow(table, *encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].string_value(), "f1");
  EXPECT_EQ((*decoded)[1].timestamp_value(), 1393632000000LL);
  EXPECT_NEAR((*decoded)[2].geometry_value().AsPoint().lng, 116.4, 1e-9);
}

TEST(RowCodecTest, CompressedTrajectoryColumnRoundTrip) {
  auto plugin = MakePluginTable("trajectory", "u", "traj");
  ASSERT_TRUE(plugin.ok());
  std::vector<traj::GpsPoint> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back(traj::GpsPoint{{116.4 + i * 1e-4, 39.9 + i * 5e-5},
                                 1393632000000LL + i * 15000});
  }
  auto t = std::make_shared<const traj::Trajectory>("t1", pts);
  exec::Row row = {exec::Value::String("t1"), exec::Value::String("courier1"),
                   exec::Value::Timestamp(t->start_time()),
                   exec::Value::Timestamp(t->end_time()),
                   exec::Value::TrajectoryVal(t)};
  auto encoded = EncodeRow(*plugin, row);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeRow(*plugin, *encoded);
  ASSERT_TRUE(decoded.ok());
  const auto& back = (*decoded)[4].trajectory_value();
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->size(), 200u);
  EXPECT_NEAR(back->points()[100].position.lng,
              pts[100].position.lng, 1e-6);
}

TEST(RowCodecTest, CompressionShrinksPluginRows) {
  auto compressed = MakePluginTable("trajectory", "u", "a");
  ASSERT_TRUE(compressed.ok());
  meta::TableMeta uncompressed = *compressed;  // JUSTnc: no codec
  for (auto& col : uncompressed.columns) col.compress.clear();

  std::vector<traj::GpsPoint> pts;
  for (int i = 0; i < 2000; ++i) {
    pts.push_back(traj::GpsPoint{{116.4 + i * 1e-5, 39.9 + i * 1e-5},
                                 1393632000000LL + i * 15000});
  }
  auto t = std::make_shared<const traj::Trajectory>("t1", pts);
  exec::Row row = {exec::Value::String("t1"), exec::Value::String("c1"),
                   exec::Value::Timestamp(t->start_time()),
                   exec::Value::Timestamp(t->end_time()),
                   exec::Value::TrajectoryVal(t)};
  auto small = EncodeRow(*compressed, row);
  auto big = EncodeRow(uncompressed, row);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_LT(small->size(), big->size() / 4);  // Figure 10b shape
}

TEST(RowCodecTest, WidthMismatchRejected) {
  meta::TableMeta table = PointTableMeta("u", "t");
  exec::Row row = {exec::Value::String("f")};
  EXPECT_FALSE(EncodeRow(table, row).ok());
}

// --- engine DDL ---

TEST(EngineTest, CreateShowDescribeDrop) {
  TempDir dir("engine_ddl");
  auto engine = JustEngine::Open(SmallEngine(dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreateTable(PointTableMeta("alice", "orders")).ok());
  ASSERT_TRUE((*engine)->CreatePluginTable("alice", "traj", "trajectory").ok());
  auto tables = (*engine)->ShowTables("alice");
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0], "orders");
  EXPECT_EQ(tables[1], "traj");
  auto desc = (*engine)->DescribeTable("alice", "orders");
  ASSERT_TRUE(desc.ok());
  // Defaults applied: point table gets Z2 + Z2T (Section V-C).
  ASSERT_EQ(desc->indexes.size(), 2u);
  EXPECT_EQ(desc->indexes[0].type, curve::IndexType::kZ2);
  EXPECT_EQ(desc->indexes[1].type, curve::IndexType::kZ2T);
  EXPECT_EQ(desc->fid_column, "fid");
  EXPECT_EQ(desc->geom_column, "geom");
  ASSERT_TRUE((*engine)->DropTable("alice", "orders").ok());
  EXPECT_EQ((*engine)->ShowTables("alice").size(), 1u);
  EXPECT_FALSE((*engine)->DescribeTable("alice", "orders").ok());
}

TEST(EngineTest, UserNamespacesIsolated) {
  TempDir dir("engine_ns");
  auto engine = JustEngine::Open(SmallEngine(dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreateTable(PointTableMeta("alice", "t")).ok());
  ASSERT_TRUE((*engine)->CreateTable(PointTableMeta("bob", "t")).ok());
  ASSERT_TRUE(
      (*engine)->Insert("alice", "t", PointRow("a1", 116.4, 39.9, 1000)).ok());
  auto alice = (*engine)->FullScan("alice", "t");
  auto bob = (*engine)->FullScan("bob", "t");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(alice->num_rows(), 1u);
  EXPECT_EQ(bob->num_rows(), 0u);
}

// --- queries vs brute force ---

struct Dataset {
  std::vector<exec::Row> rows;
  std::vector<geo::Point> points;
  std::vector<TimestampMs> times;
};

Dataset InsertRandomPoints(JustEngine* engine, const std::string& user,
                           const std::string& table, int n, uint64_t seed) {
  Dataset data;
  Rng rng(seed);
  TimestampMs base = ParseTimestamp("2018-10-01").value();
  for (int i = 0; i < n; ++i) {
    geo::Point p{rng.Uniform(116.0, 117.0), rng.Uniform(39.0, 40.0)};
    TimestampMs t = base + static_cast<int64_t>(rng.Uniform(20)) *
                               kMillisPerDay +
                    static_cast<int64_t>(rng.Uniform(24)) * kMillisPerHour;
    exec::Row row = PointRow("p" + std::to_string(i), p.lng, p.lat, t);
    EXPECT_TRUE(engine->Insert(user, table, row).ok());
    data.rows.push_back(row);
    data.points.push_back(p);
    data.times.push_back(t);
  }
  return data;
}

TEST(EngineQueryTest, SpatialRangeMatchesBruteForce) {
  TempDir dir("engine_srq");
  auto engine = JustEngine::Open(SmallEngine(dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreateTable(PointTableMeta("u", "pts")).ok());
  Dataset data = InsertRandomPoints(engine->get(), "u", "pts", 2000, 11);
  ASSERT_TRUE((*engine)->Finalize().ok());

  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    double lng = rng.Uniform(116.0, 116.8);
    double lat = rng.Uniform(39.0, 39.8);
    geo::Mbr box = geo::Mbr::Of(lng, lat, lng + 0.2, lat + 0.2);
    QueryStats stats;
    auto result = (*engine)->SpatialRangeQuery("u", "pts", box, &stats);
    ASSERT_TRUE(result.ok());
    std::set<std::string> got;
    for (const auto& row : result->rows()) got.insert(row[0].string_value());
    std::set<std::string> expected;
    for (size_t i = 0; i < data.points.size(); ++i) {
      if (box.Contains(data.points[i])) {
        expected.insert("p" + std::to_string(i));
      }
    }
    EXPECT_EQ(got, expected);
    EXPECT_GE(stats.rows_scanned, stats.rows_matched);
    // Filtering must be effective: scanned rows far below table size.
    EXPECT_LT(stats.rows_scanned, 2000u);
  }
}

TEST(EngineQueryTest, StRangeMatchesBruteForce) {
  TempDir dir("engine_strq");
  auto engine = JustEngine::Open(SmallEngine(dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreateTable(PointTableMeta("u", "pts")).ok());
  Dataset data = InsertRandomPoints(engine->get(), "u", "pts", 2000, 13);
  ASSERT_TRUE((*engine)->Finalize().ok());

  TimestampMs base = ParseTimestamp("2018-10-01").value();
  Rng rng(14);
  for (int trial = 0; trial < 10; ++trial) {
    double lng = rng.Uniform(116.0, 116.7);
    double lat = rng.Uniform(39.0, 39.7);
    geo::Mbr box = geo::Mbr::Of(lng, lat, lng + 0.3, lat + 0.3);
    TimestampMs t0 = base + static_cast<int64_t>(rng.Uniform(15)) *
                                kMillisPerDay;
    TimestampMs t1 = t0 + 2 * kMillisPerDay + 11 * kMillisPerHour;
    auto result = (*engine)->StRangeQuery("u", "pts", box, t0, t1);
    ASSERT_TRUE(result.ok());
    std::set<std::string> got;
    for (const auto& row : result->rows()) got.insert(row[0].string_value());
    std::set<std::string> expected;
    for (size_t i = 0; i < data.points.size(); ++i) {
      if (box.Contains(data.points[i]) && data.times[i] >= t0 &&
          data.times[i] <= t1) {
        expected.insert("p" + std::to_string(i));
      }
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(EngineQueryTest, KnnMatchesBruteForce) {
  TempDir dir("engine_knn");
  auto engine = JustEngine::Open(SmallEngine(dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreateTable(PointTableMeta("u", "pts")).ok());
  Dataset data = InsertRandomPoints(engine->get(), "u", "pts", 1500, 15);
  ASSERT_TRUE((*engine)->Finalize().ok());

  Rng rng(16);
  for (int trial = 0; trial < 8; ++trial) {
    geo::Point q{rng.Uniform(116.1, 116.9), rng.Uniform(39.1, 39.9)};
    int k = 1 + static_cast<int>(rng.Uniform(50));
    auto result = (*engine)->KnnQuery("u", "pts", q, k);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->num_rows(), static_cast<size_t>(k));
    // Brute-force distances.
    std::vector<double> expected;
    for (const geo::Point& p : data.points) {
      expected.push_back(geo::EuclideanDistance(q, p));
    }
    std::sort(expected.begin(), expected.end());
    // Results are nearest-first and match the k smallest distances.
    double prev = -1;
    for (int i = 0; i < k; ++i) {
      const auto& row = result->rows()[i];
      double d = geo::EuclideanDistance(
          q, row[2].geometry_value().AsPoint());
      EXPECT_NEAR(d, expected[i], 1e-9) << "rank " << i;
      EXPECT_GE(d, prev);
      prev = d;
    }
  }
}

TEST(EngineQueryTest, UpdateEnabledInsertOverwritesAndExtends) {
  TempDir dir("engine_update");
  auto engine = JustEngine::Open(SmallEngine(dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreateTable(PointTableMeta("u", "pts")).ok());
  TimestampMs base = ParseTimestamp("2018-10-05").value();
  // Historical data, then flush (simulating an indexed dataset).
  ASSERT_TRUE(
      (*engine)->Insert("u", "pts", PointRow("old", 116.4, 39.9, base)).ok());
  ASSERT_TRUE((*engine)->Finalize().ok());
  // New insertion *and* historical insertion without any index rebuild.
  ASSERT_TRUE((*engine)
                  ->Insert("u", "pts",
                           PointRow("new", 116.41, 39.91, base + 30 *
                                                              kMillisPerDay))
                  .ok());
  ASSERT_TRUE((*engine)
                  ->Insert("u", "pts",
                           PointRow("hist", 116.42, 39.92,
                                    base - 10 * kMillisPerDay))
                  .ok());
  geo::Mbr box = geo::Mbr::Of(116.3, 39.8, 116.5, 40.0);
  auto result = (*engine)->StRangeQuery("u", "pts", box,
                                        base - 20 * kMillisPerDay,
                                        base + 40 * kMillisPerDay);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3u);
}

TEST(EngineQueryTest, TrajectoryPluginStQueries) {
  TempDir dir("engine_traj");
  auto engine = JustEngine::Open(SmallEngine(dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreatePluginTable("u", "traj", "trajectory").ok());
  workload::TrajOptions opts;
  opts.num_trajectories = 60;
  opts.points_per_traj = 80;
  opts.num_days = 5;
  auto trajectories = workload::GenerateTrajectories(opts);
  for (const auto& t : trajectories) {
    auto shared = std::make_shared<const traj::Trajectory>(t);
    exec::Row row = {exec::Value::String(t.oid()),
                     exec::Value::String("courier_" + t.oid()),
                     exec::Value::Timestamp(t.start_time()),
                     exec::Value::Timestamp(t.end_time()),
                     exec::Value::TrajectoryVal(shared)};
    ASSERT_TRUE((*engine)->Insert("u", "traj", row).ok());
  }
  ASSERT_TRUE((*engine)->Finalize().ok());

  TimestampMs base = ParseTimestamp(opts.start_date).value();
  geo::Mbr box = geo::Mbr::Of(116.2, 39.8, 116.6, 40.1);
  auto result = (*engine)->StRangeQuery("u", "traj", box, base,
                                        base + 5 * kMillisPerDay);
  ASSERT_TRUE(result.ok());
  std::set<std::string> got;
  for (const auto& row : result->rows()) got.insert(row[0].string_value());
  std::set<std::string> expected;
  for (const auto& t : trajectories) {
    if (t.Bounds().Intersects(box) && t.start_time() >= base &&
        t.start_time() <= base + 5 * kMillisPerDay) {
      expected.insert(t.oid());
    }
  }
  EXPECT_EQ(got, expected);
}

// --- views ---

TEST(EngineViewTest, CreateQueryStoreDrop) {
  TempDir dir("engine_views");
  auto engine = JustEngine::Open(SmallEngine(dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreateTable(PointTableMeta("u", "pts")).ok());
  InsertRandomPoints(engine->get(), "u", "pts", 100, 17);
  auto frame = (*engine)->FullScan("u", "pts");
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE((*engine)->CreateView("u", "v1", *frame).ok());
  EXPECT_TRUE((*engine)->ViewExists("u", "v1"));
  EXPECT_EQ((*engine)->ShowViews("u").size(), 1u);
  auto view = (*engine)->GetView("u", "v1");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->num_rows(), 100u);
  // STORE VIEW TO TABLE auto-creates the target.
  ASSERT_TRUE((*engine)->StoreViewToTable("u", "v1", "pts_copy").ok());
  auto copied = (*engine)->FullScan("u", "pts_copy");
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(copied->num_rows(), 100u);
  ASSERT_TRUE((*engine)->DropView("u", "v1").ok());
  EXPECT_FALSE((*engine)->ViewExists("u", "v1"));
  EXPECT_TRUE((*engine)->DropView("u", "v1").IsNotFound());
}

// --- result set ---

TEST(ResultSetTest, DirectModeBelowThreshold) {
  auto schema = std::make_shared<exec::Schema>();
  schema->AddField({"n", exec::DataType::kInt});
  exec::DataFrame frame(schema);
  for (int i = 0; i < 100; ++i) frame.AddRow({exec::Value::Int(i)});
  ResultSet::Options opts;
  opts.direct_row_limit = 1000;
  auto rs = ResultSet::Make(std::move(frame), opts);
  ASSERT_TRUE(rs.ok());
  EXPECT_FALSE((*rs)->spilled());
  int sum = 0;
  while ((*rs)->HasNext()) {
    auto row = (*rs)->Next();
    ASSERT_TRUE(row.ok());
    sum += static_cast<int>((*row)[0].int_value());
  }
  EXPECT_EQ(sum, 4950);
}

TEST(ResultSetTest, SpillsLargeResultsAndStreamsBack) {
  TempDir dir("rs_spill");
  auto schema = std::make_shared<exec::Schema>();
  schema->AddField({"n", exec::DataType::kInt});
  schema->AddField({"s", exec::DataType::kString});
  exec::DataFrame frame(schema);
  const int kRows = 5000;
  for (int i = 0; i < kRows; ++i) {
    frame.AddRow({exec::Value::Int(i),
                  exec::Value::String("row" + std::to_string(i))});
  }
  ResultSet::Options opts;
  opts.direct_row_limit = 500;   // force spill
  opts.rows_per_chunk = 512;     // multiple chunk files
  opts.spill_dir = dir.path();
  auto rs = ResultSet::Make(std::move(frame), opts);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE((*rs)->spilled());
  EXPECT_EQ((*rs)->total_rows(), static_cast<size_t>(kRows));
  int i = 0;
  while ((*rs)->HasNext()) {
    auto row = (*rs)->Next();
    ASSERT_TRUE(row.ok());
    EXPECT_EQ((*row)[0].int_value(), i);
    EXPECT_EQ((*row)[1].string_value(), "row" + std::to_string(i));
    ++i;
  }
  EXPECT_EQ(i, kRows);
  EXPECT_FALSE((*rs)->Next().ok());  // exhausted
}

TEST(ResultSetTest, ToDataFrameDrains) {
  auto schema = std::make_shared<exec::Schema>();
  schema->AddField({"n", exec::DataType::kInt});
  exec::DataFrame frame(schema);
  for (int i = 0; i < 10; ++i) frame.AddRow({exec::Value::Int(i)});
  auto rs = ResultSet::Make(std::move(frame), ResultSet::Options());
  ASSERT_TRUE(rs.ok());
  auto back = (*rs)->ToDataFrame();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 10u);
}

// --- loader ---

TEST(LoaderTest, LoadsCsvWithTransforms) {
  TempDir dir("loader");
  auto engine = JustEngine::Open(SmallEngine(dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreateTable(PointTableMeta("u", "pts")).ok());
  std::string csv_path = dir.path() + "/orders.csv";
  std::FILE* f = std::fopen(csv_path.c_str(), "wb");
  std::fputs("orderId,ts,lng,lat\n", f);
  std::fputs("o1,1538352000000,116.40,39.90\n", f);
  std::fputs("o2,1538438400000,116.45,39.95\n", f);
  std::fputs("o3,1538524800000,116.50,39.85\n", f);
  std::fclose(f);
  LoadConfig config;
  config.mapping = {{"fid", "orderId"},
                    {"time", "long_to_date_ms(ts)"},
                    {"geom", "lng_lat_to_point(lng, lat)"}};
  auto loaded = LoadCsv(engine->get(), "u", "pts", csv_path, config);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 3u);
  auto rows = (*engine)->FullScan("u", "pts");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->num_rows(), 3u);
}

TEST(LoaderTest, RespectsLimit) {
  TempDir dir("loader_limit");
  auto engine = JustEngine::Open(SmallEngine(dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreateTable(PointTableMeta("u", "pts")).ok());
  std::string csv_path = dir.path() + "/pts.csv";
  std::FILE* f = std::fopen(csv_path.c_str(), "wb");
  std::fputs("fid,time,lng,lat\n", f);
  for (int i = 0; i < 50; ++i) {
    std::fprintf(f, "p%d,2018-10-01 10:00:00,116.4,39.9\n", i);
  }
  std::fclose(f);
  LoadConfig config;
  config.mapping = {{"fid", "fid"},
                    {"time", "parse_date(time)"},
                    {"geom", "lng_lat_to_point(lng, lat)"}};
  config.limit = 10;
  auto loaded = LoadCsv(engine->get(), "u", "pts", csv_path, config);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 10u);
}

TEST(LoaderTest, MissingSourceFieldFails) {
  TempDir dir("loader_bad");
  auto engine = JustEngine::Open(SmallEngine(dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->CreateTable(PointTableMeta("u", "pts")).ok());
  std::string csv_path = dir.path() + "/bad.csv";
  std::FILE* f = std::fopen(csv_path.c_str(), "wb");
  std::fputs("a,b\n1,2\n", f);
  std::fclose(f);
  LoadConfig config;
  config.mapping = {{"fid", "nope"}};
  EXPECT_FALSE(LoadCsv(engine->get(), "u", "pts", csv_path, config).ok());
}

// --- plugin registry ---

TEST(PluginTest, KnownPlugins) {
  EXPECT_TRUE(IsKnownPlugin("trajectory"));
  EXPECT_TRUE(IsKnownPlugin("point_series"));
  EXPECT_FALSE(IsKnownPlugin("roadmap"));
  EXPECT_FALSE(MakePluginTable("roadmap", "u", "t").ok());
}

TEST(PluginTest, TrajectoryPluginMatchesFigure6) {
  auto table = MakePluginTable("trajectory", "u", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->kind, meta::TableKind::kPlugin);
  // gzip-compressed GPS list; XZ2 + XZ2T indexes (Table III).
  int item = table->ColumnIndex("item");
  ASSERT_GE(item, 0);
  EXPECT_EQ(table->columns[item].compress, "gzip");
  ASSERT_EQ(table->indexes.size(), 2u);
  EXPECT_EQ(table->indexes[0].type, curve::IndexType::kXz2);
  EXPECT_EQ(table->indexes[1].type, curve::IndexType::kXz2T);
}

}  // namespace
}  // namespace just::core
