#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/rng.h"
#include "compress/codec.h"
#include "compress/lz77.h"

namespace just::compress {
namespace {

std::string RandomBytes(Rng* rng, size_t n) {
  std::string s(n, '\0');
  for (char& c : s) c = static_cast<char>(rng->Next() & 0xFF);
  return s;
}

std::string RepetitiveText(size_t n) {
  std::string s;
  while (s.size() < n) {
    s += "the quick brown fox jumps over the lazy dog; ";
  }
  s.resize(n);
  return s;
}

TEST(Lz77Test, EmptyInput) {
  std::string c = Lz77Compress("");
  auto back = Lz77Decompress(c, 0);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(Lz77Test, RoundTripShortStrings) {
  for (const char* s : {"a", "ab", "abc", "aaaa", "abcabcabcabc",
                        "hello world hello world hello"}) {
    std::string c = Lz77Compress(s);
    auto back = Lz77Decompress(c, std::strlen(s));
    ASSERT_TRUE(back.ok()) << s;
    EXPECT_EQ(*back, s);
  }
}

TEST(Lz77Test, RoundTripRandomBinary) {
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    std::string raw = RandomBytes(&rng, rng.Uniform(5000));
    std::string c = Lz77Compress(raw);
    auto back = Lz77Decompress(c, raw.size());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, raw);
  }
}

TEST(Lz77Test, RoundTripLargeRepetitive) {
  std::string raw = RepetitiveText(200000);
  std::string c = Lz77Compress(raw);
  auto back = Lz77Decompress(c, raw.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(Lz77Test, CompressesRepetitiveData) {
  std::string raw = RepetitiveText(50000);
  std::string c = Lz77Compress(raw);
  // gzip-class ratio on this input is huge; ours should be at least 5x.
  EXPECT_LT(c.size(), raw.size() / 5);
}

TEST(Lz77Test, RandomDataDoesNotExplode) {
  Rng rng(2);
  std::string raw = RandomBytes(&rng, 10000);
  std::string c = Lz77Compress(raw);
  // Worst case: 1 flag byte per 8 literals.
  EXPECT_LE(c.size(), raw.size() + raw.size() / 8 + 16);
}

TEST(Lz77Test, OverlappingMatchRuns) {
  // 'aaaa...' forces overlapping copies (offset 1, long length).
  std::string raw(1000, 'a');
  std::string c = Lz77Compress(raw);
  EXPECT_LT(c.size(), 40u);
  auto back = Lz77Decompress(c, raw.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(Lz77Test, DetectsCorruption) {
  std::string raw = RepetitiveText(1000);
  std::string c = Lz77Compress(raw);
  EXPECT_FALSE(Lz77Decompress(c, raw.size() + 5).ok());  // wrong size
  std::string truncated = c.substr(0, c.size() / 2);
  EXPECT_FALSE(Lz77Decompress(truncated, raw.size()).ok());
}

TEST(Lz77Test, RejectsBadOffset) {
  // Hand-craft: flag byte with match bit, offset beyond output.
  std::string bad;
  bad.push_back(0x01);              // first token is a match
  bad.push_back(static_cast<char>(0xFF));  // offset lo
  bad.push_back(0x00);              // offset hi -> offset 256
  bad.push_back(0x00);              // length 3
  EXPECT_FALSE(Lz77Decompress(bad, 3).ok());
}

TEST(CodecTest, Registry) {
  EXPECT_EQ(GetCodec("gzip").value()->name(), "lz77");
  EXPECT_EQ(GetCodec("zip").value()->name(), "lz77");
  EXPECT_EQ(GetCodec("GZIP").value()->name(), "lz77");
  EXPECT_EQ(GetCodec("none").value()->name(), "none");
  EXPECT_EQ(GetCodec("").value()->name(), "none");
  EXPECT_FALSE(GetCodec("lzma").ok());
}

TEST(CodecTest, CellRoundTripBothCodecs) {
  Rng rng(3);
  for (const Codec* codec : {NoneCodec(), Lz77Codec()}) {
    for (int i = 0; i < 20; ++i) {
      std::string raw = RandomBytes(&rng, rng.Uniform(2000));
      std::string cell = EncodeCell(*codec, raw);
      auto back = DecodeCell(cell);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(*back, raw);
    }
  }
}

// The Figure 10a effect: compressing tiny fields makes them *bigger*.
TEST(CodecTest, SmallFieldsGrowUnderCompression) {
  std::string tiny = "order123";  // a few bytes, incompressible
  std::string plain_cell = EncodeCell(*NoneCodec(), tiny);
  std::string gz_cell = EncodeCell(*Lz77Codec(), tiny);
  EXPECT_GE(gz_cell.size(), plain_cell.size());
}

// The Figure 10b effect: big structured fields shrink a lot. (The real
// trajectory path additionally delta-transforms before this codec; see
// TrajectoryTest.CompressedCellMuchSmallerThanRaw.)
TEST(CodecTest, BigFieldsShrinkUnderCompression) {
  // A GPS-list-like payload: slowly varying values.
  std::string raw;
  int64_t v = 1000000;
  for (int i = 0; i < 5000; ++i) {
    v += 3;
    raw.append(reinterpret_cast<const char*>(&v), 8);
  }
  std::string plain_cell = EncodeCell(*NoneCodec(), raw);
  std::string gz_cell = EncodeCell(*Lz77Codec(), raw);
  EXPECT_LT(gz_cell.size(), plain_cell.size() * 6 / 10);
}

TEST(CodecTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeCell("").ok());
  std::string bad;
  bad.push_back(9);  // unknown codec id
  bad.push_back(0);
  EXPECT_FALSE(DecodeCell(bad).ok());
}

}  // namespace
}  // namespace just::compress
