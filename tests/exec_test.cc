#include <gtest/gtest.h>

#include "exec/column_batch.h"
#include "exec/dataframe.h"
#include "exec/memory.h"
#include "exec/operators.h"
#include "exec/value.h"
#include "test_util.h"

namespace just::exec {
namespace {

just::testing::FrameBuilder TestBuilder() {
  just::testing::FrameBuilder b;
  b.Col("id", DataType::kInt)
      .Col("name", DataType::kString)
      .Col("score", DataType::kDouble)
      .Row({Value::Int(1), Value::String("alice"), Value::Double(3.5)})
      .Row({Value::Int(2), Value::String("bob"), Value::Double(1.5)})
      .Row({Value::Int(3), Value::String("carol"), Value::Double(2.5)})
      .Row({Value::Int(4), Value::String("bob"), Value::Double(4.0)});
  return b;
}

std::shared_ptr<Schema> TestSchema() { return TestBuilder().schema(); }

DataFrame TestFrame() { return TestBuilder().Frame(); }

// --- Value ---

TEST(ValueTest, TypeAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).int_value(), 5);
  EXPECT_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Timestamp(123).timestamp_value(), 123);
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_EQ(Value::Int(3).AsDouble().value(), 3.0);
  EXPECT_EQ(Value::Double(2.9).AsInt().value(), 2);
  EXPECT_EQ(Value::Bool(true).AsDouble().value(), 1.0);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
}

TEST(ValueTest, CompareNumericCrossType) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(3.0).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value::Int(1).Hash(), Value::Double(1.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(ValueTest, SerializeRoundTripAllTypes) {
  std::vector<Value> values = {
      Value::Null(),
      Value::Bool(true),
      Value::Int(-42),
      Value::Double(3.14159),
      Value::String("hello"),
      Value::Timestamp(1393632000000LL),
      Value::GeometryVal(geo::Geometry::MakePoint({116.4, 39.9})),
  };
  std::string buf;
  for (const Value& v : values) v.SerializeTo(&buf);
  const char* p = buf.data();
  const char* limit = p + buf.size();
  for (const Value& v : values) {
    auto back = Value::Deserialize(&p, limit);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back->Equals(v)) << v.ToString();
  }
  EXPECT_EQ(p, limit);
}

TEST(ValueTest, TrajectorySerializeRoundTrip) {
  auto t = std::make_shared<const traj::Trajectory>(
      "oid1", std::vector<traj::GpsPoint>{{{116.4, 39.9}, 1000},
                                          {{116.41, 39.91}, 2000}});
  Value v = Value::TrajectoryVal(t);
  std::string buf;
  v.SerializeTo(&buf);
  const char* p = buf.data();
  auto back = Value::Deserialize(&p, buf.data() + buf.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->trajectory_value()->oid(), "oid1");
  EXPECT_EQ(back->trajectory_value()->size(), 2u);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Timestamp(0).ToString(), "1970-01-01 00:00:00");
}

TEST(ValueTest, ParseDataTypeNames) {
  EXPECT_EQ(ParseDataType("integer").value(), DataType::kInt);
  EXPECT_EQ(ParseDataType("point").value(), DataType::kGeometry);
  EXPECT_EQ(ParseDataType("st_series").value(), DataType::kTrajectory);
  EXPECT_EQ(ParseDataType("DATE").value(), DataType::kTimestamp);
  EXPECT_FALSE(ParseDataType("blob").ok());
}

// --- Schema / DataFrame ---

TEST(SchemaTest, IndexOfCaseInsensitive) {
  Schema s({{"Fid", DataType::kInt}, {"geom", DataType::kGeometry}});
  EXPECT_EQ(s.IndexOf("fid"), 0);
  EXPECT_EQ(s.IndexOf("GEOM"), 1);
  EXPECT_EQ(s.IndexOf("missing"), -1);
}

TEST(DataFrameTest, DisplayString) {
  DataFrame df = TestFrame();
  std::string out = df.ToDisplayString(2);
  EXPECT_NE(out.find("alice"), std::string::npos);
  EXPECT_NE(out.find("(2 more rows)"), std::string::npos);
  EXPECT_EQ(out.find("carol"), std::string::npos);  // truncated
}

TEST(DataFrameTest, ApproxBytesGrowsWithRows) {
  DataFrame small = TestFrame();
  DataFrame big(TestSchema());
  for (int i = 0; i < 100; ++i) {
    big.AddRow({Value::Int(i), Value::String("user" + std::to_string(i)),
                Value::Double(i)});
  }
  EXPECT_GT(big.ApproxBytes(), small.ApproxBytes());
}

// --- Operators ---

TEST(OperatorsTest, Filter) {
  DataFrame out = Filter(TestFrame(), [](const Row& row) {
    return row[2].double_value() > 2.0;
  });
  EXPECT_EQ(out.num_rows(), 3u);
}

TEST(OperatorsTest, ProjectReordersColumns) {
  auto out = Project(TestFrame(), {"score", "id"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().field(0).name, "score");
  EXPECT_EQ(out->rows()[0][1].int_value(), 1);
  EXPECT_FALSE(Project(TestFrame(), {"nope"}).ok());
}

TEST(OperatorsTest, SortMultiKey) {
  auto out = Sort(TestFrame(), {{"name", true}, {"score", false}});
  ASSERT_TRUE(out.ok());
  // alice, bob(4.0), bob(1.5), carol.
  EXPECT_EQ(out->rows()[0][1].string_value(), "alice");
  EXPECT_EQ(out->rows()[1][2].double_value(), 4.0);
  EXPECT_EQ(out->rows()[2][2].double_value(), 1.5);
  EXPECT_EQ(out->rows()[3][1].string_value(), "carol");
}

TEST(OperatorsTest, SortDescending) {
  auto out = Sort(TestFrame(), {{"score", false}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows()[0][2].double_value(), 4.0);
  EXPECT_EQ(out->rows()[3][2].double_value(), 1.5);
}

TEST(OperatorsTest, Limit) {
  EXPECT_EQ(Limit(TestFrame(), 2).num_rows(), 2u);
  EXPECT_EQ(Limit(TestFrame(), 100).num_rows(), 4u);
  EXPECT_EQ(Limit(TestFrame(), 0).num_rows(), 0u);
}

TEST(OperatorsTest, GroupByWithAggregates) {
  auto out = GroupBy(TestFrame(), {"name"},
                     {{AggFunc::kCount, "", "cnt"},
                      {AggFunc::kSum, "score", "total"},
                      {AggFunc::kMax, "score", "best"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);
  // Find bob's row.
  for (const Row& row : out->rows()) {
    if (row[0].string_value() == "bob") {
      EXPECT_EQ(row[1].int_value(), 2);
      EXPECT_EQ(row[2].double_value(), 5.5);
      EXPECT_EQ(row[3].double_value(), 4.0);
    }
  }
}

TEST(OperatorsTest, GlobalAggregateOnEmptyInput) {
  DataFrame empty(TestSchema());
  auto out = GroupBy(empty, {}, {{AggFunc::kCount, "", "cnt"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->rows()[0][0].int_value(), 0);
}

TEST(OperatorsTest, AvgAndMin) {
  auto out = GroupBy(TestFrame(), {},
                     {{AggFunc::kAvg, "score", "avg"},
                      {AggFunc::kMin, "score", "min"}});
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->rows()[0][0].double_value(), 11.5 / 4, 1e-9);
  EXPECT_EQ(out->rows()[0][1].double_value(), 1.5);
}

TEST(OperatorsTest, HashJoin) {
  auto right_schema = std::make_shared<Schema>();
  right_schema->AddField({"name", DataType::kString});
  right_schema->AddField({"dept", DataType::kString});
  DataFrame right(right_schema);
  right.AddRow({Value::String("bob"), Value::String("eng")});
  right.AddRow({Value::String("carol"), Value::String("ops")});

  auto out = HashJoin(TestFrame(), right, "name", "name");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);  // bob x2, carol x1
  // Clashing column renamed.
  EXPECT_GE(out->schema().IndexOf("name_r"), 0);
}

TEST(OperatorsTest, FlatMapExpandsRows) {
  auto out_schema = std::make_shared<Schema>();
  out_schema->AddField({"id", DataType::kInt});
  DataFrame out = FlatMapRows(TestFrame(), out_schema, [](const Row& row) {
    std::vector<Row> expanded;
    for (int i = 0; i < row[0].int_value(); ++i) {
      expanded.push_back({row[0]});
    }
    return expanded;
  });
  EXPECT_EQ(out.num_rows(), 1u + 2 + 3 + 4);
}

TEST(OperatorsTest, UnionRequiresMatchingSchema) {
  auto ok = Union(TestFrame(), TestFrame());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_rows(), 8u);
  auto other_schema = std::make_shared<Schema>();
  other_schema->AddField({"x", DataType::kInt});
  DataFrame other(other_schema);
  EXPECT_FALSE(Union(TestFrame(), other).ok());
}

// --- ColumnBatch ---

TEST(ColumnBatchTest, TypedStorageSelection) {
  DataFrame df = TestFrame();
  ColumnBatch batch = ColumnBatch::FromDataFrame(df);
  ASSERT_EQ(batch.num_rows(), 4u);
  EXPECT_EQ(batch.column(0).storage(), ColumnVector::Storage::kInt64);
  EXPECT_EQ(batch.column(1).storage(), ColumnVector::Storage::kString);
  EXPECT_EQ(batch.column(2).storage(), ColumnVector::Storage::kDouble);
  EXPECT_EQ(batch.column(0).Int64At(2), 3);
  EXPECT_EQ(batch.column(2).DoubleAt(3), 4.0);

  batch.SetSelection({1, 3});
  EXPECT_EQ(batch.num_active(), 2u);
  DataFrame out = batch.ToDataFrame();
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.rows()[0][1].string_value(), "bob");
  EXPECT_EQ(out.rows()[1][2].double_value(), 4.0);
}

TEST(ColumnBatchTest, NullBitmapRoundTrip) {
  just::testing::FrameBuilder b;
  b.Col("x", DataType::kInt)
      .Row({Value::Int(1)})
      .Row({Value::Null()})
      .Row({Value::Int(3)});
  ColumnBatch batch = ColumnBatch::FromDataFrame(b.Frame());
  EXPECT_EQ(batch.column(0).storage(), ColumnVector::Storage::kInt64);
  EXPECT_TRUE(batch.column(0).has_nulls());
  EXPECT_FALSE(batch.column(0).IsNull(0));
  EXPECT_TRUE(batch.column(0).IsNull(1));
  DataFrame out = batch.ToDataFrame();
  EXPECT_TRUE(out.rows()[1][0].is_null());
  EXPECT_EQ(out.rows()[2][0].int_value(), 3);
}

TEST(ColumnBatchTest, MixedTypesDegradeToObjectStorage) {
  just::testing::FrameBuilder b;
  b.Col("x", DataType::kInt)
      .Row({Value::Int(1)})
      .Row({Value::Double(2.5)});  // runtime type strays from declared
  ColumnBatch batch = ColumnBatch::FromDataFrame(b.Frame());
  EXPECT_EQ(batch.column(0).storage(), ColumnVector::Storage::kObject);
  // The exact per-row Values survive (no silent coercion).
  EXPECT_EQ(batch.column(0).ValueAt(0).type(), DataType::kInt);
  EXPECT_EQ(batch.column(0).ValueAt(1).double_value(), 2.5);
}

TEST(ColumnBatchTest, DeclaredTypeAwareValueAt) {
  just::testing::FrameBuilder b;
  b.Col("flag", DataType::kBool)
      .Col("t", DataType::kTimestamp)
      .Row({Value::Bool(true), Value::Timestamp(1000)});
  ColumnBatch batch = ColumnBatch::FromDataFrame(b.Frame());
  EXPECT_EQ(batch.column(0).ValueAt(0).type(), DataType::kBool);
  EXPECT_TRUE(batch.column(0).ValueAt(0).bool_value());
  EXPECT_EQ(batch.column(1).ValueAt(0).type(), DataType::kTimestamp);
  EXPECT_EQ(batch.column(1).ValueAt(0).timestamp_value(), 1000);
}

TEST(ColumnBatchTest, GatherCompactsSurvivors) {
  ColumnBatch batch = ColumnBatch::FromDataFrame(TestFrame());
  const uint32_t rows[] = {0, 2};
  ColumnVector names = batch.column(1).Gather(rows, 2);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names.StringAt(0), "alice");
  EXPECT_EQ(names.StringAt(1), "carol");

  std::vector<ColumnVector> cols;
  cols.push_back(std::move(names));
  auto schema = std::make_shared<Schema>();
  schema->AddField({"name", DataType::kString});
  ColumnBatch packed = ColumnBatch::FromColumns(schema, std::move(cols), 2);
  EXPECT_EQ(packed.num_active(), 2u);
  EXPECT_FALSE(packed.has_selection());
}

TEST(ColumnBatchTest, BatchVectorChunksAtBatchRows) {
  DataFrame df(TestSchema());
  const size_t n = kBatchRows + 10;
  for (size_t i = 0; i < n; ++i) {
    df.AddRow({Value::Int(static_cast<int64_t>(i)), Value::String("u"),
               Value::Double(static_cast<double>(i))});
  }
  BatchVector batches = BatchesFromDataFrame(std::move(df));
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].num_rows(), kBatchRows);
  EXPECT_EQ(batches[1].num_rows(), 10u);
  EXPECT_EQ(BatchesActiveRows(batches), n);
  DataFrame back = BatchesToDataFrame(TestSchema(), batches);
  ASSERT_EQ(back.num_rows(), n);
  EXPECT_EQ(back.rows()[n - 1][0].int_value(),
            static_cast<int64_t>(n - 1));
}

// --- MemoryBudget ---

TEST(MemoryBudgetTest, ChargesAndReleases) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.Charge(60).ok());
  EXPECT_TRUE(budget.Charge(40).ok());
  Status st = budget.Charge(1);
  EXPECT_TRUE(st.IsResourceExhausted());
  budget.Release(50);
  EXPECT_TRUE(budget.Charge(30).ok());
  EXPECT_EQ(budget.used(), 80u);
}

TEST(MemoryBudgetTest, ZeroMeansUnlimited) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.Charge(SIZE_MAX / 2).ok());
}

TEST(MemoryBudgetTest, FailedChargeDoesNotLeak) {
  MemoryBudget budget(10);
  EXPECT_FALSE(budget.Charge(11).ok());
  EXPECT_EQ(budget.used(), 0u);
}

}  // namespace
}  // namespace just::exec
