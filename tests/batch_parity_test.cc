// Differential tests of the columnar execution path against the interpreted
// row-at-a-time oracle. Two layers:
//
//  1. PredicateProgram vs BoundExpr::EvalBool on hand-built and randomized
//     frames (NULLs, mixed int/double columns, strings, constant folding,
//     interpreted fallback shapes) — the program must keep exactly the rows
//     the tree-walking evaluator keeps.
//  2. Full SQL statements executed twice through the engine, once with
//     ExecOptions{force_interpreted} and once on the default vectorized
//     path — the frames must match row for row.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/column_batch.h"
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/expr_eval.h"
#include "sql/justql.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/predicate_program.h"
#include "test_util.h"
#include "workload/generators.h"

namespace just::sql {
namespace {

using just::testing::FrameBuilder;
using just::testing::TempDir;

Statement ParsePred(const std::string& pred) {
  auto stmt = ParseStatement("SELECT * FROM t WHERE " + pred);
  EXPECT_TRUE(stmt.ok()) << pred << " -> " << stmt.status().ToString();
  return std::move(*stmt);
}

/// Row-at-a-time oracle: EvaluateExpr with the Filter conventions (NULL is
/// false, evaluation errors drop the row).
std::vector<uint32_t> OracleFilter(const Expr& pred,
                                   const exec::DataFrame& frame) {
  std::vector<uint32_t> kept;
  for (size_t i = 0; i < frame.num_rows(); ++i) {
    auto v = EvaluateExpr(pred, frame.schema(), frame.rows()[i]);
    if (v.ok() && !v->is_null() && v->type() == exec::DataType::kBool &&
        v->bool_value()) {
      kept.push_back(static_cast<uint32_t>(i));
    }
  }
  return kept;
}

/// Vectorized path: compile once, run over the batched frame, flatten the
/// surviving selections back to global row numbers.
std::vector<uint32_t> VectorizedFilter(const Expr& pred,
                                       const exec::DataFrame& frame) {
  auto program = PredicateProgram::Compile(pred, frame.schema());
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  if (!program.ok()) return {};
  exec::BatchVector batches = exec::BatchesFromDataFrame(frame);
  std::vector<uint32_t> kept;
  uint32_t base = 0;
  for (exec::ColumnBatch& batch : batches) {
    uint32_t rows = static_cast<uint32_t>(batch.num_rows());
    EXPECT_TRUE((*program)->Run(&batch).ok());
    if (batch.has_selection()) {
      for (uint32_t row : batch.selection()) kept.push_back(base + row);
    } else {
      for (uint32_t row = 0; row < rows; ++row) kept.push_back(base + row);
    }
    base += rows;
  }
  return kept;
}

void ExpectParity(const std::string& pred, const exec::DataFrame& frame) {
  Statement stmt = ParsePred(pred);
  const Expr& where = *stmt.select->where;
  EXPECT_EQ(OracleFilter(where, frame), VectorizedFilter(where, frame))
      << "predicate: " << pred;
}

exec::DataFrame TypedFrame() {
  FrameBuilder b;
  b.Col("id", exec::DataType::kInt)
      .Col("score", exec::DataType::kDouble)
      .Col("name", exec::DataType::kString)
      .Col("t", exec::DataType::kTimestamp);
  for (int i = 0; i < 50; ++i) {
    exec::Value id = (i % 7 == 3) ? exec::Value::Null() : exec::Value::Int(i);
    exec::Value score = (i % 11 == 5) ? exec::Value::Null()
                                      : exec::Value::Double(i * 0.5 - 3.0);
    b.Row({std::move(id), std::move(score),
           exec::Value::String(i % 2 ? "odd" : "even"),
           exec::Value::Timestamp(1000 + i * 10)});
  }
  return b.Frame();
}

TEST(PredicateParityTest, NumericComparisonsWithNulls) {
  exec::DataFrame frame = TypedFrame();
  for (const char* pred :
       {"id = 21", "id != 21", "id < 10", "id <= 10", "id > 40", "id >= 40",
        "score < 0.0", "score >= 12.5", "id BETWEEN 5 AND 15",
        "score BETWEEN -1.0 AND 4.0", "id > 3 AND score < 20.0",
        "id >= 0 AND id <= 49 AND score > -100.0"}) {
    ExpectParity(pred, frame);
  }
}

TEST(PredicateParityTest, StringAndCrossColumn) {
  exec::DataFrame frame = TypedFrame();
  for (const char* pred :
       {"name = 'odd'", "name != 'even'", "name < 'f'", "id = score",
        "id < score", "name = 'odd' AND id > 25"}) {
    ExpectParity(pred, frame);
  }
}

TEST(PredicateParityTest, ConstantFolding) {
  exec::DataFrame frame = TypedFrame();
  ExpectParity("1 = 1 AND id > 10", frame);   // const-true conjunct drops out
  ExpectParity("1 = 2 AND id > 10", frame);   // whole program folds to false
  ExpectParity("id = 2 + 3 * 4", frame);      // constant subtree folds
  Statement stmt = ParsePred("1 = 2");
  auto program = PredicateProgram::Compile(*stmt.select->where,
                                           frame.schema());
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE((*program)->fully_specialized());
}

TEST(PredicateParityTest, FallbackShapesStayCorrect) {
  exec::DataFrame frame = TypedFrame();
  // Arithmetic over columns has no specialized kernel: it must run through
  // the interpreted fallback step and still agree with the oracle.
  Statement stmt = ParsePred("id + 1 > 10");
  auto program =
      PredicateProgram::Compile(*stmt.select->where, frame.schema());
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE((*program)->fully_specialized());
  EXPECT_STREQ((*program)->ModeLabel(), "interpreted");
  for (const char* pred :
       {"id + 1 > 10", "score * 2.0 < id", "id / 2 = 5 AND score > 0.0"}) {
    ExpectParity(pred, frame);
  }
  // Mixed specialized + fallback steps -> "partial".
  Statement mixed = ParsePred("id > 3 AND id + 1 > 10");
  auto partial =
      PredicateProgram::Compile(*mixed.select->where, frame.schema());
  ASSERT_TRUE(partial.ok());
  EXPECT_STREQ((*partial)->ModeLabel(), "partial");
}

TEST(PredicateParityTest, MixedIntDoubleColumnDegradesAndAgrees) {
  // A column whose runtime values mix int and double degrades to object
  // storage; comparisons must match Value::Compare's cross-type ordering.
  FrameBuilder b;
  b.Col("x", exec::DataType::kInt);
  for (int i = 0; i < 30; ++i) {
    if (i % 5 == 0) {
      b.Row({exec::Value::Null()});
    } else if (i % 2 == 0) {
      b.Row({exec::Value::Int(i - 10)});
    } else {
      b.Row({exec::Value::Double(i * 0.7 - 9.5)});
    }
  }
  exec::DataFrame frame = b.Frame();
  for (const char* pred : {"x = 2", "x < 0", "x >= 2.5", "x != 4",
                           "x BETWEEN -3 AND 6", "x BETWEEN -2.5 AND 5.5"}) {
    ExpectParity(pred, frame);
  }
}

TEST(PredicateParityTest, RandomizedDifferential) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> val(-20, 20);
  std::uniform_int_distribution<int> pick(0, 9);
  FrameBuilder b;
  b.Col("a", exec::DataType::kInt).Col("b", exec::DataType::kDouble);
  for (int i = 0; i < 500; ++i) {
    exec::Value a =
        pick(rng) == 0 ? exec::Value::Null() : exec::Value::Int(val(rng));
    exec::Value bv = pick(rng) == 0 ? exec::Value::Null()
                                    : exec::Value::Double(val(rng) * 0.25);
    b.Row({std::move(a), std::move(bv)});
  }
  exec::DataFrame frame = b.Frame();
  const char* cmps[] = {"=", "!=", "<", "<=", ">", ">="};
  for (int trial = 0; trial < 40; ++trial) {
    std::string pred = std::string("a ") + cmps[trial % 6] + " " +
                       std::to_string(val(rng));
    if (trial % 2) {
      pred += " AND b " + std::string(cmps[(trial + 3) % 6]) + " " +
              std::to_string(val(rng) * 0.25);
    }
    ExpectParity(pred, frame);
  }
}

TEST(PredicateProgramCacheTest, HitsMissesEvictions) {
  PredicateProgramCache cache(2);
  exec::DataFrame frame = TypedFrame();
  Statement s1 = ParsePred("id > 1");
  Statement s2 = ParsePred("id > 2");
  Statement s3 = ParsePred("id > 3");
  std::vector<const Expr*> c1 = {s1.select->where.get()};
  std::vector<const Expr*> c2 = {s2.select->where.get()};
  std::vector<const Expr*> c3 = {s3.select->where.get()};
  ASSERT_TRUE(cache.GetOrCompile(c1, frame.schema()).ok());
  ASSERT_TRUE(cache.GetOrCompile(c1, frame.schema()).ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  ASSERT_TRUE(cache.GetOrCompile(c2, frame.schema()).ok());
  ASSERT_TRUE(cache.GetOrCompile(c3, frame.schema()).ok());  // evicts c1
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.GetOrCompile(c1, frame.schema()).ok());  // miss again
  EXPECT_EQ(cache.misses(), 4u);
}

// --- End-to-end: vectorized executor vs forced-interpreted executor ---

class ExecutorParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("batch_parity");
    core::EngineOptions options;
    options.data_dir = dir_->path();
    options.num_servers = 2;
    options.num_shards = 4;
    auto engine = core::JustEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).value();

    JustQL ql(engine_.get());
    auto created = ql.Execute(
        "tester",
        "CREATE TABLE orders (fid string:primary key, city string, "
        "time date, geom point:srid=4326) "
        "USERDATA {'just.attr.indexes':'city'}");
    ASSERT_TRUE(created.ok()) << created.status().ToString();

    workload::OrderOptions opts;
    opts.num_orders = 600;
    int i = 0;
    for (const auto& order : workload::GenerateOrders(opts)) {
      exec::Row row = {
          exec::Value::String(order.fid),
          exec::Value::String("city" + std::to_string(i++ % 4)),
          exec::Value::Timestamp(order.time),
          exec::Value::GeometryVal(geo::Geometry::MakePoint(order.point))};
      ASSERT_TRUE(engine_->Insert("tester", "orders", row).ok());
    }
    ASSERT_TRUE(engine_->Finalize().ok());
  }

  /// Runs `sql` on both executors and requires identical frames.
  void ExpectSameResult(const std::string& sql) {
    auto run = [&](bool interpreted) -> Result<exec::DataFrame> {
      auto stmt = ParseStatement(sql);
      if (!stmt.ok()) return stmt.status();
      Analyzer analyzer(engine_.get(), "tester");
      JUST_ASSIGN_OR_RETURN(auto plan, analyzer.Analyze(*stmt->select));
      JUST_ASSIGN_OR_RETURN(plan, Optimize(std::move(plan)));
      Executor executor(engine_.get(), "tester",
                        ExecOptions{.force_interpreted = interpreted});
      return executor.Execute(*plan);
    };
    auto interpreted = run(true);
    auto vectorized = run(false);
    ASSERT_TRUE(interpreted.ok()) << sql << " -> "
                                  << interpreted.status().ToString();
    ASSERT_TRUE(vectorized.ok()) << sql << " -> "
                                 << vectorized.status().ToString();
    ASSERT_EQ(interpreted->num_rows(), vectorized->num_rows()) << sql;
    ASSERT_EQ(interpreted->schema().ToString(),
              vectorized->schema().ToString())
        << sql;
    for (size_t r = 0; r < interpreted->num_rows(); ++r) {
      const exec::Row& a = interpreted->rows()[r];
      const exec::Row& e = vectorized->rows()[r];
      ASSERT_EQ(a.size(), e.size());
      for (size_t c = 0; c < a.size(); ++c) {
        EXPECT_TRUE(a[c].Equals(e[c]))
            << sql << " row " << r << " col " << c << ": "
            << a[c].ToString() << " vs " << e[c].ToString();
      }
    }
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<core::JustEngine> engine_;
};

TEST_F(ExecutorParityTest, ScansFiltersProjectionsAggregates) {
  ExpectSameResult("SELECT * FROM orders");
  ExpectSameResult("SELECT fid, city FROM orders");
  ExpectSameResult(
      "SELECT fid FROM orders WHERE geom WITHIN "
      "st_makeMBR(116.30, 39.80, 116.45, 39.95)");
  ExpectSameResult(
      "SELECT fid, time FROM orders WHERE geom WITHIN "
      "st_makeMBR(116.30, 39.80, 116.45, 39.95) AND city = 'city1'");
  ExpectSameResult("SELECT fid FROM orders WHERE city = 'city2'");
  ExpectSameResult("SELECT count(*) AS n FROM orders");
  ExpectSameResult(
      "SELECT count(*) AS n, min(time) AS lo, max(time) AS hi FROM orders "
      "WHERE city = 'city3'");
  ExpectSameResult("SELECT fid FROM orders WHERE city != 'city0'");
  ExpectSameResult(
      "SELECT fid FROM orders WHERE city = 'city1' AND fid < 'order_0005'");
}

TEST_F(ExecutorParityTest, RowOnlyOperatorsStillWork) {
  // Sort/limit and grouped aggregation cross the batch->row boundary.
  ExpectSameResult("SELECT fid FROM orders ORDER BY time LIMIT 10");
  ExpectSameResult(
      "SELECT city, count(*) AS n FROM orders GROUP BY city ORDER BY city");
}

}  // namespace
}  // namespace just::sql
