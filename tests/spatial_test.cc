#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "spatial/grid_index.h"
#include "spatial/quadtree.h"
#include "spatial/rtree.h"

namespace just::spatial {
namespace {

std::vector<SpatialEntry> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<SpatialEntry> entries;
  for (int i = 0; i < n; ++i) {
    double lng = rng.Uniform(116.0, 117.0);
    double lat = rng.Uniform(39.0, 40.0);
    entries.push_back(SpatialEntry{geo::Mbr::Of(lng, lat, lng, lat),
                                   static_cast<uint64_t>(i)});
  }
  return entries;
}

std::set<uint64_t> BruteForceQuery(const std::vector<SpatialEntry>& entries,
                                   const geo::Mbr& query) {
  std::set<uint64_t> out;
  for (const auto& e : entries) {
    if (e.box.Intersects(query)) out.insert(e.id);
  }
  return out;
}

std::vector<uint64_t> BruteForceKnn(const std::vector<SpatialEntry>& entries,
                                    const geo::Point& q, int k) {
  std::vector<SpatialEntry> sorted = entries;
  std::sort(sorted.begin(), sorted.end(),
            [&](const SpatialEntry& a, const SpatialEntry& b) {
              return a.box.MinDistance(q) < b.box.MinDistance(q);
            });
  std::vector<uint64_t> out;
  for (int i = 0; i < k && i < static_cast<int>(sorted.size()); ++i) {
    out.push_back(sorted[i].id);
  }
  return out;
}

// Parameterized across the three index structures via a thin adapter.
enum class IndexKind { kRTree, kQuadTree, kGrid };

struct IndexAdapter {
  IndexKind kind;
  StrRTree rtree;
  QuadTree quadtree{geo::Mbr::Of(116.0, 39.0, 117.0, 40.0), 32, 12};
  GridIndex grid{geo::Mbr::Of(116.0, 39.0, 117.0, 40.0), 64};

  explicit IndexAdapter(IndexKind k) : kind(k) {}

  void Load(std::vector<SpatialEntry> entries) {
    switch (kind) {
      case IndexKind::kRTree:
        rtree.BulkLoad(std::move(entries));
        break;
      case IndexKind::kQuadTree:
        for (const auto& e : entries) quadtree.Insert(e);
        break;
      case IndexKind::kGrid:
        for (const auto& e : entries) grid.Insert(e);
        break;
    }
  }

  std::set<uint64_t> Query(const geo::Mbr& box) {
    std::set<uint64_t> out;
    auto collect = [&](const SpatialEntry& e) { out.insert(e.id); };
    switch (kind) {
      case IndexKind::kRTree:
        rtree.Query(box, collect);
        break;
      case IndexKind::kQuadTree:
        quadtree.Query(box, collect);
        break;
      case IndexKind::kGrid:
        grid.Query(box, collect);
        break;
    }
    return out;
  }

  std::vector<SpatialEntry> Knn(const geo::Point& q, int k) {
    switch (kind) {
      case IndexKind::kRTree:
        return rtree.Knn(q, k);
      case IndexKind::kQuadTree:
        return quadtree.Knn(q, k);
      case IndexKind::kGrid:
        return grid.Knn(q, k);
    }
    return {};
  }

  size_t MemoryBytes() {
    switch (kind) {
      case IndexKind::kRTree:
        return rtree.MemoryBytes();
      case IndexKind::kQuadTree:
        return quadtree.MemoryBytes();
      case IndexKind::kGrid:
        return grid.MemoryBytes();
    }
    return 0;
  }
};

class SpatialIndexTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(SpatialIndexTest, BoxQueryMatchesBruteForce) {
  auto entries = RandomPoints(2000, 1);
  IndexAdapter index(GetParam());
  index.Load(entries);
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    double lng = rng.Uniform(116.0, 116.9);
    double lat = rng.Uniform(39.0, 39.9);
    geo::Mbr query = geo::Mbr::Of(lng, lat, lng + rng.Uniform(0.01, 0.3),
                                  lat + rng.Uniform(0.01, 0.3));
    EXPECT_EQ(index.Query(query), BruteForceQuery(entries, query));
  }
}

TEST_P(SpatialIndexTest, KnnMatchesBruteForceDistances) {
  auto entries = RandomPoints(1000, 3);
  IndexAdapter index(GetParam());
  index.Load(entries);
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    geo::Point q{rng.Uniform(116.0, 117.0), rng.Uniform(39.0, 40.0)};
    int k = 1 + static_cast<int>(rng.Uniform(20));
    auto got = index.Knn(q, k);
    auto expected = BruteForceKnn(entries, q, k);
    ASSERT_EQ(got.size(), expected.size());
    // Compare distances (ids may differ on ties).
    for (size_t i = 0; i < got.size(); ++i) {
      double got_d = got[i].box.MinDistance(q);
      geo::Mbr ebox;
      for (const auto& e : entries) {
        if (e.id == expected[i]) ebox = e.box;
      }
      EXPECT_NEAR(got_d, ebox.MinDistance(q), 1e-12);
    }
  }
}

TEST_P(SpatialIndexTest, EmptyIndexBehaves) {
  IndexAdapter index(GetParam());
  index.Load({});
  EXPECT_TRUE(index.Query(geo::Mbr::Of(116, 39, 117, 40)).empty());
  EXPECT_TRUE(index.Knn(geo::Point{116.5, 39.5}, 5).empty());
}

TEST_P(SpatialIndexTest, ReportsMemory) {
  IndexAdapter index(GetParam());
  index.Load(RandomPoints(5000, 5));
  EXPECT_GT(index.MemoryBytes(), 5000u * sizeof(SpatialEntry) / 2);
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, SpatialIndexTest,
                         ::testing::Values(IndexKind::kRTree,
                                           IndexKind::kQuadTree,
                                           IndexKind::kGrid),
                         [](const ::testing::TestParamInfo<IndexKind>& info) {
                           switch (info.param) {
                             case IndexKind::kRTree:
                               return "RTree";
                             case IndexKind::kQuadTree:
                               return "QuadTree";
                             case IndexKind::kGrid:
                               return "Grid";
                           }
                           return "?";
                         });

TEST(RTreeTest, HandlesExtentObjects) {
  Rng rng(6);
  std::vector<SpatialEntry> entries;
  for (int i = 0; i < 500; ++i) {
    double lng = rng.Uniform(116.0, 116.9);
    double lat = rng.Uniform(39.0, 39.9);
    entries.push_back(
        SpatialEntry{geo::Mbr::Of(lng, lat, lng + rng.Uniform(0.0, 0.1),
                                  lat + rng.Uniform(0.0, 0.1)),
                     static_cast<uint64_t>(i)});
  }
  StrRTree tree;
  tree.BulkLoad(entries);
  geo::Mbr query = geo::Mbr::Of(116.4, 39.4, 116.5, 39.5);
  std::set<uint64_t> got;
  tree.Query(query, [&](const SpatialEntry& e) { got.insert(e.id); });
  EXPECT_EQ(got, BruteForceQuery(entries, query));
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  StrRTree tree(16);
  tree.BulkLoad(RandomPoints(10000, 7));
  EXPECT_GE(tree.height(), 3);
  EXPECT_LE(tree.height(), 5);
}

TEST(QuadTreeTest, SplitsUnderLoad) {
  QuadTree tree(geo::Mbr::Of(116.0, 39.0, 117.0, 40.0), 8, 12);
  auto entries = RandomPoints(1000, 8);
  for (const auto& e : entries) tree.Insert(e);
  EXPECT_EQ(tree.size(), 1000u);
  geo::Mbr query = geo::Mbr::Of(116.2, 39.2, 116.4, 39.4);
  std::set<uint64_t> got;
  tree.Query(query, [&](const SpatialEntry& e) { got.insert(e.id); });
  EXPECT_EQ(got, BruteForceQuery(entries, query));
}

TEST(GridIndexTest, DeduplicatesSpanningEntries) {
  GridIndex grid(geo::Mbr::Of(116.0, 39.0, 117.0, 40.0), 16);
  // An entry spanning many cells must be reported once.
  grid.Insert(SpatialEntry{geo::Mbr::Of(116.1, 39.1, 116.9, 39.9), 1});
  int count = 0;
  grid.Query(geo::Mbr::Of(116.0, 39.0, 117.0, 40.0),
             [&](const SpatialEntry&) { ++count; });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace just::spatial
