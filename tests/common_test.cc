#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/json.h"
#include "common/lru_cache.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/time_util.h"

namespace just {
namespace {

// --- Status / Result ---

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing row");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.ToString(), "NotFound: missing row");
}

TEST(StatusTest, ResourceExhaustedPredicate) {
  EXPECT_TRUE(Status::ResourceExhausted("oom").IsResourceExhausted());
  EXPECT_FALSE(Status::IOError("io").IsResourceExhausted());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto fn = [](bool fail) -> Result<int> {
    auto inner = [&]() -> Result<int> {
      if (fail) return Status::Internal("boom");
      return 7;
    };
    JUST_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_EQ(fn(false).value(), 8);
  EXPECT_FALSE(fn(true).ok());
}

// --- bytes ---

TEST(BytesTest, Fixed64BigEndianRoundTrip) {
  std::string buf;
  PutFixed64BE(&buf, 0x0102030405060708ull);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x01);
  EXPECT_EQ(GetFixed64BE(buf.data()), 0x0102030405060708ull);
}

TEST(BytesTest, Fixed64BigEndianPreservesOrder) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next();
    std::string sa, sb;
    PutFixed64BE(&sa, a);
    PutFixed64BE(&sb, b);
    EXPECT_EQ(a < b, sa < sb) << a << " vs " << b;
  }
}

TEST(BytesTest, VarintRoundTrip) {
  Rng rng(2);
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384, UINT64_MAX};
  for (int i = 0; i < 100; ++i) values.push_back(rng.Next());
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  const char* p = buf.data();
  const char* limit = p + buf.size();
  for (uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&p, limit, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(p, limit);
}

TEST(BytesTest, VarintRejectsTruncated) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  const char* p = buf.data();
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&p, buf.data() + buf.size(), &v));
}

TEST(BytesTest, ZigZagRoundTrip) {
  for (int64_t v :
       {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-123456789},
        INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(BytesTest, SignedVarintRoundTrip) {
  std::string buf;
  std::vector<int64_t> values = {0, -1, 1, 1000000, -1000000, INT64_MIN,
                                 INT64_MAX};
  for (int64_t v : values) PutVarintSigned(&buf, v);
  const char* p = buf.data();
  const char* limit = p + buf.size();
  for (int64_t v : values) {
    int64_t decoded;
    ASSERT_TRUE(GetVarintSigned(&p, limit, &decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  const char* p = buf.data();
  const char* limit = p + buf.size();
  std::string_view s;
  ASSERT_TRUE(GetLengthPrefixed(&p, limit, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&p, limit, &s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(&p, limit, &s));
  EXPECT_EQ(s.size(), 1000u);
}

TEST(BytesTest, OrderedDoubleRoundTripAndOrder) {
  std::vector<double> values = {-1e300, -42.5, -1.0, -1e-10, 0.0,
                                1e-10,  1.0,   3.14, 42.5,   1e300};
  for (double d : values) {
    EXPECT_EQ(OrderedBitsToDouble(OrderedDoubleBits(d)), d);
  }
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(OrderedDoubleBits(values[i - 1]), OrderedDoubleBits(values[i]));
  }
}

// --- time ---

TEST(TimeTest, PeriodNumberFloorSemantics) {
  EXPECT_EQ(TimePeriodNumber(0, kMillisPerDay), 0);
  EXPECT_EQ(TimePeriodNumber(kMillisPerDay - 1, kMillisPerDay), 0);
  EXPECT_EQ(TimePeriodNumber(kMillisPerDay, kMillisPerDay), 1);
  EXPECT_EQ(TimePeriodNumber(-1, kMillisPerDay), -1);
  EXPECT_EQ(TimePeriodNumber(-kMillisPerDay, kMillisPerDay), -1);
}

TEST(TimeTest, PeriodStartInverse) {
  TimestampMs t = 1234567890123;
  int64_t num = TimePeriodNumber(t, kMillisPerWeek);
  EXPECT_LE(TimePeriodStart(num, kMillisPerWeek), t);
  EXPECT_GT(TimePeriodStart(num + 1, kMillisPerWeek), t);
}

TEST(TimeTest, ParseKnownEpochDates) {
  EXPECT_EQ(ParseTimestamp("1970-01-01").value(), 0);
  EXPECT_EQ(ParseTimestamp("1970-01-02").value(), kMillisPerDay);
  // 2014-03-01T00:00:00Z == 1393632000 seconds.
  EXPECT_EQ(ParseTimestamp("2014-03-01").value(), 1393632000000LL);
  EXPECT_EQ(ParseTimestamp("2014-03-01 12:30:45").value(),
            1393632000000LL + (12 * 3600 + 30 * 60 + 45) * 1000LL);
}

TEST(TimeTest, ParseFormatsRoundTrip) {
  for (const char* text :
       {"2018-10-01 00:00:00", "2018-11-30 23:59:59", "2000-02-29 12:00:00"}) {
    auto ts = ParseTimestamp(text);
    ASSERT_TRUE(ts.ok()) << text;
    EXPECT_EQ(FormatTimestamp(ts.value()), text);
  }
}

TEST(TimeTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTimestamp("not a date").ok());
  EXPECT_FALSE(ParseTimestamp("2014-13-01").ok());
  EXPECT_FALSE(ParseTimestamp("2014-01-99").ok());
}

// --- json ---

TEST(JsonTest, ParsesPaperUserdataHint) {
  auto v = ParseJson("{'geomesa.indices.enabled':'z3'}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetString("geomesa.indices.enabled"), "z3");
}

TEST(JsonTest, ParsesNestedStructures) {
  auto v = ParseJson(R"({"a": [1, 2.5, true, null], "b": {"c": "x"}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Get("a").array_items().size(), 4u);
  EXPECT_EQ(v->Get("a").array_items()[0].number_value(), 1);
  EXPECT_TRUE(v->Get("a").array_items()[2].bool_value());
  EXPECT_TRUE(v->Get("a").array_items()[3].is_null());
  EXPECT_EQ(v->Get("b").GetString("c"), "x");
}

TEST(JsonTest, RoundTripsThroughToString) {
  auto v = ParseJson(R"({"fid": "trajId", "n": 3, "flag": false})");
  ASSERT_TRUE(v.ok());
  auto again = ParseJson(v->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->GetString("fid"), "trajId");
  EXPECT_EQ(again->Get("n").number_value(), 3);
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{'a' 1}").ok());
  EXPECT_FALSE(ParseJson("[1,").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
}

TEST(JsonTest, EscapesInStrings) {
  auto v = ParseJson(R"({"s": "line\nbreak\t\"quoted\""})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetString("s"), "line\nbreak\t\"quoted\"");
}

// --- LRU cache ---

TEST(LruCacheTest, InsertLookupEvict) {
  LruCache<int, std::string> cache(100);
  cache.Insert(1, std::make_shared<std::string>("a"), 40);
  cache.Insert(2, std::make_shared<std::string>("b"), 40);
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(2), nullptr);
  // Inserting a third 40-byte entry evicts the LRU (key 1 was touched more
  // recently than 2? No: lookups promoted both; 1 then 2, so 1 is LRU).
  cache.Insert(3, std::make_shared<std::string>("c"), 40);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(2), nullptr);
  EXPECT_NE(cache.Lookup(3), nullptr);
  EXPECT_LE(cache.usage(), cache.capacity());
}

TEST(LruCacheTest, LookupPromotes) {
  LruCache<int, int> cache(3);
  cache.Insert(1, std::make_shared<int>(1), 1);
  cache.Insert(2, std::make_shared<int>(2), 1);
  cache.Insert(3, std::make_shared<int>(3), 1);
  EXPECT_NE(cache.Lookup(1), nullptr);  // promote 1
  cache.Insert(4, std::make_shared<int>(4), 1);  // evicts 2
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.Lookup(2), nullptr);
}

TEST(LruCacheTest, ReplaceUpdatesUsage) {
  LruCache<int, int> cache(10);
  cache.Insert(1, std::make_shared<int>(1), 4);
  cache.Insert(1, std::make_shared<int>(2), 6);
  EXPECT_EQ(cache.usage(), 6u);
  EXPECT_EQ(*cache.Lookup(1), 2);
}

TEST(LruCacheTest, EraseAndClear) {
  LruCache<int, int> cache(10);
  cache.Insert(1, std::make_shared<int>(1), 1);
  cache.Erase(1);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  cache.Insert(2, std::make_shared<int>(2), 1);
  cache.Clear();
  EXPECT_EQ(cache.usage(), 0u);
  EXPECT_EQ(cache.Lookup(2), nullptr);
}

TEST(LruCacheTest, TracksHitsAndMisses) {
  LruCache<int, int> cache(10);
  cache.Insert(1, std::make_shared<int>(1), 1);
  cache.Lookup(1);
  cache.Lookup(2);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

// --- thread pool ---

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto fut = pool.Submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL(); });
  int count = 0;
  pool.ParallelFor(1, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

// --- rng ---

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.Uniform(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

}  // namespace
}  // namespace just
