#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/coord_transform.h"
#include "geo/geometry.h"
#include "geo/point.h"

namespace just::geo {
namespace {

TEST(MbrTest, ContainsAndIntersects) {
  Mbr box = Mbr::Of(0, 0, 10, 10);
  EXPECT_TRUE(box.Contains(Point{5, 5}));
  EXPECT_TRUE(box.Contains(Point{0, 0}));
  EXPECT_TRUE(box.Contains(Point{10, 10}));
  EXPECT_FALSE(box.Contains(Point{10.01, 5}));
  EXPECT_TRUE(box.Intersects(Mbr::Of(5, 5, 15, 15)));
  EXPECT_TRUE(box.Intersects(Mbr::Of(10, 10, 20, 20)));  // touching corner
  EXPECT_FALSE(box.Intersects(Mbr::Of(11, 11, 20, 20)));
  EXPECT_TRUE(box.Contains(Mbr::Of(1, 1, 9, 9)));
  EXPECT_FALSE(box.Contains(Mbr::Of(1, 1, 11, 9)));
}

TEST(MbrTest, OfNormalizesCorners) {
  Mbr box = Mbr::Of(10, 20, -10, -20);
  EXPECT_EQ(box.lng_min, -10);
  EXPECT_EQ(box.lat_min, -20);
  EXPECT_EQ(box.lng_max, 10);
  EXPECT_EQ(box.lat_max, 20);
}

TEST(MbrTest, ExpandFromEmpty) {
  Mbr box = Mbr::Empty();
  EXPECT_TRUE(box.IsEmpty());
  box.Expand(Point{1, 2});
  box.Expand(Point{-3, 4});
  EXPECT_EQ(box.lng_min, -3);
  EXPECT_EQ(box.lng_max, 1);
  EXPECT_EQ(box.lat_max, 4);
  EXPECT_FALSE(box.IsEmpty());
}

TEST(MbrTest, MinDistanceMatchesEq4) {
  Mbr box = Mbr::Of(0, 0, 10, 10);
  EXPECT_EQ(box.MinDistance(Point{5, 5}), 0);      // inside
  EXPECT_EQ(box.MinDistance(Point{15, 5}), 5);     // right
  EXPECT_EQ(box.MinDistance(Point{5, -3}), 3);     // below
  EXPECT_NEAR(box.MinDistance(Point{13, 14}), 5.0, 1e-12);  // corner 3-4-5
}

TEST(DistanceTest, HaversineKnownValue) {
  // Beijing to Shanghai is roughly 1070 km.
  double d = HaversineMeters(Point{116.40, 39.90}, Point{121.47, 31.23});
  EXPECT_NEAR(d, 1068000, 15000);
  // Degenerate: zero distance.
  EXPECT_EQ(HaversineMeters(Point{1, 1}, Point{1, 1}), 0);
}

TEST(DistanceTest, SquareWindowHasRequestedSize) {
  Point center{116.4, 39.9};
  Mbr w = SquareWindowKm(center, 3.0);
  double height_km = HaversineMeters(Point{center.lng, w.lat_min},
                                     Point{center.lng, w.lat_max}) /
                     1000.0;
  double width_km = HaversineMeters(Point{w.lng_min, center.lat},
                                    Point{w.lng_max, center.lat}) /
                    1000.0;
  EXPECT_NEAR(height_km, 3.0, 0.05);
  EXPECT_NEAR(width_km, 3.0, 0.05);
}

TEST(DistanceTest, PointSegment) {
  EXPECT_NEAR(PointSegmentDistance(Point{0, 1}, Point{-1, 0}, Point{1, 0}),
              1.0, 1e-12);
  // Beyond segment end: distance to endpoint.
  EXPECT_NEAR(PointSegmentDistance(Point{3, 4}, Point{-1, 0}, Point{0, 0}),
              5.0, 1e-12);
  // Degenerate segment.
  EXPECT_NEAR(PointSegmentDistance(Point{3, 4}, Point{0, 0}, Point{0, 0}),
              5.0, 1e-12);
}

TEST(GeometryTest, PointWktRoundTrip) {
  Geometry g = Geometry::MakePoint(Point{116.397, 39.916});
  auto parsed = Geometry::FromWkt(g.ToWkt());
  ASSERT_TRUE(parsed.ok());
  EXPECT_NEAR(parsed->AsPoint().lng, 116.397, 1e-6);
  EXPECT_NEAR(parsed->AsPoint().lat, 39.916, 1e-6);
}

TEST(GeometryTest, LineStringWktRoundTrip) {
  Geometry g = Geometry::MakeLineString(
      {Point{0, 0}, Point{1, 1}, Point{2, 0.5}});
  auto parsed = Geometry::FromWkt(g.ToWkt());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type(), GeometryType::kLineString);
  EXPECT_EQ(parsed->points().size(), 3u);
}

TEST(GeometryTest, PolygonWktRoundTrip) {
  Geometry g = Geometry::MakePolygon(
      {Point{0, 0}, Point{4, 0}, Point{4, 4}, Point{0, 4}});
  auto parsed = Geometry::FromWkt(g.ToWkt());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type(), GeometryType::kPolygon);
  EXPECT_EQ(parsed->points().size(), 4u);  // closing point dropped
}

TEST(GeometryTest, FromWktRejectsGarbage) {
  EXPECT_FALSE(Geometry::FromWkt("CIRCLE (1 2)").ok());
  EXPECT_FALSE(Geometry::FromWkt("POINT (abc def)").ok());
}

TEST(GeometryTest, BinaryRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::vector<Point> pts;
    int n = 1 + static_cast<int>(rng.Uniform(20));
    for (int j = 0; j < n; ++j) {
      pts.push_back(Point{rng.Uniform(-180.0, 180.0),
                          rng.Uniform(-90.0, 90.0)});
    }
    Geometry g = Geometry::MakeLineString(pts);
    auto back = Geometry::Deserialize(g.Serialize());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, g);
  }
}

TEST(GeometryTest, PolygonContainsPoint) {
  Geometry square = Geometry::MakePolygon(
      {Point{0, 0}, Point{4, 0}, Point{4, 4}, Point{0, 4}});
  EXPECT_TRUE(square.ContainsPoint(Point{2, 2}));
  EXPECT_FALSE(square.ContainsPoint(Point{5, 2}));
  EXPECT_FALSE(square.ContainsPoint(Point{-1, -1}));
  // Concave polygon.
  Geometry concave = Geometry::MakePolygon(
      {Point{0, 0}, Point{4, 0}, Point{4, 4}, Point{2, 1}, Point{0, 4}});
  EXPECT_TRUE(concave.ContainsPoint(Point{1, 0.5}));
  EXPECT_FALSE(concave.ContainsPoint(Point{2, 3}));  // inside the notch
}

TEST(GeometryTest, WithinAndIntersects) {
  Geometry line = Geometry::MakeLineString({Point{1, 1}, Point{3, 3}});
  EXPECT_TRUE(line.Within(Mbr::Of(0, 0, 4, 4)));
  EXPECT_FALSE(line.Within(Mbr::Of(0, 0, 2, 2)));
  EXPECT_TRUE(line.Intersects(Mbr::Of(0, 0, 2, 2)));
  EXPECT_FALSE(line.Intersects(Mbr::Of(10, 10, 12, 12)));
  // Diagonal line crossing a box none of whose vertices are inside.
  Geometry diag = Geometry::MakeLineString({Point{0, 0}, Point{10, 10}});
  EXPECT_TRUE(diag.Intersects(Mbr::Of(4, 4, 6, 6)));
}

TEST(GeometryTest, DistanceToShapes) {
  Geometry pt = Geometry::MakePoint(Point{0, 0});
  EXPECT_NEAR(pt.Distance(Point{3, 4}), 5.0, 1e-12);
  Geometry line = Geometry::MakeLineString({Point{-1, 2}, Point{1, 2}});
  EXPECT_NEAR(line.Distance(Point{0, 0}), 2.0, 1e-12);
  Geometry poly = Geometry::MakePolygon(
      {Point{0, 0}, Point{4, 0}, Point{4, 4}, Point{0, 4}});
  EXPECT_EQ(poly.Distance(Point{2, 2}), 0);  // inside
  EXPECT_NEAR(poly.Distance(Point{6, 2}), 2.0, 1e-12);
}

TEST(CoordTransformTest, Gcj02RoundTrip) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    Point wgs{rng.Uniform(110.0, 120.0), rng.Uniform(30.0, 42.0)};
    Point gcj = Wgs84ToGcj02(wgs);
    // GCJ-02 offsets are a few hundred meters, not zero and not huge.
    double shift = HaversineMeters(wgs, gcj);
    EXPECT_GT(shift, 5.0);
    EXPECT_LT(shift, 2000.0);
    Point back = Gcj02ToWgs84(gcj);
    EXPECT_LT(HaversineMeters(wgs, back), 1.0);  // inverse within 1 m
  }
}

TEST(CoordTransformTest, NoOffsetOutsideChina) {
  Point nyc{-73.97, 40.78};
  EXPECT_TRUE(OutsideChina(nyc));
  Point gcj = Wgs84ToGcj02(nyc);
  EXPECT_EQ(gcj.lng, nyc.lng);
  EXPECT_EQ(gcj.lat, nyc.lat);
}

TEST(CoordTransformTest, Bd09RoundTrip) {
  Point gcj{116.40, 39.90};
  Point bd = Gcj02ToBd09(gcj);
  Point back = Bd09ToGcj02(bd);
  EXPECT_LT(HaversineMeters(gcj, back), 1.0);
  EXPECT_GT(HaversineMeters(gcj, bd), 100.0);  // BD-09 shifts ~600m
}

}  // namespace
}  // namespace just::geo
