// Systematic fault injection over the storage path: every mutating
// filesystem operation of a fixed workload is failed in turn (transiently
// and dead-disk), and the store must never lose an acknowledged write
// silently — after reopening, each write either reads back correctly or its
// operation had returned a non-OK Status. This is the test the paper's
// HBase substrate gets for free from WAL replay + region failover
// (Sections I, IV); our substituted kvstore must earn it.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "cluster/region_cluster.h"
#include "kvstore/fault_env.h"
#include "kvstore/lsm_store.h"
#include "test_util.h"

namespace just::kv {
namespace {

using just::testing::TempDir;

StoreOptions FaultStoreOptions(const std::string& dir, Env* env,
                               bool sync_wal) {
  StoreOptions opts;
  opts.dir = dir;
  opts.env = env;
  opts.sync_wal = sync_wal;
  opts.memtable_bytes = 1 << 10;  // tiny: many automatic flushes
  opts.block_size = 256;
  opts.compaction_trigger = 3;  // frequent full compactions
  return opts;
}

/// What the workload knows after running against a possibly-failing store.
struct WorkloadResult {
  bool opened = false;
  /// Keys whose last acknowledged op was a Put, with the acked value.
  std::map<std::string, std::string> live;
  /// Keys whose last acknowledged op was a Delete.
  std::set<std::string> deleted;
  /// Keys whose last op FAILED: on-disk state is legitimately either the
  /// previous acked state or the attempted one, so assertions skip them.
  std::set<std::string> ambiguous;
};

/// A fixed workload of puts, deletes, explicit flushes, and a full
/// compaction. Every op's outcome is recorded; op failures are tolerated
/// (that is the point), only *silent* divergence is a bug.
WorkloadResult RunWorkload(const std::string& dir, Env* env, bool sync_wal) {
  WorkloadResult r;
  auto store_or = LsmStore::Open(FaultStoreOptions(dir, env, sync_wal));
  if (!store_or.ok()) return r;  // open failed: nothing was acknowledged
  r.opened = true;
  LsmStore* store = store_or->get();

  auto put = [&](const std::string& key, const std::string& value) {
    if (store->Put(key, value).ok()) {
      r.live[key] = value;
      r.deleted.erase(key);
      r.ambiguous.erase(key);
    } else {
      r.ambiguous.insert(key);
    }
  };
  auto del = [&](const std::string& key) {
    if (store->Delete(key).ok()) {
      r.live.erase(key);
      r.deleted.insert(key);
      r.ambiguous.erase(key);
    } else {
      r.ambiguous.insert(key);
    }
  };

  for (int i = 0; i < 24; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    put(key, "value-" + std::to_string(i) + std::string(24, 'x'));
    if (i % 7 == 6) (void)store->Flush();  // may fail; data stays in WAL
  }
  for (int i = 0; i < 24; i += 5) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    del(key);
  }
  (void)store->CompactAll();
  for (int i = 0; i < 6; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "late%03d", i);
    put(key, "late-" + std::to_string(i));
  }
  return r;
}

/// Reopens the store with a healthy filesystem and checks that every
/// unambiguous acknowledged write is visible and correct.
void VerifyAcknowledgedState(const std::string& dir, const WorkloadResult& r,
                             const std::string& context) {
  auto store_or =
      LsmStore::Open(FaultStoreOptions(dir, Env::Default(), false));
  ASSERT_TRUE(store_or.ok())
      << context << ": reopen failed: " << store_or.status().ToString();
  LsmStore* store = store_or->get();
  for (const auto& [key, value] : r.live) {
    if (r.ambiguous.count(key)) continue;
    std::string got;
    Status st = store->Get(key, &got);
    ASSERT_TRUE(st.ok()) << context << ": acked key " << key
                         << " lost: " << st.ToString();
    EXPECT_EQ(got, value) << context << ": acked key " << key << " corrupted";
  }
  for (const auto& key : r.deleted) {
    if (r.ambiguous.count(key)) continue;
    std::string got;
    EXPECT_TRUE(store->Get(key, &got).IsNotFound())
        << context << ": acked delete of " << key << " resurrected";
  }
}

/// Runs the workload once with no faults to learn its op budget.
int64_t CleanRunOpCount() {
  TempDir dir("fault_clean");
  FaultInjectionEnv env;
  WorkloadResult r = RunWorkload(dir.path(), &env, /*sync_wal=*/false);
  EXPECT_TRUE(r.opened);
  EXPECT_TRUE(r.ambiguous.empty());
  return env.write_ops();
}

TEST(FaultInjectionTest, CleanWorkloadUsesManyOpsAndLosesNothing) {
  TempDir dir("fault_baseline");
  FaultInjectionEnv env;
  WorkloadResult r = RunWorkload(dir.path(), &env, /*sync_wal=*/false);
  ASSERT_TRUE(r.opened);
  EXPECT_TRUE(r.ambiguous.empty());
  // The workload must actually exercise flush + compaction machinery.
  EXPECT_GT(env.write_ops(), 50);
  VerifyAcknowledgedState(dir.path(), r, "clean");
}

// One transient failure at op N: the disk recovers immediately, the store
// keeps running, and after a clean close every acknowledged write must be
// readable. Walks N across the entire workload, covering every WAL append,
// every block write, every sync, every rename of flush and compaction.
TEST(FaultInjectionTest, TransientFailureAtEveryOpLosesNothing) {
  const int64_t total_ops = CleanRunOpCount();
  ASSERT_GT(total_ops, 0);
  for (int64_t n = 1; n <= total_ops; ++n) {
    TempDir dir("fault_oneshot");
    FaultInjectionEnv env;
    env.FailWriteOp(n, /*all_after=*/false);
    WorkloadResult r = RunWorkload(dir.path(), &env, /*sync_wal=*/false);
    env.ClearFaults();
    if (!r.opened) continue;  // op 1 can fail the WAL creation at open
    VerifyAcknowledgedState(dir.path(), r,
                            "one-shot fail at op " + std::to_string(n));
  }
}

// Dead disk from op N on: every subsequent write fails. With sync_wal on,
// acknowledgement implies fsync, so even though the store can never write
// again, everything acknowledged must be durable on reopen.
TEST(FaultInjectionTest, DiskDeathAtEveryOpLosesNoSyncedWrite) {
  const int64_t total_ops = CleanRunOpCount();
  ASSERT_GT(total_ops, 0);
  // sync_wal adds ops; sweep the clean budget of the sync_wal workload.
  int64_t synced_total;
  {
    TempDir dir("fault_sync_clean");
    FaultInjectionEnv env;
    RunWorkload(dir.path(), &env, /*sync_wal=*/true);
    synced_total = env.write_ops();
  }
  ASSERT_GT(synced_total, total_ops);
  for (int64_t n = 1; n <= synced_total; n += 1) {
    TempDir dir("fault_dead");
    FaultInjectionEnv env;
    env.FailWriteOp(n, /*all_after=*/true);
    WorkloadResult r = RunWorkload(dir.path(), &env, /*sync_wal=*/true);
    env.ClearFaults();
    if (!r.opened) continue;
    VerifyAcknowledgedState(dir.path(), r,
                            "dead disk from op " + std::to_string(n));
  }
}

// --- Cluster-level degradation: transient region-server faults ---

cluster::ClusterOptions SmallCluster(const std::string& dir, Env* env) {
  cluster::ClusterOptions copts;
  copts.dir = dir;
  copts.num_servers = 3;
  copts.store.env = env;
  copts.store.memtable_bytes = 1 << 10;
  copts.store.block_size = 256;
  copts.max_retries = 2;
  copts.retry_backoff_ms = 0;  // no need to sleep in tests
  return copts;
}

TEST(ClusterFaultTest, GetRetriesTransientReadFault) {
  TempDir dir("cluster_get_retry");
  FaultInjectionEnv env;
  auto cluster = cluster::RegionCluster::Open(SmallCluster(dir.path(), &env));
  ASSERT_TRUE(cluster.ok());
  // Values larger than a block: every key lives in its own data block, so
  // each first Get must truly hit the disk (no block-cache sharing).
  auto value_of = [](int i) {
    return "v" + std::to_string(i) + std::string(300, 'p');
  };
  for (int i = 0; i < 30; ++i) {
    std::string key(1, static_cast<char>('a' + i));
    ASSERT_TRUE((*cluster)->Put(key, value_of(i)).ok());
  }
  ASSERT_TRUE((*cluster)->FlushAll().ok());  // move data to SSTables

  // Probe keys must not be a table's smallest key: the reader loads (and
  // caches) the first data block during open for smallest-key discovery,
  // and a cached block would hide the injected read faults.

  // One failing pread: the bounded retry must absorb it.
  env.FailNextReads(1);
  std::string v;
  Status st = (*cluster)->Get("d", &v);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(v, value_of(3));

  // More consecutive failures than retries: surfaces as a transient error,
  // not a wrong answer.
  env.FailNextReads(1000);
  st = (*cluster)->Get("e", &v);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTransient()) << st.ToString();
  env.ClearFaults();

  // After the brownout clears, the same key serves normally.
  st = (*cluster)->Get("e", &v);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(v, value_of(4));
}

TEST(ClusterFaultTest, ParallelScanRetriesWithoutDuplicatingRows) {
  TempDir dir("cluster_scan_retry");
  FaultInjectionEnv env;
  auto cluster = cluster::RegionCluster::Open(SmallCluster(dir.path(), &env));
  ASSERT_TRUE(cluster.ok());
  const int kRows = 40;
  for (int i = 0; i < kRows; ++i) {
    std::string key(1, static_cast<char>('A' + i % 26));
    key += std::to_string(i);
    ASSERT_TRUE((*cluster)->Put(key, "v").ok());
  }
  ASSERT_TRUE((*cluster)->FlushAll().ok());

  curve::KeyRange everything;  // empty start + end: all servers, all keys
  env.FailNextReads(1);
  auto results = (*cluster)->ParallelScan({everything});
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  std::set<std::string> seen;
  for (const auto& row : (*results)[0].rows) {
    EXPECT_TRUE(seen.insert(row.key).second)
        << "row " << row.key << " duplicated by retry";
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kRows));
}

TEST(ClusterFaultTest, PutRetriesTransientWriteFault) {
  TempDir dir("cluster_put_retry");
  FaultInjectionEnv env;
  auto cluster = cluster::RegionCluster::Open(SmallCluster(dir.path(), &env));
  ASSERT_TRUE(cluster.ok());
  // Fail exactly the next mutating op (the WAL append of this Put); the
  // retry's append must succeed.
  env.FailWriteOp(env.write_ops() + 1, /*all_after=*/false);
  Status st = (*cluster)->Put("x", "survives");
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::string v;
  ASSERT_TRUE((*cluster)->Get("x", &v).ok());
  EXPECT_EQ(v, "survives");
}

}  // namespace
}  // namespace just::kv
