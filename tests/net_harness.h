#ifndef JUST_TESTS_NET_HARNESS_H_
#define JUST_TESTS_NET_HARNESS_H_

// Multi-process test harness for the out-of-process region server:
//  - ServerProcess: fork/execs a real `just_region_server` binary, waits
//    for its port file, and can SIGKILL it mid-write (the crash tests) or
//    stop it cleanly. Restart() reuses the same data directory, which is
//    how WAL recovery is asserted *through the client*.
//  - FaultProxy: a TCP proxy between client and server that can cut
//    connections after a byte budget (torn responses mid-scan), stall
//    traffic (client timeouts), or drop everything — the socket-level
//    fault-injection counterpart of kv::FaultInjectionEnv.
//
// The server binary path comes from the JUST_REGION_SERVER_BIN compile
// definition (set in tests/CMakeLists.txt to $<TARGET_FILE:...>).

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"

#ifndef JUST_REGION_SERVER_BIN
#define JUST_REGION_SERVER_BIN "./just_region_server"
#endif

namespace just::testing {

/// One spawned `just_region_server` process.
class ServerProcess {
 public:
  struct Options {
    std::string dir;  ///< data directory (required; reused across restarts)
    bool sync_wal = true;  ///< fsync per commit: acknowledged == durable
    int max_inflight = -1;   ///< -1 = server default
    int max_pipeline = -1;   ///< -1 = server default
    size_t memtable_bytes = 0;  ///< 0 = server default
    bool admin = false;          ///< serve the HTTP admin plane (port 0)
    int64_t slow_query_us = -1;  ///< --slow-query-us; -1 = disabled
  };

  explicit ServerProcess(Options options) : options_(std::move(options)) {}

  ~ServerProcess() {
    if (running()) Kill();
  }

  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;

  /// Spawns the server and blocks until it is accepting (port file
  /// written). Returns false on spawn/startup failure.
  bool Start() {
    std::string port_file = options_.dir + "/port";
    std::remove(port_file.c_str());

    std::vector<std::string> args = {JUST_REGION_SERVER_BIN,
                                     "--dir",       options_.dir,
                                     "--port",      "0",
                                     "--port-file", port_file,
                                     "--sync-wal",  options_.sync_wal ? "1"
                                                                      : "0"};
    if (options_.max_inflight >= 0) {
      args.push_back("--max-inflight");
      args.push_back(std::to_string(options_.max_inflight));
    }
    if (options_.max_pipeline >= 0) {
      args.push_back("--max-pipeline");
      args.push_back(std::to_string(options_.max_pipeline));
    }
    if (options_.memtable_bytes > 0) {
      args.push_back("--memtable-bytes");
      args.push_back(std::to_string(options_.memtable_bytes));
    }
    if (options_.admin) {
      args.push_back("--admin-port");
      args.push_back("0");
    }
    if (options_.slow_query_us >= 0) {
      args.push_back("--slow-query-us");
      args.push_back(std::to_string(options_.slow_query_us));
    }

    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::fprintf(stderr, "execv %s: %s\n", argv[0], std::strerror(errno));
      ::_exit(127);
    }

    // Wait for the port file; bail early if the child already died.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(port_file);
      int port = 0;
      if (in && (in >> port) && port > 0) {
        port_ = port;
        // Second line (present only with --admin-port): the admin plane's
        // bound port. Old spawners that read just the first int still work.
        int admin = 0;
        if (in >> admin) admin_port_ = admin;
        return true;
      }
      int wstatus = 0;
      if (::waitpid(pid_, &wstatus, WNOHANG) == pid_) {
        pid_ = -1;
        return false;  // child exited before serving
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    Kill();
    return false;
  }

  /// SIGKILL — the crash the WAL must survive. Reaps the zombie.
  void Kill() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  /// SIGTERM and wait (bounded); escalates to SIGKILL.
  void Terminate() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGTERM);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (::waitpid(pid_, nullptr, WNOHANG) == pid_) {
        pid_ = -1;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    Kill();
  }

  /// Starts a fresh process over the same data directory (crash recovery).
  bool Restart() {
    if (running()) Kill();
    return Start();
  }

  bool running() const { return pid_ > 0; }
  int port() const { return port_; }
  /// HTTP admin plane port; 0 unless Options::admin was set.
  int admin_port() const { return admin_port_; }
  std::string addr() const { return "127.0.0.1:" + std::to_string(port_); }
  const Options& options() const { return options_; }

 private:
  Options options_;
  pid_t pid_ = -1;
  int port_ = 0;
  int admin_port_ = 0;
};

/// TCP fault-injection proxy: client connects to port(), proxy forwards to
/// the upstream server. Faults are one-shot or toggled:
///  - CutAfterUpstreamBytes(n): after forwarding n more server->client
///    bytes, close both sides of every connection (tears a response
///    mid-frame — exactly what a server crash mid-scan looks like).
///  - SetStalled(true): stop forwarding in both directions without closing
///    (clients hit their io timeout).
///  - CloseAllConnections(): drop every live connection now.
class FaultProxy {
 public:
  explicit FaultProxy(int upstream_port) : upstream_port_(upstream_port) {
    auto listener = net::Listener::Listen("127.0.0.1", 0);
    if (!listener.ok()) return;
    listener_ = std::move(*listener);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~FaultProxy() {
    stopping_.store(true);
    listener_.Close();
    CloseAllConnections();
    if (accept_thread_.joinable()) accept_thread_.join();
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) {
      if (conn->pump_up.joinable()) conn->pump_up.join();
      if (conn->pump_down.joinable()) conn->pump_down.join();
    }
  }

  int port() const { return listener_.port(); }

  void CutAfterUpstreamBytes(int64_t n) {
    cut_budget_.store(n);
    cut_armed_.store(true);
  }

  void SetStalled(bool on) { stalled_.store(on); }

  void CloseAllConnections() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) {
      conn->client.ShutdownBoth();
      conn->upstream.ShutdownBoth();
    }
  }

  /// Total server->client bytes forwarded (to size cut budgets).
  int64_t upstream_bytes() const { return upstream_bytes_.load(); }

 private:
  struct Conn {
    net::Socket client;
    net::Socket upstream;
    std::thread pump_up;    ///< client -> upstream
    std::thread pump_down;  ///< upstream -> client
  };

  void AcceptLoop() {
    while (!stopping_.load()) {
      auto accepted = listener_.Accept();
      if (!accepted.ok()) return;
      auto upstream = net::Connect("127.0.0.1", upstream_port_);
      if (!upstream.ok()) continue;  // server down: drop the client
      auto conn = std::make_shared<Conn>();
      conn->client = std::move(*accepted);
      conn->upstream = std::move(*upstream);
      // Short recv timeouts so the pumps poll the fault flags.
      (void)conn->client.SetRecvTimeout(20);
      (void)conn->upstream.SetRecvTimeout(20);
      conn->pump_up = std::thread(
          [this, conn] { Pump(conn, conn->client, conn->upstream, false); });
      conn->pump_down = std::thread(
          [this, conn] { Pump(conn, conn->upstream, conn->client, true); });
      std::lock_guard<std::mutex> lock(mu_);
      conns_.push_back(std::move(conn));
    }
  }

  void Pump(const std::shared_ptr<Conn>& conn, net::Socket& from,
            net::Socket& to, bool is_upstream_to_client) {
    char buf[4096];
    while (!stopping_.load()) {
      ssize_t n = ::recv(from.fd(), buf, sizeof(buf), 0);
      if (n == 0) break;  // peer closed
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;  // timeout tick: re-check flags
        }
        break;
      }
      if (stalled_.load()) {
        // Swallow nothing: hold the bytes until unstalled (the client's
        // io timeout fires first in the tests that use this).
        while (stalled_.load() && !stopping_.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (stopping_.load()) break;
      }
      ssize_t to_send = n;
      if (is_upstream_to_client) {
        upstream_bytes_.fetch_add(n);
        if (cut_armed_.load()) {
          int64_t before = cut_budget_.fetch_sub(n);
          if (before <= n) {
            // Budget exhausted inside this chunk: forward what remains of
            // the budget (possibly zero) and cut, leaving a torn frame.
            to_send = before > 0 ? static_cast<ssize_t>(before) : 0;
            if (to_send > 0) {
              (void)to.WriteFully(buf, static_cast<size_t>(to_send));
            }
            cut_armed_.store(false);  // one-shot
            conn->client.ShutdownBoth();
            conn->upstream.ShutdownBoth();
            break;
          }
        }
      }
      if (!to.WriteFully(buf, static_cast<size_t>(to_send)).ok()) break;
    }
    // One direction dying takes the whole connection with it.
    conn->client.ShutdownBoth();
    conn->upstream.ShutdownBoth();
  }

  int upstream_port_;
  net::Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stalled_{false};
  std::atomic<bool> cut_armed_{false};
  std::atomic<int64_t> cut_budget_{0};
  std::atomic<int64_t> upstream_bytes_{0};
  std::mutex mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
};

}  // namespace just::testing

#endif  // JUST_TESTS_NET_HARNESS_H_
