// Leveled compaction acceptance tests: the probe bound a leveled tree is
// supposed to buy (Get touches at most L0 + one table per deeper level),
// the L1+ non-overlap invariant, and the MANIFEST v1 -> v2 upgrade path
// that keeps stores written before leveled compaction openable.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kvstore/lsm_store.h"
#include "test_util.h"

namespace just::kv {
namespace {

using just::testing::TempDir;

std::string TestKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%05d", i);
  return buf;
}

std::string TestValue(int i, int round) {
  return "v" + std::to_string(round) + "-" + std::to_string(i) +
         std::string(90, 'x');
}

StoreOptions LeveledOptions(const std::string& dir) {
  StoreOptions opts;
  opts.dir = dir;
  opts.block_size = 512;
  opts.compaction_trigger = 4;
  opts.compaction_style = CompactionStyle::kLeveled;
  opts.num_levels = 4;
  opts.level_base_bytes = 24 << 10;  // tiny budgets: force a deep tree
  opts.level_fanout = 4;
  opts.target_file_size = 8 << 10;
  return opts;
}

// Flushes `rounds` memtables of overlapping key ranges (each key is
// rewritten by several rounds, so compactions merge real duplicates) and
// waits until the level budgets are satisfied. Fills `model` with the
// winning value per key.
void BulkLoad(LsmStore* store, int rounds,
              std::map<std::string, std::string>* model) {
  const int kKeysPerRound = 40;
  const int kKeySpace = 300;
  for (int r = 0; r < rounds; ++r) {
    for (int j = 0; j < kKeysPerRound; ++j) {
      int i = (r * kKeysPerRound + j * 7) % kKeySpace;
      ASSERT_TRUE(store->Put(TestKey(i), TestValue(i, r)).ok());
      (*model)[TestKey(i)] = TestValue(i, r);
    }
    ASSERT_TRUE(store->Flush().ok());
  }
  ASSERT_TRUE(store->WaitForBackgroundIdle().ok());
}

// The acceptance criterion from the issue: after a bulk load of at least
// 4x compaction_trigger memtables, a point read probes at most
// (L0 file count + number of levels) SSTables — measured through the
// just_kv_get_sst_probes_total obs counter, not inferred from structure.
TEST(LeveledCompactionTest, BulkLoadBoundsGetProbes) {
  TempDir dir("leveled_probes");
  auto store_or = LsmStore::Open(LeveledOptions(dir.path()));
  ASSERT_TRUE(store_or.ok());
  LsmStore* store = store_or->get();

  std::map<std::string, std::string> model;
  // 20 memtables = 5x the compaction_trigger of 4.
  BulkLoad(store, 20, &model);

  auto stats = store->GetStats();
  ASSERT_GE(stats.level_files.size(), 2u);
  // The load must actually have built a multi-level tree, or the bound
  // below is vacuous.
  size_t deeper_files = 0;
  for (size_t level = 1; level < stats.level_files.size(); ++level) {
    deeper_files += stats.level_files[level];
  }
  EXPECT_GT(deeper_files, 0u) << "bulk load never compacted past L0";
  EXPECT_LT(stats.level_files[0],
            static_cast<size_t>(store->options().compaction_trigger))
      << "WaitForBackgroundIdle returned with L0 over its trigger";

  const uint64_t bound = stats.level_files[0] + stats.level_files.size();
  obs::Counter& probes = store->io_stats().get_probes;

  // Present keys: every key in the model, exact value, bounded probes.
  std::string value;
  for (const auto& [key, expected] : model) {
    const uint64_t before = probes.Value();
    ASSERT_TRUE(store->Get(key, &value).ok()) << key;
    EXPECT_EQ(value, expected) << key;
    EXPECT_LE(probes.Value() - before, bound) << key;
  }
  // Absent keys land between/outside ranges; the bound holds for misses too.
  for (int i = 0; i < 50; ++i) {
    const uint64_t before = probes.Value();
    EXPECT_TRUE(store->Get("zzz-absent" + std::to_string(i), &value)
                    .IsNotFound());
    EXPECT_LE(probes.Value() - before, bound);
  }

  // The same tree must scan correctly: one entry per key, newest value.
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE(store
                  ->Scan("", "",
                         [&](std::string_view k, std::string_view v) {
                           EXPECT_TRUE(
                               scanned.emplace(std::string(k), std::string(v))
                                   .second)
                               << "duplicate key emitted: " << k;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(scanned, model);
}

// Structural invariant behind the probe bound: deeper levels are sorted
// runs of pairwise non-overlapping tables, and every recorded key range
// matches what the table actually contains.
TEST(LeveledCompactionTest, DeeperLevelsNeverOverlap) {
  TempDir dir("leveled_overlap");
  auto store_or = LsmStore::Open(LeveledOptions(dir.path()));
  ASSERT_TRUE(store_or.ok());
  LsmStore* store = store_or->get();

  std::map<std::string, std::string> model;
  BulkLoad(store, 20, &model);

  auto levels = store->GetLevelInfo();
  ASSERT_GE(levels.size(), 2u);
  for (size_t level = 1; level < levels.size(); ++level) {
    const auto& tables = levels[level];
    for (size_t i = 0; i < tables.size(); ++i) {
      EXPECT_LE(tables[i].smallest_key, tables[i].largest_key)
          << "L" << level << " table " << tables[i].file_number;
      if (i + 1 < tables.size()) {
        EXPECT_LT(tables[i].largest_key, tables[i + 1].smallest_key)
            << "L" << level << " tables " << tables[i].file_number << " and "
            << tables[i + 1].file_number << " overlap";
      }
    }
  }
}

// A v1 MANIFEST (PR-4 and earlier: "wal N" plus bare file numbers, no
// levels, no key ranges) must still open. All its tables load into L0 —
// the set the old full-merge read path consulted — and the next flush
// rewrites the MANIFEST in the v2 format with per-file key ranges.
TEST(LeveledCompactionTest, ManifestV1UpgradesOnOpen) {
  TempDir dir("manifest_v1");
  const std::string manifest_path = dir.path() + "/MANIFEST";
  std::vector<uint64_t> file_numbers;
  std::string wal_line;
  {
    StoreOptions opts = LeveledOptions(dir.path());
    opts.compaction_trigger = 100;  // keep every flush output in L0
    auto store = LsmStore::Open(opts);
    ASSERT_TRUE(store.ok());
    for (int round = 0; round < 3; ++round) {
      for (int i = round * 20; i < round * 20 + 30; ++i) {
        ASSERT_TRUE((*store)->Put(TestKey(i), TestValue(i, round)).ok());
      }
      ASSERT_TRUE((*store)->Flush().ok());
    }
    auto levels = (*store)->GetLevelInfo();
    ASSERT_FALSE(levels.empty());
    for (const auto& table : levels[0]) {
      file_numbers.push_back(table.file_number);
    }
    ASSERT_EQ(file_numbers.size(), 3u);
    // Keep the real minimum-live-WAL line so replay semantics are intact.
    std::string manifest;
    ASSERT_TRUE(
        Env::Default()->ReadFileToString(manifest_path, &manifest).ok());
    size_t pos = manifest.find("wal ");
    ASSERT_NE(pos, std::string::npos);
    wal_line = manifest.substr(pos, manifest.find('\n', pos) - pos);
  }

  // Rewrite the MANIFEST the way a pre-leveled store would have left it.
  {
    auto file = Env::Default()->NewWritableFile(manifest_path, true);
    ASSERT_TRUE(file.ok());
    std::string body = wal_line + "\n";
    for (uint64_t number : file_numbers) {
      body += std::to_string(number) + "\n";
    }
    ASSERT_TRUE((*file)->Append(body).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  auto store = LsmStore::Open(LeveledOptions(dir.path()));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // Every table the v1 manifest referenced is live, in L0.
  auto levels = (*store)->GetLevelInfo();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels[0].size(), 3u);
  for (size_t level = 1; level < levels.size(); ++level) {
    EXPECT_TRUE(levels[level].empty());
  }
  // Later rounds overwrote earlier ones; precedence must survive the
  // upgrade (L0 keeps flush order).
  std::string value;
  ASSERT_TRUE((*store)->Get(TestKey(45), &value).ok());
  EXPECT_EQ(value, TestValue(45, 2));
  ASSERT_TRUE((*store)->Get(TestKey(5), &value).ok());
  EXPECT_EQ(value, TestValue(5, 0));

  // The first durable change rewrites the MANIFEST in v2 form.
  ASSERT_TRUE((*store)->Put("upgrade-marker", "yes").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  std::string manifest;
  ASSERT_TRUE(Env::Default()->ReadFileToString(manifest_path, &manifest).ok());
  EXPECT_EQ(manifest.rfind("just-manifest 2\n", 0), 0u)
      << "MANIFEST not rewritten as v2: " << manifest;
  EXPECT_NE(manifest.find("file 0 "), std::string::npos);
}

// A MANIFEST claiming an unknown format version must fail the open with
// Corruption, not load garbage.
TEST(LeveledCompactionTest, UnknownManifestVersionIsCorruption) {
  TempDir dir("manifest_v9");
  {
    auto store = LsmStore::Open(LeveledOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("a", "b").ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  const std::string manifest_path = dir.path() + "/MANIFEST";
  std::string manifest;
  ASSERT_TRUE(Env::Default()->ReadFileToString(manifest_path, &manifest).ok());
  manifest.replace(manifest.find("just-manifest 2"),
                   std::string("just-manifest 2").size(), "just-manifest 9");
  {
    auto file = Env::Default()->NewWritableFile(manifest_path, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(manifest).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto reopened = LsmStore::Open(LeveledOptions(dir.path()));
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption())
      << reopened.status().ToString();
}

}  // namespace
}  // namespace just::kv
