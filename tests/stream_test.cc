// Streaming ingestion + continuous queries + multi-tenant quotas
// (src/stream), end to end through the engine and JustQL:
//  - token-bucket fairness under a fake clock (an at-limit tenant is never
//    starved by an over-limit one — the quota edge case the issue pins);
//  - a geofence alert CQ fires for a matching INSERT STREAM row with ZERO
//    rows scanned (the notification path never touches storage);
//  - sliding-window aggregates fold per-group counts and retire old buckets;
//  - quotas persist in the catalog across an engine reopen;
//  - DROP TABLE tears standing queries down with the table.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "sql/justql.h"
#include "sql/parser.h"
#include "stream/continuous_query.h"
#include "stream/quota.h"
#include "test_util.h"

namespace just::stream {
namespace {

using just::testing::TempDir;

// --- QuotaManager unit tests (fake clock) ---

class FakeClock {
 public:
  uint64_t Now() const { return now_ns_; }
  void AdvanceMs(uint64_t ms) { now_ns_ += ms * 1000000ull; }

  QuotaManager::ClockFn fn() {
    return [this] { return Now(); };
  }

 private:
  uint64_t now_ns_ = 1;
};

meta::TenantQuotaConfig WriteQuota(uint64_t rps, uint64_t burst = 0) {
  meta::TenantQuotaConfig q;
  q.write_rows_per_sec = rps;
  q.write_burst_rows = burst;
  return q;
}

TEST(QuotaManagerTest, AdmitsUnlimitedTenantAndCounts) {
  QuotaManager quota;
  EXPECT_TRUE(quota.AdmitWrite("free", 1000000).ok());
  EXPECT_TRUE(quota.AdmitScan("free").ok());
  quota.ChargeScanBytes("free", 4096);
  auto counters = quota.GetCounters("free");
  EXPECT_EQ(counters.write_rows_admitted, 1000000u);
  EXPECT_EQ(counters.scan_bytes_charged, 4096u);
  EXPECT_EQ(counters.write_sheds, 0u);
}

TEST(QuotaManagerTest, ShedsOverBurstAndRefills) {
  FakeClock clock;
  QuotaManager quota(clock.fn());
  quota.SetQuota("t", WriteQuota(/*rps=*/100));  // burst defaults to rate
  EXPECT_TRUE(quota.AdmitWrite("t", 100).ok());  // drains the full burst
  Status shed = quota.AdmitWrite("t", 1);
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed.ToString();
  // Not transient: cluster retry loops must pass sheds straight through.
  EXPECT_FALSE(shed.IsTransient());
  clock.AdvanceMs(500);  // 100 rows/s * 0.5s = 50 tokens back
  EXPECT_TRUE(quota.AdmitWrite("t", 50).ok());
  EXPECT_FALSE(quota.AdmitWrite("t", 1).ok());
  auto counters = quota.GetCounters("t");
  EXPECT_EQ(counters.write_rows_admitted, 150u);
  EXPECT_EQ(counters.write_sheds, 2u);
}

// The fairness regression the issue pins: a tenant running exactly at its
// configured rate must be admitted on every tick, no matter how hard a
// neighbouring tenant floods past its own limit. Isolation comes from the
// buckets never sharing tokens.
TEST(QuotaManagerTest, AtLimitTenantNeverStarvedByOverLimitTenant) {
  FakeClock clock;
  QuotaManager quota(clock.fn());
  quota.SetQuota("steady", WriteQuota(/*rps=*/100));
  quota.SetQuota("flood", WriteQuota(/*rps=*/100));
  uint64_t steady_admits = 0;
  uint64_t flood_sheds = 0;
  // Drain both initial bursts so the loop below measures refill only.
  ASSERT_TRUE(quota.AdmitWrite("steady", 100).ok());
  ASSERT_TRUE(quota.AdmitWrite("flood", 100).ok());
  for (int tick = 0; tick < 200; ++tick) {
    clock.AdvanceMs(100);  // 10 tokens refill per tick at 100 rows/s
    // steady asks for exactly its refill; flood asks for 10x its refill.
    Status st = quota.AdmitWrite("steady", 10);
    EXPECT_TRUE(st.ok()) << "starved at tick " << tick << ": "
                         << st.ToString();
    if (st.ok()) ++steady_admits;
    if (!quota.AdmitWrite("flood", 100).ok()) ++flood_sheds;
  }
  EXPECT_EQ(steady_admits, 200u);  // never starved
  EXPECT_GT(flood_sheds, 150u);    // the flooder is the one shedding
  EXPECT_EQ(quota.GetCounters("steady").write_sheds, 0u);
  EXPECT_GT(quota.GetCounters("flood").write_sheds, 0u);
}

TEST(QuotaManagerTest, ScanQuotaIsPostPaid) {
  FakeClock clock;
  QuotaManager quota(clock.fn());
  meta::TenantQuotaConfig q;
  q.scan_bytes_per_sec = 1000;
  quota.SetQuota("t", q);
  // First scan admits (bucket full) even though it will overshoot.
  EXPECT_TRUE(quota.AdmitScan("t").ok());
  quota.ChargeScanBytes("t", 50000);  // way past the burst: bucket goes negative
  Status st = quota.AdmitScan("t");
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(quota.GetCounters("t").scan_sheds, 1u);
  // Debt pays off at the refill rate: 49s is not enough, 50s is.
  clock.AdvanceMs(49000);
  EXPECT_FALSE(quota.AdmitScan("t").ok());
  clock.AdvanceMs(1500);
  EXPECT_TRUE(quota.AdmitScan("t").ok());
}

TEST(QuotaManagerTest, DefaultQuotaAppliesAndExplicitWins) {
  FakeClock clock;
  QuotaManager quota(clock.fn());
  quota.SetDefaultQuota(WriteQuota(/*rps=*/10));
  quota.SetQuota("vip", WriteQuota(/*rps=*/1000));
  EXPECT_FALSE(quota.AdmitWrite("anon", 11).ok());  // default caps at 10
  EXPECT_TRUE(quota.AdmitWrite("vip", 500).ok());   // explicit quota wins
  meta::TenantQuotaConfig out;
  EXPECT_TRUE(quota.GetQuota("anon", &out));
  EXPECT_EQ(out.write_rows_per_sec, 10u);
  EXPECT_TRUE(quota.GetQuota("vip", &out));
  EXPECT_EQ(out.write_rows_per_sec, 1000u);
}

// --- engine + JustQL integration ---

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("stream");
    Open();
  }

  void Open() {
    core::EngineOptions options;
    options.data_dir = dir_->path();
    options.num_servers = 2;
    options.num_shards = 4;
    auto engine = core::JustEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
    ql_ = std::make_unique<sql::JustQL>(engine_.get());
  }

  void Reopen() {
    ql_.reset();
    engine_.reset();
    Open();
  }

  Result<sql::QueryResult> Run(const std::string& sql) {
    return ql_->Execute("tester", sql);
  }

  void MustRun(const std::string& sql) {
    auto r = Run(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  void CreateVehicles() {
    MustRun(
        "CREATE TABLE vehicles (fid string:primary key, district string, "
        "speed double, time date, geom point:srid=4326)");
  }

  /// INSERT [STREAM] one vehicle row via SQL. `time` is a date literal.
  std::string VehicleValues(const std::string& fid,
                            const std::string& district, double speed,
                            const std::string& time, double x, double y) {
    return "('" + fid + "', '" + district + "', " + std::to_string(speed) +
           ", '" + time + "', st_makePoint(" + std::to_string(x) + ", " +
           std::to_string(y) + "))";
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<core::JustEngine> engine_;
  std::unique_ptr<sql::JustQL> ql_;
};

// The issue's acceptance test: a registered geofence CQ fires for a
// matching streamed insert, and the notification path scans zero rows.
TEST_F(StreamTest, GeofenceAlertFiresWithZeroRowsScanned) {
  CreateVehicles();
  MustRun(
      "CREATE CONTINUOUS QUERY downtown ON vehicles "
      "WHERE geom WITHIN st_makeMBR(116.2, 39.8, 116.6, 40.0)");
  const uint64_t scanned_before = obs::Registry::Global().GetSnapshot().counter(
      "just_query_rows_scanned_total");
  // One row inside the fence, one outside.
  MustRun("INSERT STREAM INTO vehicles VALUES " +
          VehicleValues("v1", "chaoyang", 42.0, "2018-10-01 10:00:00", 116.4,
                        39.9) +
          ", " +
          VehicleValues("v2", "suburb", 42.0, "2018-10-01 10:00:00", 120.0,
                        30.0));
  const uint64_t scanned_after = obs::Registry::Global().GetSnapshot().counter(
      "just_query_rows_scanned_total");
  EXPECT_EQ(scanned_after, scanned_before)
      << "continuous-query matching must not scan storage";
  auto taken = engine_->stream_hub()->TakeNotifications("tester", "downtown");
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  ASSERT_EQ(taken->size(), 1u);
  EXPECT_EQ((*taken)[0].query, "downtown");
  EXPECT_EQ((*taken)[0].table, "vehicles");
  EXPECT_EQ((*taken)[0].fid, "v1");
  EXPECT_GT((*taken)[0].timestamp_ms, 0);  // row event time carried through
  EXPECT_EQ((*taken)[0].seq, 1u);
  // The ring drained: a second take returns nothing.
  taken = engine_->stream_hub()->TakeNotifications("tester", "downtown");
  ASSERT_TRUE(taken.ok());
  EXPECT_TRUE(taken->empty());
}

TEST_F(StreamTest, AlertPredicateOnAttributes) {
  CreateVehicles();
  MustRun("CREATE CONTINUOUS QUERY speeders ON vehicles WHERE speed > 80");
  MustRun("INSERT STREAM INTO vehicles VALUES " +
          VehicleValues("slow", "a", 30.0, "2018-10-01 10:00:00", 116, 39) +
          ", " +
          VehicleValues("fast1", "a", 95.0, "2018-10-01 10:00:01", 116, 39) +
          ", " +
          VehicleValues("fast2", "b", 120.0, "2018-10-01 10:00:02", 116, 39));
  auto taken = engine_->stream_hub()->TakeNotifications("tester", "speeders");
  ASSERT_TRUE(taken.ok());
  ASSERT_EQ(taken->size(), 2u);
  EXPECT_EQ((*taken)[0].fid, "fast1");
  EXPECT_EQ((*taken)[1].fid, "fast2");
}

// Plain INSERT (non-stream) feeds standing queries too: a CQ watches the
// table, not one ingest endpoint.
TEST_F(StreamTest, PlainInsertAlsoFeedsContinuousQueries) {
  CreateVehicles();
  MustRun("CREATE CONTINUOUS QUERY all_rows ON vehicles");
  MustRun("INSERT INTO vehicles VALUES " +
          VehicleValues("v1", "a", 10.0, "2018-10-01 10:00:00", 116, 39));
  auto taken = engine_->stream_hub()->TakeNotifications("tester", "all_rows");
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(taken->size(), 1u);
}

TEST_F(StreamTest, WindowAggregateCountsPerGroupAndRetires) {
  CreateVehicles();
  MustRun(
      "CREATE CONTINUOUS QUERY heat ON vehicles WHERE speed > 0 "
      "GROUP BY district WINDOW 10 seconds");
  // Three in chaoyang, one in haidian, all within the first 10 seconds.
  MustRun("INSERT STREAM INTO vehicles VALUES " +
          VehicleValues("a", "chaoyang", 1, "2018-10-01 10:00:01", 116, 39) +
          ", " +
          VehicleValues("b", "chaoyang", 1, "2018-10-01 10:00:02", 116, 39) +
          ", " +
          VehicleValues("c", "haidian", 1, "2018-10-01 10:00:02", 116, 39) +
          ", " +
          VehicleValues("d", "chaoyang", 1, "2018-10-01 10:00:03", 116, 39));
  auto snap = engine_->stream_hub()->WindowSnapshot("tester", "heat");
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ASSERT_EQ(snap->size(), 2u);  // sorted by group
  EXPECT_EQ((*snap)[0].group, "chaoyang");
  EXPECT_EQ((*snap)[0].count, 3u);
  EXPECT_EQ((*snap)[1].group, "haidian");
  EXPECT_EQ((*snap)[1].count, 1u);
  // An event far past the window advances the watermark; old buckets retire.
  MustRun("INSERT STREAM INTO vehicles VALUES " +
          VehicleValues("e", "haidian", 1, "2018-10-01 10:01:40", 116, 39));
  snap = engine_->stream_hub()->WindowSnapshot("tester", "heat");
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->size(), 1u);
  EXPECT_EQ((*snap)[0].group, "haidian");
  EXPECT_EQ((*snap)[0].count, 1u);
}

TEST_F(StreamTest, ShowAndDropContinuousQueries) {
  CreateVehicles();
  MustRun("CREATE CONTINUOUS QUERY a ON vehicles WHERE speed > 80");
  MustRun(
      "CREATE CONTINUOUS QUERY b ON vehicles GROUP BY district "
      "WINDOW 5 minutes");
  auto show = Run("SHOW CONTINUOUS QUERIES");
  ASSERT_TRUE(show.ok());
  ASSERT_EQ(show->frame.num_rows(), 2u);
  const auto& row0 = show->frame.rows()[0];
  EXPECT_EQ(row0[0].string_value(), "a");
  EXPECT_EQ(row0[2].string_value(), "alert");
  const auto& row1 = show->frame.rows()[1];
  EXPECT_EQ(row1[0].string_value(), "b");
  EXPECT_EQ(row1[2].string_value(), "window");
  EXPECT_EQ(row1[5].int_value(), 5 * 60 * 1000);
  // Duplicate name refuses; unknown drop refuses.
  EXPECT_FALSE(Run("CREATE CONTINUOUS QUERY a ON vehicles").ok());
  EXPECT_FALSE(Run("DROP CONTINUOUS QUERY nope").ok());
  MustRun("DROP CONTINUOUS QUERY a");
  show = Run("SHOW CONTINUOUS QUERIES");
  ASSERT_TRUE(show.ok());
  EXPECT_EQ(show->frame.num_rows(), 1u);
}

TEST_F(StreamTest, DropTableDropsItsContinuousQueries) {
  CreateVehicles();
  MustRun("CREATE CONTINUOUS QUERY watcher ON vehicles");
  EXPECT_EQ(engine_->stream_hub()->NumQueries(), 1u);
  MustRun("DROP TABLE vehicles");
  EXPECT_EQ(engine_->stream_hub()->NumQueries(), 0u);
  auto show = Run("SHOW CONTINUOUS QUERIES");
  ASSERT_TRUE(show.ok());
  EXPECT_EQ(show->frame.num_rows(), 0u);
}

TEST_F(StreamTest, ContinuousQueryValidatesTableAndColumns) {
  CreateVehicles();
  EXPECT_FALSE(Run("CREATE CONTINUOUS QUERY q ON no_such_table").ok());
  EXPECT_FALSE(
      Run("CREATE CONTINUOUS QUERY q ON vehicles GROUP BY nope WINDOW 1 "
          "minute")
          .ok());
  // GROUP BY without WINDOW is a parse error.
  EXPECT_FALSE(
      Run("CREATE CONTINUOUS QUERY q ON vehicles GROUP BY district").ok());
}

TEST_F(StreamTest, WriteQuotaShedsStreamInsertAndPersists) {
  CreateVehicles();
  meta::TenantQuotaConfig q;
  q.write_rows_per_sec = 2;
  q.write_burst_rows = 2;
  ASSERT_TRUE(engine_->SetTenantQuota("tester", q).ok());
  // Burst of 2 admits exactly 2 rows; the third sheds.
  MustRun("INSERT STREAM INTO vehicles VALUES " +
          VehicleValues("a", "x", 1, "2018-10-01 10:00:00", 116, 39) + ", " +
          VehicleValues("b", "x", 1, "2018-10-01 10:00:01", 116, 39));
  auto shed = Run("INSERT STREAM INTO vehicles VALUES " +
                  VehicleValues("c", "x", 1, "2018-10-01 10:00:02", 116, 39));
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted())
      << shed.status().ToString();
  auto counters = engine_->quota_manager()->GetCounters("tester");
  EXPECT_EQ(counters.write_rows_admitted, 2u);
  EXPECT_EQ(counters.write_sheds, 1u);
  // Tenant-labeled metrics landed in the registry.
  auto snap = obs::Registry::Global().GetSnapshot();
  EXPECT_GE(snap.counter("just_tenant_write_shed_total{tenant=\"tester\"}"),
            1u);
  // The quota survives a full engine reopen via the catalog.
  Reopen();
  meta::TenantQuotaConfig loaded;
  ASSERT_TRUE(engine_->quota_manager()->GetQuota("tester", &loaded));
  EXPECT_EQ(loaded.write_rows_per_sec, 2u);
  EXPECT_EQ(loaded.write_burst_rows, 2u);
}

TEST_F(StreamTest, ScanQuotaShedsAdHocQueriesWhenInDebt) {
  CreateVehicles();
  for (int i = 0; i < 50; ++i) {
    MustRun("INSERT INTO vehicles VALUES " +
            VehicleValues("v" + std::to_string(i), "x", i,
                          "2018-10-01 10:00:00", 116.4, 39.9));
  }
  ASSERT_TRUE(engine_->Finalize().ok());
  // A tiny scan budget: the first query admits (post-paid) and overdraws;
  // the next one sheds until the debt refills.
  meta::TenantQuotaConfig q;
  q.scan_bytes_per_sec = 1;
  q.scan_burst_bytes = 1;
  ASSERT_TRUE(engine_->SetTenantQuota("tester", q).ok());
  auto first = Run("SELECT fid FROM vehicles WHERE speed >= 0");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->frame.num_rows(), 50u);
  auto counters = engine_->quota_manager()->GetCounters("tester");
  EXPECT_GT(counters.scan_bytes_charged, 0u);
  auto second = Run("SELECT fid FROM vehicles WHERE speed >= 0");
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted())
      << second.status().ToString();
  EXPECT_GE(engine_->quota_manager()->GetCounters("tester").scan_sheds, 1u);
}

// Per-query CQ metrics: matches/notifications counted under a query label.
TEST_F(StreamTest, ContinuousQueryMetricsLand) {
  CreateVehicles();
  MustRun("CREATE CONTINUOUS QUERY m ON vehicles WHERE speed > 50");
  MustRun("INSERT STREAM INTO vehicles VALUES " +
          VehicleValues("a", "x", 60, "2018-10-01 10:00:00", 116, 39) + ", " +
          VehicleValues("b", "x", 10, "2018-10-01 10:00:01", 116, 39));
  auto snap = obs::Registry::Global().GetSnapshot();
  EXPECT_GE(snap.counter("just_cq_matches_total{query=\"m\"}"), 1u);
  EXPECT_GE(snap.counter("just_cq_eval_rows_total"), 2u);
}

// --- parser coverage for the new statements ---

TEST(StreamParserTest, CreateContinuousQueryForms) {
  auto stmt = sql::ParseStatement(
      "CREATE CONTINUOUS QUERY cq ON t WHERE speed > 80");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, sql::Statement::Kind::kCreateContinuousQuery);
  EXPECT_EQ(stmt->create_continuous_query->name, "cq");
  EXPECT_EQ(stmt->create_continuous_query->table, "t");
  EXPECT_NE(stmt->create_continuous_query->where, nullptr);
  EXPECT_EQ(stmt->create_continuous_query->window_ms, 0);

  stmt = sql::ParseStatement(
      "CREATE CONTINUOUS QUERY w ON t GROUP BY d WINDOW 90 seconds");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->create_continuous_query->group_by, "d");
  EXPECT_EQ(stmt->create_continuous_query->window_ms, 90000);

  stmt = sql::ParseStatement("CREATE CONTINUOUS QUERY w ON t WINDOW 2 hours");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->create_continuous_query->window_ms, 2 * 3600 * 1000);

  stmt = sql::ParseStatement("CREATE CONTINUOUS QUERY w ON t WINDOW 250 ms");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->create_continuous_query->window_ms, 250);

  EXPECT_FALSE(sql::ParseStatement("CREATE CONTINUOUS QUERY w ON t "
                                   "WINDOW 5 fortnights")
                   .ok());
  EXPECT_FALSE(sql::ParseStatement("CREATE CONTINUOUS QUERY w ON t "
                                   "WINDOW 0 seconds")
                   .ok());
  EXPECT_FALSE(
      sql::ParseStatement("CREATE CONTINUOUS QUERY w ON t GROUP BY d").ok());
}

TEST(StreamParserTest, InsertStreamAndShowAndDrop) {
  auto stmt =
      sql::ParseStatement("INSERT STREAM INTO t VALUES (1, 'a'), (2, 'b')");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, sql::Statement::Kind::kInsert);
  EXPECT_TRUE(stmt->insert->stream);
  EXPECT_EQ(stmt->insert->rows.size(), 2u);

  stmt = sql::ParseStatement("INSERT INTO t VALUES (1, 'a')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(stmt->insert->stream);

  stmt = sql::ParseStatement("SHOW CONTINUOUS QUERIES");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->show->continuous_queries);

  stmt = sql::ParseStatement("DROP CONTINUOUS QUERY cq");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, sql::Statement::Kind::kDropContinuousQuery);
  EXPECT_EQ(stmt->drop_continuous_query->name, "cq");
}

}  // namespace
}  // namespace just::stream
