#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "compress/codec.h"
#include "traj/dbscan.h"
#include "traj/map_matching.h"
#include "traj/preprocess.h"
#include "traj/road_network.h"
#include "traj/trajectory.h"
#include "workload/generators.h"

namespace just::traj {
namespace {

Trajectory MakeWalk(int n, double lng0 = 116.4, double lat0 = 39.9,
                    int64_t step_ms = 15000) {
  std::vector<GpsPoint> pts;
  Rng rng(7);
  geo::Point p{lng0, lat0};
  TimestampMs t = ParseTimestamp("2014-03-05 08:00:00").value();
  for (int i = 0; i < n; ++i) {
    pts.push_back(GpsPoint{p, t});
    p.lng += rng.Uniform(-1.0, 1.0) * 1e-4;
    p.lat += rng.Uniform(-1.0, 1.0) * 1e-4;
    t += step_ms;
  }
  return Trajectory("walk", std::move(pts));
}

TEST(TrajectoryTest, BoundsAndTimes) {
  Trajectory t("t1", {{{116.1, 39.1}, 1000}, {{116.3, 39.5}, 5000},
                      {{116.2, 39.3}, 9000}});
  geo::Mbr box = t.Bounds();
  EXPECT_EQ(box.lng_min, 116.1);
  EXPECT_EQ(box.lat_max, 39.5);
  EXPECT_EQ(t.start_time(), 1000);
  EXPECT_EQ(t.end_time(), 9000);
  EXPECT_GT(t.LengthMeters(), 0);
}

TEST(TrajectoryTest, RawSerializationRoundTrip) {
  Trajectory t = MakeWalk(500);
  auto back = Trajectory::DeserializeRaw("walk", t.SerializeRaw());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);  // raw is lossless
}

TEST(TrajectoryTest, DeltaSerializationNearLossless) {
  Trajectory t = MakeWalk(500);
  auto back = Trajectory::DeserializeDelta("walk", t.SerializeDelta());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    // Quantization error <= 0.5e-6 degrees (~5 cm).
    EXPECT_NEAR(back->points()[i].position.lng, t.points()[i].position.lng,
                1e-6);
    EXPECT_NEAR(back->points()[i].position.lat, t.points()[i].position.lat,
                1e-6);
    EXPECT_EQ(back->points()[i].time, t.points()[i].time);
  }
}

TEST(TrajectoryTest, DeltaMuchSmallerThanRaw) {
  Trajectory t = MakeWalk(1000);
  EXPECT_LT(t.SerializeDelta().size(), t.SerializeRaw().size() / 3);
}

// The production storage path: delta transform + LZ77 cell vs raw cell.
// This is the Figure 10b mechanism (136 GB -> ~30 GB).
TEST(TrajectoryTest, CompressedCellMuchSmallerThanRaw) {
  Trajectory t = MakeWalk(2000);
  std::string raw_cell =
      compress::EncodeCell(*compress::NoneCodec(), t.SerializeRaw());
  std::string gz_cell =
      compress::EncodeCell(*compress::Lz77Codec(), t.SerializeDelta());
  EXPECT_LT(gz_cell.size(), raw_cell.size() / 4);
}

TEST(TrajectoryTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Trajectory::DeserializeRaw("x", "garbage").ok());
  std::string truncated = MakeWalk(10).SerializeDelta();
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(Trajectory::DeserializeDelta("x", truncated).ok());
}

TEST(NoiseFilterTest, DropsTeleportingFix) {
  Trajectory t("t", {{{116.40, 39.90}, 0},
                     {{116.4001, 39.9001}, 15000},
                     {{117.5, 40.9}, 30000},  // ~150 km jump in 15 s
                     {{116.4002, 39.9002}, 45000}});
  Trajectory filtered = NoiseFilter(t);
  EXPECT_EQ(filtered.size(), 3u);
  for (const GpsPoint& p : filtered.points()) {
    EXPECT_LT(p.position.lng, 117.0);
  }
}

TEST(NoiseFilterTest, DropsNonMonotoneTimestamps) {
  Trajectory t("t", {{{116.40, 39.90}, 10000},
                     {{116.4001, 39.9001}, 5000},  // goes back in time
                     {{116.4002, 39.9002}, 20000}});
  Trajectory filtered = NoiseFilter(t);
  EXPECT_EQ(filtered.size(), 2u);
}

TEST(NoiseFilterTest, KeepsCleanTrajectory) {
  Trajectory t = MakeWalk(200);
  EXPECT_EQ(NoiseFilter(t).size(), t.size());
}

TEST(SegmentationTest, SplitsOnTimeGap) {
  std::vector<GpsPoint> pts;
  TimestampMs t = 0;
  for (int i = 0; i < 10; ++i) {
    pts.push_back(GpsPoint{{116.4 + i * 1e-4, 39.9}, t});
    t += 15000;
  }
  t += 2 * kMillisPerHour;  // big gap
  for (int i = 0; i < 10; ++i) {
    pts.push_back(GpsPoint{{116.5 + i * 1e-4, 39.9}, t});
    t += 15000;
  }
  auto segments = Segmentation(Trajectory("t", pts));
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].size(), 10u);
  EXPECT_EQ(segments[1].size(), 10u);
  EXPECT_NE(segments[0].oid(), segments[1].oid());
}

TEST(SegmentationTest, DiscardsShortSegments) {
  SegmentationOptions opts;
  opts.min_points = 5;
  std::vector<GpsPoint> pts;
  for (int i = 0; i < 3; ++i) {
    pts.push_back(GpsPoint{{116.4, 39.9}, i * 15000});
  }
  auto segments = Segmentation(Trajectory("t", pts), opts);
  EXPECT_TRUE(segments.empty());
}

TEST(StayPointTest, FindsDwell) {
  std::vector<GpsPoint> pts;
  TimestampMs t = 0;
  // Moving...
  for (int i = 0; i < 20; ++i) {
    pts.push_back(GpsPoint{{116.40 + i * 2e-3, 39.9}, t});
    t += 30000;
  }
  // ...then 10 minutes parked at one spot...
  geo::Point stay{116.45, 39.95};
  for (int i = 0; i < 20; ++i) {
    pts.push_back(GpsPoint{{stay.lng + 1e-5, stay.lat - 1e-5}, t});
    t += 30000;
  }
  // ...then moving again.
  for (int i = 0; i < 20; ++i) {
    pts.push_back(GpsPoint{{116.46 + i * 2e-3, 39.96}, t});
    t += 30000;
  }
  auto stays = DetectStayPoints(Trajectory("t", pts));
  ASSERT_EQ(stays.size(), 1u);
  EXPECT_NEAR(stays[0].center.lng, stay.lng, 1e-3);
  EXPECT_GE(stays[0].depart - stays[0].arrive, 5 * kMillisPerMinute);
}

TEST(StayPointTest, NoStaysWhenMoving) {
  Trajectory t = MakeWalk(100);
  StayPointOptions opts;
  opts.max_radius_meters = 5;  // walk moves more than this
  opts.min_duration_ms = kMillisPerMinute;
  EXPECT_TRUE(DetectStayPoints(t, opts).empty());
}

TEST(SimplifyTest, ReducesStraightLine) {
  std::vector<GpsPoint> pts;
  for (int i = 0; i <= 100; ++i) {
    pts.push_back(GpsPoint{{116.0 + i * 1e-3, 39.0 + i * 1e-3}, i * 1000});
  }
  Trajectory simplified = Simplify(Trajectory("t", pts), 1e-5);
  EXPECT_EQ(simplified.size(), 2u);  // perfectly straight -> endpoints
}

TEST(SimplifyTest, KeepsCorners) {
  std::vector<GpsPoint> pts;
  for (int i = 0; i <= 50; ++i) {
    pts.push_back(GpsPoint{{116.0 + i * 1e-3, 39.0}, i * 1000});
  }
  for (int i = 1; i <= 50; ++i) {
    pts.push_back(GpsPoint{{116.05, 39.0 + i * 1e-3}, (50 + i) * 1000});
  }
  Trajectory simplified = Simplify(Trajectory("t", pts), 1e-5);
  EXPECT_GE(simplified.size(), 3u);
  EXPECT_LE(simplified.size(), 5u);
}

// --- DBSCAN ---

// Naive O(n^2) reference implementation for cross-checking cluster counts.
int NaiveClusterCount(const std::vector<geo::Point>& points, double eps,
                      int min_pts) {
  size_t n = points.size();
  auto neighbors = [&](size_t i) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      double dx = points[i].lng - points[j].lng;
      double dy = points[i].lat - points[j].lat;
      if (dx * dx + dy * dy <= eps * eps) out.push_back(j);
    }
    return out;
  };
  std::vector<int> label(n, -2);  // -2 unvisited, -1 noise
  int clusters = 0;
  for (size_t i = 0; i < n; ++i) {
    if (label[i] != -2) continue;
    auto neigh = neighbors(i);
    if (static_cast<int>(neigh.size()) < min_pts) {
      label[i] = -1;
      continue;
    }
    int c = clusters++;
    label[i] = c;
    std::vector<size_t> frontier = neigh;
    while (!frontier.empty()) {
      size_t j = frontier.back();
      frontier.pop_back();
      if (label[j] == -1) label[j] = c;
      if (label[j] != -2) continue;
      label[j] = c;
      auto sub = neighbors(j);
      if (static_cast<int>(sub.size()) >= min_pts) {
        frontier.insert(frontier.end(), sub.begin(), sub.end());
      }
    }
  }
  return clusters;
}

TEST(DbscanTest, FindsThreeBlobs) {
  Rng rng(5);
  std::vector<geo::Point> pts;
  geo::Point centers[3] = {{116.1, 39.1}, {116.5, 39.5}, {116.9, 39.9}};
  for (const geo::Point& c : centers) {
    for (int i = 0; i < 50; ++i) {
      pts.push_back(geo::Point{c.lng + rng.NextGaussian() * 3e-4,
                               c.lat + rng.NextGaussian() * 3e-4});
    }
  }
  DbscanOptions opts;
  opts.radius = 0.002;
  opts.min_pts = 5;
  auto result = Dbscan(pts, opts);
  EXPECT_EQ(result.num_clusters, 3);
  // All points in a blob share a label.
  for (int blob = 0; blob < 3; ++blob) {
    std::set<int> labels;
    for (int i = 0; i < 50; ++i) labels.insert(result.labels[blob * 50 + i]);
    EXPECT_EQ(labels.size(), 1u) << "blob " << blob;
  }
}

TEST(DbscanTest, MarksIsolatedPointsNoise) {
  std::vector<geo::Point> pts;
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    pts.push_back(
        geo::Point{116.0 + i * 0.05, 39.0 + (i % 7) * 0.05});  // spread out
  }
  DbscanOptions opts;
  opts.radius = 0.001;
  opts.min_pts = 3;
  auto result = Dbscan(pts, opts);
  EXPECT_EQ(result.num_clusters, 0);
  for (int label : result.labels) EXPECT_EQ(label, DbscanResult::kNoise);
}

TEST(DbscanTest, MatchesNaiveClusterCountOnRandomData) {
  Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<geo::Point> pts;
    int blobs = 2 + static_cast<int>(rng.Uniform(4));
    for (int b = 0; b < blobs; ++b) {
      geo::Point c{rng.Uniform(116.0, 117.0), rng.Uniform(39.0, 40.0)};
      for (int i = 0; i < 40; ++i) {
        pts.push_back(geo::Point{c.lng + rng.NextGaussian() * 2e-4,
                                 c.lat + rng.NextGaussian() * 2e-4});
      }
    }
    for (int i = 0; i < 20; ++i) {  // background noise
      pts.push_back(
          geo::Point{rng.Uniform(116.0, 117.0), rng.Uniform(39.0, 40.0)});
    }
    DbscanOptions opts;
    opts.radius = 0.0015;
    opts.min_pts = 5;
    auto result = Dbscan(pts, opts);
    EXPECT_EQ(result.num_clusters,
              NaiveClusterCount(pts, opts.radius, opts.min_pts));
  }
}

TEST(DbscanTest, EmptyInput) {
  auto result = Dbscan({}, DbscanOptions{});
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_TRUE(result.labels.empty());
}

// --- Road network & map matching ---

TEST(RoadNetworkTest, GridHasExpectedSegments) {
  auto net = traj::RoadNetwork::MakeGrid(geo::Mbr::Of(116.0, 39.0, 116.1, 39.1),
                                         5, 5);
  // 5x5 grid: 5 rows x 4 horizontal + 4 vertical x 5 cols = 40 segments.
  EXPECT_EQ(net.segments().size(), 40u);
}

TEST(RoadNetworkTest, NearbyAndNearest) {
  auto net = traj::RoadNetwork::MakeGrid(geo::Mbr::Of(116.0, 39.0, 116.1, 39.1),
                                         5, 5);
  geo::Point p{116.0255, 39.012};  // near a horizontal street at lat 39.0?
  const RoadSegment* nearest = net.Nearest(p);
  ASSERT_NE(nearest, nullptr);
  EXPECT_LT(nearest->Distance(p), 0.02);
  auto nearby = net.Nearby(p, 0.03);
  EXPECT_FALSE(nearby.empty());
  // Nearest must be among nearby.
  bool found = false;
  for (const RoadSegment* s : nearby) {
    if (s->id == nearest->id) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MapMatchingTest, SnapsToNearbyStreets) {
  geo::Mbr area = geo::Mbr::Of(116.0, 39.0, 116.1, 39.1);
  auto net = traj::RoadNetwork::MakeGrid(area, 11, 11);
  // Walk along the street at lat 39.05 with small GPS noise.
  Rng rng(9);
  std::vector<GpsPoint> pts;
  for (int i = 0; i <= 50; ++i) {
    double lng = 116.0 + i * 0.002;
    pts.push_back(GpsPoint{{lng, 39.05 + rng.NextGaussian() * 1e-4},
                           i * 15000});
  }
  auto matched = MapMatch(Trajectory("t", pts), net);
  ASSERT_EQ(matched.size(), pts.size());
  int snapped = 0;
  for (const MatchedPoint& m : matched) {
    if (m.segment_id >= 0) {
      ++snapped;
      EXPECT_NEAR(m.snapped.lat, 39.05, 2e-4);  // snapped onto the street
    }
  }
  EXPECT_GT(snapped, 45);
}

TEST(MapMatchingTest, UnmatchedWhenFarFromRoads) {
  auto net = traj::RoadNetwork::MakeGrid(geo::Mbr::Of(116.0, 39.0, 116.1, 39.1),
                                         3, 3);
  std::vector<GpsPoint> pts = {{{130.0, 50.0}, 0}, {{130.1, 50.1}, 1000}};
  auto matched = MapMatch(Trajectory("t", pts), net);
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_EQ(matched[0].segment_id, -1);
  EXPECT_EQ(matched[0].snapped.lng, 130.0);  // falls back to raw position
}

TEST(MapMatchingTest, EmptyTrajectory) {
  auto net = traj::RoadNetwork::MakeGrid(geo::Mbr::Of(0, 0, 1, 1), 3, 3);
  EXPECT_TRUE(MapMatch(Trajectory("t", {}), net).empty());
}

// --- Workload generators ---

TEST(WorkloadTest, TrajectoriesMatchSpec) {
  workload::TrajOptions opts;
  opts.num_trajectories = 50;
  opts.points_per_traj = 100;
  auto trajectories = workload::GenerateTrajectories(opts);
  ASSERT_EQ(trajectories.size(), 50u);
  TimestampMs lo = ParseTimestamp(opts.start_date).value();
  TimestampMs hi = lo + opts.num_days * kMillisPerDay + kMillisPerDay;
  for (const auto& t : trajectories) {
    EXPECT_EQ(t.size(), 100u);
    EXPECT_TRUE(opts.area.Contains(t.Bounds()));
    EXPECT_GE(t.start_time(), lo);
    EXPECT_LT(t.end_time(), hi);
    // Timestamps strictly increasing.
    for (size_t i = 1; i < t.size(); ++i) {
      EXPECT_GT(t.points()[i].time, t.points()[i - 1].time);
    }
  }
}

TEST(WorkloadTest, TrajectoriesDeterministicBySeed) {
  workload::TrajOptions opts;
  opts.num_trajectories = 5;
  opts.points_per_traj = 20;
  auto a = workload::GenerateTrajectories(opts);
  auto b = workload::GenerateTrajectories(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(WorkloadTest, OrdersMatchSpec) {
  workload::OrderOptions opts;
  opts.num_orders = 500;
  auto orders = workload::GenerateOrders(opts);
  ASSERT_EQ(orders.size(), 500u);
  TimestampMs lo = ParseTimestamp(opts.start_date).value();
  std::set<std::string> fids;
  for (const auto& o : orders) {
    EXPECT_TRUE(opts.area.Contains(o.point));
    EXPECT_GE(o.time, lo);
    fids.insert(o.fid);
  }
  EXPECT_EQ(fids.size(), 500u);  // unique ids
}

TEST(WorkloadTest, CopyAndSampleScalesAndShiftsTime) {
  workload::TrajOptions opts;
  opts.num_trajectories = 10;
  opts.points_per_traj = 20;
  auto base = workload::GenerateTrajectories(opts);
  auto scaled = workload::CopyAndSample(base, 3, 1);
  EXPECT_EQ(scaled.size(), 30u);
  // Copies extend the time span (Table II: Synthetic spans more months).
  TimestampMs max_base = 0, max_scaled = 0;
  for (const auto& t : base) max_base = std::max(max_base, t.end_time());
  for (const auto& t : scaled) max_scaled = std::max(max_scaled, t.end_time());
  EXPECT_GT(max_scaled, max_base + 30 * kMillisPerDay);
}

}  // namespace
}  // namespace just::traj
