// Reproduces Figure 10c / 10d: indexing time vs data size, JUST against the
// Spark-based systems. Paper shape:
//   - Order (Fig 10c): JUST pays more than the in-memory Spark systems
//     (its indexing includes durable storing), but stays in the same decade.
//   - Traj (Fig 10d): Simba OOMs at 40%, SpatialSpark fails at 100%;
//     JUST < JUSTnc because compressed writes do less disk I/O. The
//     Hadoop systems are omitted as in the paper (hours-long index builds).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.h"

namespace just::bench {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void BM_JustIndexing(benchmark::State& state, Dataset dataset,
                     Variant variant) {
  int pct = static_cast<int>(state.range(0));
  Fixture* fx = GetFixture(dataset, pct, variant);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx->index_build_ms);
  }
  state.counters["index_time_ms"] =
      static_cast<double>(fx->index_build_ms);
}

void BM_BaselineIndexing(benchmark::State& state, Dataset dataset,
                         const std::string& system_name) {
  int pct = static_cast<int>(state.range(0));
  Fixture* fx = GetFixture(dataset, pct, Variant::kJust);
  auto options = CalibratedBaselineOptions(dataset);
  auto system = baselines::MakeBaseline(system_name, options);
  if (!system.ok()) {
    state.SkipWithError(system.status().ToString().c_str());
    return;
  }
  auto records = ToBaselineRecords(*fx);
  int64_t elapsed_ms = 0;
  for (auto _ : state) {
    int64_t start = NowMs();
    Status st = (*system)->BuildIndex(records);
    elapsed_ms = NowMs() - start;
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.counters["index_time_ms"] = static_cast<double>(elapsed_ms);
}

const std::vector<std::string>& SparkSystems() {
  static const std::vector<std::string>* systems =
      new std::vector<std::string>{"GeoSpark", "LocationSpark",
                                   "SpatialSpark", "Simba"};
  return *systems;
}

void PrintFigure(const char* figure, Dataset dataset,
                 const std::vector<Variant>& just_variants,
                 const std::vector<std::string>& systems) {
  std::printf("\n%s — indexing time (ms) vs data size, dataset=%s\n", figure,
              DatasetName(dataset));
  std::printf("%-12s", "Data Size");
  for (Variant v : just_variants) std::printf("%16s", VariantName(v));
  for (const auto& s : systems) std::printf("%16s", s.c_str());
  std::printf("\n");
  for (int pct : {20, 40, 60, 80, 100}) {
    std::printf("%10d%%  ", pct);
    for (Variant v : just_variants) {
      Fixture* fx = GetFixture(dataset, pct, v);
      std::printf("%16lld", static_cast<long long>(fx->index_build_ms));
    }
    auto options = CalibratedBaselineOptions(dataset);
    Fixture* fx = GetFixture(dataset, pct, Variant::kJust);
    auto records = ToBaselineRecords(*fx);
    for (const auto& name : systems) {
      auto system = baselines::MakeBaseline(name, options);
      int64_t start = NowMs();
      Status st = (*system)->BuildIndex(records);
      if (st.IsResourceExhausted()) {
        std::printf("%16s", "OOM");
      } else if (!st.ok()) {
        std::printf("%16s", "FAIL");
      } else {
        std::printf("%16lld", static_cast<long long>(NowMs() - start));
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  using namespace just::bench;  // NOLINT
  for (int pct : {20, 60, 100}) {
    for (Dataset dataset : {Dataset::kOrder, Dataset::kTraj}) {
      std::string fig = dataset == Dataset::kOrder ? "Fig10c" : "Fig10d";
      benchmark::RegisterBenchmark(
          (fig + "/JUST").c_str(),
          [dataset](benchmark::State& s) {
            BM_JustIndexing(s, dataset, Variant::kJust);
          })
          ->Arg(pct)
          ->Iterations(1);
      for (const std::string& system : SparkSystems()) {
        benchmark::RegisterBenchmark(
            (fig + "/" + system).c_str(),
            [dataset, system](benchmark::State& s) {
              BM_BaselineIndexing(s, dataset, system);
            })
            ->Arg(pct)
            ->Iterations(1);
      }
    }
    benchmark::RegisterBenchmark("Fig10d/JUSTnc",
                                 [](benchmark::State& s) {
                                   BM_JustIndexing(s, Dataset::kTraj,
                                                   Variant::kNoCompress);
                                 })
        ->Arg(pct)
        ->Iterations(1);
  }
  just::bench::RunBenchmarks(argc, argv);
  PrintFigure("Figure 10c", Dataset::kOrder, {Variant::kJust},
              SparkSystems());
  PrintFigure("Figure 10d", Dataset::kTraj,
              {Variant::kJust, Variant::kNoCompress},
              {"GeoSpark", "SpatialSpark", "Simba"});
  return 0;
}
