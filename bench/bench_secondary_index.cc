// Secondary-index acceptance bench: an attribute + spatial-box query
// (courier_id = X AND geom WITHIN box) over a >=100k-row order table,
// answered two ways on identical data:
//   - full refinement: the spatial curve index drives, the courier
//     predicate runs as residual refinement over every row in the box;
//   - hybrid index: a CREATE INDEX secondary index drives (covering
//     entries, curve-intersection refinement) and reads only the matches.
// The indexed path must be >=10x faster. Also measures the online index
// build's backfill throughput (rows/s).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "sql/justql.h"

namespace just::bench {
namespace {

constexpr int kRows = 120000;
constexpr int kCouriers = 500;  // 240 orders per courier
constexpr const char* kPredicate =
    "courier = 'c7' AND geom WITHIN st_makeMBR(116.0, 39.5, 116.7, 40.5)";

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SecIdxFixture {
  std::unique_ptr<core::JustEngine> engine;
  std::unique_ptr<sql::JustQL> ql;
  int64_t index_build_ms = 0;
  std::string user = "bench";
};

/// One engine, two tables with identical data: `orders_plain` (curve
/// indexes only) and `orders_idx` (plus a ready secondary index on
/// courier). Built once per process.
SecIdxFixture* GetSecIdxFixture() {
  static SecIdxFixture* fixture = [] {
    auto* fx = new SecIdxFixture();
    std::string dir = BenchDataRoot() + "/secondary_index";
    std::filesystem::create_directories(dir);
    core::EngineOptions options;
    options.data_dir = dir;
    options.num_servers = 2;
    options.num_shards = 4;
    auto engine = core::JustEngine::Open(options);
    if (!engine.ok()) {
      std::fprintf(stderr, "open: %s\n", engine.status().ToString().c_str());
      std::abort();
    }
    fx->engine = std::move(engine).value();

    TimestampMs base = ParseTimestamp("2018-10-01").value();
    for (const char* name : {"orders_plain", "orders_idx"}) {
      meta::TableMeta table;
      table.user = fx->user;
      table.name = name;
      table.columns = {
          {"fid", exec::DataType::kString, true, "", ""},
          {"courier", exec::DataType::kString, false, "", ""},
          {"time", exec::DataType::kTimestamp, false, "", ""},
          {"geom", exec::DataType::kGeometry, false, "", ""},
      };
      if (!fx->engine->CreateTable(table).ok()) std::abort();
      Rng rng(97);  // identical data in both tables
      std::vector<exec::Row> chunk;
      chunk.reserve(10000);
      for (int i = 0; i < kRows; ++i) {
        chunk.push_back({
            exec::Value::String("o" + std::to_string(i)),
            exec::Value::String("c" + std::to_string(i % kCouriers)),
            exec::Value::Timestamp(base + (i % 86400) * 1000),
            exec::Value::GeometryVal(geo::Geometry::MakePoint(
                {116.0 + rng.NextDouble(), 39.5 + rng.NextDouble()})),
        });
        if (chunk.size() == 10000) {
          if (!fx->engine->InsertBatch(fx->user, name, chunk).ok()) {
            std::abort();
          }
          chunk.clear();
        }
      }
      if (!fx->engine->Finalize().ok()) std::abort();
    }

    int64_t start = NowMs();
    Status built = fx->engine->CreateIndex(fx->user, "orders_idx",
                                           "idx_courier", "courier");
    fx->index_build_ms = NowMs() - start;
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.ToString().c_str());
      std::abort();
    }
    fx->ql = std::make_unique<sql::JustQL>(fx->engine.get());
    return fx;
  }();
  return fixture;
}

size_t RunQuery(SecIdxFixture* fx, const std::string& table) {
  auto result = fx->ql->Execute(
      fx->user, "SELECT fid FROM " + table + " WHERE " + kPredicate);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  return result->frame.num_rows();
}

void BM_AttrBoxQuery(benchmark::State& state, const std::string& table) {
  SecIdxFixture* fx = GetSecIdxFixture();
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunQuery(fx, table);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}

void BM_IndexBuild(benchmark::State& state) {
  SecIdxFixture* fx = GetSecIdxFixture();
  for (auto _ : state) {
    int64_t start = NowMs();
    Status built = fx->engine->CreateIndex(fx->user, "orders_plain",
                                           "idx_tmp", "courier");
    int64_t elapsed = NowMs() - start;
    state.PauseTiming();
    if (!built.ok()) {
      state.SkipWithError(built.ToString().c_str());
      return;
    }
    state.counters["build_rows_per_sec"] =
        elapsed > 0 ? 1000.0 * kRows / static_cast<double>(elapsed)
                    : static_cast<double>(kRows);
    if (!fx->engine->DropIndex(fx->user, "orders_plain", "idx_tmp").ok()) {
      state.SkipWithError("drop failed");
      return;
    }
    state.ResumeTiming();
  }
}

/// Prints the acceptance comparison: indexed vs full-refinement latency on
/// identical data, and the speedup (target: >=10x).
void PrintSummary() {
  SecIdxFixture* fx = GetSecIdxFixture();
  size_t plain_rows = RunQuery(fx, "orders_plain");  // warm both paths
  size_t idx_rows = RunQuery(fx, "orders_idx");
  constexpr int kReps = 5;
  int64_t plain_ms = 0;
  int64_t idx_ms = 0;
  for (int i = 0; i < kReps; ++i) {
    int64_t start = NowMs();
    RunQuery(fx, "orders_plain");
    plain_ms += NowMs() - start;
    start = NowMs();
    RunQuery(fx, "orders_idx");
    idx_ms += NowMs() - start;
  }
  double plain_avg = static_cast<double>(plain_ms) / kReps;
  double idx_avg = static_cast<double>(idx_ms) / kReps;
  std::printf(
      "\nSecondary index — attribute+box query over %d rows "
      "(%zu matches)\n", kRows, idx_rows);
  std::printf("  full refinement : %10.2f ms/query (rows=%zu)\n", plain_avg,
              plain_rows);
  std::printf("  hybrid index    : %10.2f ms/query (rows=%zu)\n", idx_avg,
              idx_rows);
  std::printf("  speedup         : %10.1fx (acceptance: >=10x)\n",
              idx_avg > 0 ? plain_avg / idx_avg : plain_avg);
  std::printf("  online build    : %lld ms for %d rows (%.0f rows/s)\n",
              static_cast<long long>(fx->index_build_ms), kRows,
              fx->index_build_ms > 0
                  ? 1000.0 * kRows / static_cast<double>(fx->index_build_ms)
                  : static_cast<double>(kRows));
  if (plain_rows != idx_rows) {
    std::fprintf(stderr, "MISMATCH: indexed path returned %zu rows, "
                         "full refinement %zu\n", idx_rows, plain_rows);
    std::exit(1);
  }
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  using namespace just::bench;  // NOLINT
  benchmark::RegisterBenchmark("SecondaryIndex/AttrBoxQuery/full_refinement",
                               [](benchmark::State& s) {
                                 BM_AttrBoxQuery(s, "orders_plain");
                               });
  benchmark::RegisterBenchmark("SecondaryIndex/AttrBoxQuery/indexed",
                               [](benchmark::State& s) {
                                 BM_AttrBoxQuery(s, "orders_idx");
                               });
  benchmark::RegisterBenchmark("SecondaryIndex/OnlineBuild", BM_IndexBuild)
      ->Iterations(1);
  just::bench::RunBenchmarks(argc, argv);
  PrintSummary();
  return 0;
}
