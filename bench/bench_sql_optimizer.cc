// Reproduces Figure 8: the logical-plan optimization of Section VI. Prints
// the analyzed and optimized plans for the paper's example query, and
// benchmarks the end-to-end SQL path with and without the optimizer rules
// (the optimizer's payoff: the filter reaches the scan, so the Z2 index is
// used instead of a full scan).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/justql.h"
#include "sql/optimizer.h"
#include "sql/parser.h"

namespace just::bench {
namespace {

const char* kFigure8Query =
    "SELECT fid, geom FROM (SELECT * FROM orders) t "
    "WHERE fid = 52 * 9 AND geom WITHIN "
    "st_makeMBR(116.35, 39.85, 116.45, 39.95) "
    "ORDER BY time";

void BM_OptimizedExecution(benchmark::State& state) {
  Fixture* fx = GetFixture(Dataset::kOrder, 100, Variant::kJust);
  sql::JustQL ql(fx->engine.get());
  for (auto _ : state) {
    auto result = ql.Execute(fx->user, kFigure8Query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

void BM_UnoptimizedExecution(benchmark::State& state) {
  // Analyze but skip Optimize: the filter stays above the subquery project,
  // so the executor cannot translate it into index SCANs.
  Fixture* fx = GetFixture(Dataset::kOrder, 100, Variant::kJust);
  auto stmt = sql::ParseStatement(kFigure8Query);
  if (!stmt.ok()) {
    state.SkipWithError(stmt.status().ToString().c_str());
    return;
  }
  sql::Analyzer analyzer(fx->engine.get(), fx->user);
  for (auto _ : state) {
    auto plan = analyzer.Analyze(*stmt->select);
    if (!plan.ok()) {
      state.SkipWithError(plan.status().ToString().c_str());
      return;
    }
    sql::Executor executor(fx->engine.get(), fx->user);
    auto frame = executor.Execute(**plan);
    if (!frame.ok()) {
      state.SkipWithError(frame.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(frame);
  }
}

void BM_ParseAndOptimizeOnly(benchmark::State& state) {
  Fixture* fx = GetFixture(Dataset::kOrder, 100, Variant::kJust);
  sql::Analyzer analyzer(fx->engine.get(), fx->user);
  for (auto _ : state) {
    auto stmt = sql::ParseStatement(kFigure8Query);
    auto plan = analyzer.Analyze(*stmt->select);
    auto optimized = sql::Optimize(std::move(*plan));
    benchmark::DoNotOptimize(optimized);
  }
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  using namespace just::bench;  // NOLINT
  benchmark::RegisterBenchmark("Fig8/ParseAnalyzeOptimize",
                               BM_ParseAndOptimizeOnly);
  benchmark::RegisterBenchmark("Fig8/Execute/Optimized",
                               BM_OptimizedExecution);
  benchmark::RegisterBenchmark("Fig8/Execute/Unoptimized",
                               BM_UnoptimizedExecution);
  just::bench::RunBenchmarks(argc, argv);

  // Print the Figure 8 plans.
  Fixture* fx = GetFixture(Dataset::kOrder, 100, Variant::kJust);
  just::sql::JustQL ql(fx->engine.get());
  auto explain = ql.ExplainSelect(fx->user, kFigure8Query);
  if (explain.ok()) {
    std::printf("\nFigure 8 — logical plan before/after optimization\n%s\n",
                explain->c_str());
  }
  return 0;
}
