// Reproduces Figure 8: the logical-plan optimization of Section VI. Prints
// the analyzed and optimized plans for the paper's example query, and
// benchmarks the end-to-end SQL path with and without the optimizer rules
// (the optimizer's payoff: the filter reaches the scan, so the Z2 index is
// used instead of a full scan).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "exec/column_batch.h"
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/expr_eval.h"
#include "sql/justql.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/predicate_program.h"

namespace just::bench {
namespace {

const char* kFigure8Query =
    "SELECT fid, geom FROM (SELECT * FROM orders) t "
    "WHERE fid = 52 * 9 AND geom WITHIN "
    "st_makeMBR(116.35, 39.85, 116.45, 39.95) "
    "ORDER BY time";

void BM_OptimizedExecution(benchmark::State& state) {
  Fixture* fx = GetFixture(Dataset::kOrder, 100, Variant::kJust);
  sql::JustQL ql(fx->engine.get());
  for (auto _ : state) {
    auto result = ql.Execute(fx->user, kFigure8Query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

void BM_UnoptimizedExecution(benchmark::State& state) {
  // Analyze but skip Optimize: the filter stays above the subquery project,
  // so the executor cannot translate it into index SCANs.
  Fixture* fx = GetFixture(Dataset::kOrder, 100, Variant::kJust);
  auto stmt = sql::ParseStatement(kFigure8Query);
  if (!stmt.ok()) {
    state.SkipWithError(stmt.status().ToString().c_str());
    return;
  }
  sql::Analyzer analyzer(fx->engine.get(), fx->user);
  for (auto _ : state) {
    auto plan = analyzer.Analyze(*stmt->select);
    if (!plan.ok()) {
      state.SkipWithError(plan.status().ToString().c_str());
      return;
    }
    sql::Executor executor(fx->engine.get(), fx->user);
    auto frame = executor.Execute(**plan);
    if (!frame.ok()) {
      state.SkipWithError(frame.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(frame);
  }
}

void BM_ParseAndOptimizeOnly(benchmark::State& state) {
  Fixture* fx = GetFixture(Dataset::kOrder, 100, Variant::kJust);
  sql::Analyzer analyzer(fx->engine.get(), fx->user);
  for (auto _ : state) {
    auto stmt = sql::ParseStatement(kFigure8Query);
    auto plan = analyzer.Analyze(*stmt->select);
    auto optimized = sql::Optimize(std::move(*plan));
    benchmark::DoNotOptimize(optimized);
  }
}

// --- Post-scan refinement: row-at-a-time vs vectorized -------------------
//
// The same selective residual predicate (a numeric cutoff keeping ~5% of
// rows plus a string disequality) evaluated over the whole Order table,
// isolated from scan I/O: the data is decoded once outside the timing loop.
// RowAtATime is the legacy path (BoundExpr tree-walk per row); Vectorized
// is the compiled predicate program over column batches. rows_per_sec is
// the headline acceptance number.

struct RefineSetup {
  exec::DataFrame frame;
  exec::BatchVector batches;
  sql::Statement stmt;
  sql::BoundExpr bound;
  std::shared_ptr<const sql::PredicateProgram> program;
};

RefineSetup* GetRefineSetup() {
  static RefineSetup* setup = [] {
    Fixture* fx = GetFixture(Dataset::kOrder, 100, Variant::kJust);
    auto* s = new RefineSetup();
    auto frame = fx->engine->FullScan(fx->user, fx->table);
    if (!frame.ok()) std::abort();
    s->frame = std::move(frame).value();
    s->batches = exec::BatchesFromDataFrame(s->frame);

    TimestampMs cutoff =
        fx->time_lo + (fx->time_hi - fx->time_lo) / 20;  // ~5% selective
    auto stmt = sql::ParseStatement(
        "SELECT * FROM orders WHERE time < " + std::to_string(cutoff) +
        " AND fid != 'order_none'");
    if (!stmt.ok()) std::abort();
    s->stmt = std::move(*stmt);
    const sql::Expr& where = *s->stmt.select->where;
    auto bound = sql::BoundExpr::Bind(where, s->frame.schema());
    if (!bound.ok()) std::abort();
    s->bound = std::move(*bound);
    auto program = sql::PredicateProgram::Compile(where, s->frame.schema());
    if (!program.ok()) std::abort();
    s->program = std::move(*program);
    return s;
  }();
  return setup;
}

void BM_RefineRowAtATime(benchmark::State& state) {
  RefineSetup* s = GetRefineSetup();
  size_t kept = 0;
  for (auto _ : state) {
    kept = 0;
    for (const exec::Row& row : s->frame.rows()) {
      auto ok = s->bound.EvalBool(row);
      if (ok.ok() && ok.value()) ++kept;
    }
    benchmark::DoNotOptimize(kept);
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * s->frame.num_rows()),
      benchmark::Counter::kIsRate);
  state.counters["selectivity"] =
      static_cast<double>(kept) / static_cast<double>(s->frame.num_rows());
}

void BM_RefineVectorized(benchmark::State& state) {
  RefineSetup* s = GetRefineSetup();
  size_t kept = 0;
  for (auto _ : state) {
    kept = 0;
    for (exec::ColumnBatch& batch : s->batches) {
      batch.ClearSelection();
      if (!s->program->Run(&batch).ok()) {
        state.SkipWithError("program run failed");
        return;
      }
      kept += batch.num_active();
    }
    benchmark::DoNotOptimize(kept);
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * s->frame.num_rows()),
      benchmark::Counter::kIsRate);
  state.counters["selectivity"] =
      static_cast<double>(kept) / static_cast<double>(s->frame.num_rows());
}

// End-to-end SQL with the same residual shape, through both executors.
void BM_RefineEndToEnd(benchmark::State& state, bool interpreted) {
  Fixture* fx = GetFixture(Dataset::kOrder, 100, Variant::kJust);
  RefineSetup* s = GetRefineSetup();
  sql::Analyzer analyzer(fx->engine.get(), fx->user);
  auto plan = analyzer.Analyze(*s->stmt.select);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  auto optimized = sql::Optimize(std::move(*plan));
  if (!optimized.ok()) {
    state.SkipWithError(optimized.status().ToString().c_str());
    return;
  }
  sql::Executor executor(fx->engine.get(), fx->user,
                         sql::ExecOptions{.force_interpreted = interpreted});
  size_t rows = 0;
  for (auto _ : state) {
    auto frame = executor.Execute(**optimized);
    if (!frame.ok()) {
      state.SkipWithError(frame.status().ToString().c_str());
      return;
    }
    rows = frame->num_rows();
    benchmark::DoNotOptimize(frame);
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * s->frame.num_rows()),
      benchmark::Counter::kIsRate);
  state.counters["rows_out"] = static_cast<double>(rows);
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  using namespace just::bench;  // NOLINT
  benchmark::RegisterBenchmark("Fig8/ParseAnalyzeOptimize",
                               BM_ParseAndOptimizeOnly);
  benchmark::RegisterBenchmark("Fig8/Execute/Optimized",
                               BM_OptimizedExecution);
  benchmark::RegisterBenchmark("Fig8/Execute/Unoptimized",
                               BM_UnoptimizedExecution);
  benchmark::RegisterBenchmark("Refine/RowAtATime", BM_RefineRowAtATime);
  benchmark::RegisterBenchmark("Refine/Vectorized", BM_RefineVectorized);
  benchmark::RegisterBenchmark("Refine/EndToEnd/Interpreted",
                               [](benchmark::State& s) {
                                 BM_RefineEndToEnd(s, true);
                               });
  benchmark::RegisterBenchmark("Refine/EndToEnd/Vectorized",
                               [](benchmark::State& s) {
                                 BM_RefineEndToEnd(s, false);
                               });
  just::bench::RunBenchmarks(argc, argv);

  // Print the Figure 8 plans.
  Fixture* fx = GetFixture(Dataset::kOrder, 100, Variant::kJust);
  just::sql::JustQL ql(fx->engine.get());
  auto explain = ql.ExplainSelect(fx->user, kFigure8Query);
  if (explain.ok()) {
    std::printf("\nFigure 8 — logical plan before/after optimization\n%s\n",
                explain->c_str());
  }
  return 0;
}
