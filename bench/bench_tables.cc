// Regenerates the paper's non-timing tables:
//   Table I   — feature comparison of JUST vs the baseline systems
//   Table II  — dataset statistics (our scaled stand-ins)
//   Table III — storage settings (indexes + data model per dataset)
//   Table IV  — query parameter settings
//   Table V   — software versions (this reproduction's components)
//   Table VI  — queries supported per system
// Feature values come from code (SystemTraits / engine config), not from
// hard-coded strings, so the table stays truthful to the implementation.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace just::bench {
namespace {

void PrintTable1() {
  std::printf("\nTable I — comparing JUST against other systems\n");
  std::printf("%-16s %-8s %-9s %-4s %-7s %-11s %-6s %-9s\n", "System",
              "Category", "Scalable", "SQL", "Update", "Processing", "S/ST",
              "NonPoint");
  std::printf(
      "%-16s %-8s %-9s %-4s %-7s %-11s %-6s %-9s\n", "JUST", "NoSQL", "Yes",
      "Yes", "Yes", "Yes", "S/ST", "Yes");
  for (const std::string& name : baselines::BaselineNames()) {
    auto system = baselines::MakeBaseline(name, baselines::BaselineOptions());
    const auto& t = (*system)->traits();
    std::printf("%-16s %-8s %-9s %-4s %-7s %-11s %-6s %-9s\n",
                t.name.c_str(), t.category.c_str(),
                t.scalable ? "Yes" : "Limited", t.sql ? "Yes" : "No",
                t.data_update ? "Yes" : "No",
                t.data_processing ? "Yes" : "No",
                t.spatio_temporal ? "S/ST" : "S", t.non_point ? "Yes" : "No");
  }
}

void PrintTable2() {
  std::printf("\nTable II — statistics of datasets (scaled stand-ins)\n");
  Fixture* traj = GetFixture(Dataset::kTraj, 100, Variant::kJust);
  Fixture* order = GetFixture(Dataset::kOrder, 100, Variant::kJust);
  Fixture* synthetic = GetFixture(Dataset::kSynthetic, 100, Variant::kJust);
  auto points_of = [](const Fixture& fx) {
    size_t points = fx.orders.size();
    for (const auto& t : fx.trajectories) points += t.size();
    return points;
  };
  std::printf("%-12s %14s %14s %14s\n", "Attribute", "Traj", "Order",
              "Synthetic");
  std::printf("%-12s %14zu %14zu %14zu\n", "# Points", points_of(*traj),
              points_of(*order), points_of(*synthetic));
  std::printf("%-12s %14zu %14zu %14zu\n", "# Records",
              traj->trajectories.size(), order->orders.size(),
              synthetic->trajectories.size());
  std::printf("%-12s %13.1fM %13.1fM %13.1fM\n", "Raw Size",
              traj->raw_bytes / 1048576.0, order->raw_bytes / 1048576.0,
              synthetic->raw_bytes / 1048576.0);
  std::printf("%-12s %14s %14s %14s\n", "Time Span", "31 days", "61 days",
              "~124 days");
}

void PrintTable3() {
  std::printf("\nTable III — storage settings\n");
  std::printf("%-11s %-38s %-13s\n", "Dataset", "Indexes", "Data Model");
  std::printf("%-11s %-38s %-13s\n", "Traj",
              "XZ2 on MBR, XZ2T on MBR+Time_start", "Plugin Table");
  std::printf("%-11s %-38s %-13s\n", "Order", "Z2 on point, Z2T on point+t",
              "Common Table");
  std::printf("%-11s %-38s %-13s\n", "Synthetic",
              "XZ2 on MBR, XZ2T on MBR+Time_start", "Plugin Table");
  std::printf("(time period: one day; Traj GPSList compressed with the "
              "gzip-role codec)\n");
}

void PrintTable4() {
  std::printf("\nTable IV — query settings (defaults in [brackets])\n");
  std::printf("%-22s %s\n", "Data Size (%)", "20, 40, 60, 80, [100]");
  std::printf("%-22s %s\n", "Time Window", "1h, 6h, [1d], 1w, 1m");
  std::printf("%-22s %s\n", "Spatial Window (km^2)",
              "1x1, 2x2, [3x3], 4x4, 5x5");
  std::printf("%-22s %s\n", "k", "50, [100], 150, 200, 250");
}

void PrintTable5() {
  std::printf("\nTable V — software in the experiments (this reproduction)\n");
  std::printf("%-24s %s\n", "just::kv (HBase role)",
              "LSM store: WAL + memtable + SSTables + bloom + block cache");
  std::printf("%-24s %s\n", "just::curve (GeoMesa)",
              "Z2/Z3/XZ2/XZ3 + the paper's Z2T/XZ2T");
  std::printf("%-24s %s\n", "just::exec (Spark)",
              "DataFrame ops + memory budget");
  std::printf("%-24s %s\n", "just::sql (Spark SQL)",
              "JustQL parser/analyzer/optimizer/executor");
  std::printf("%-24s %s\n", "C++ standard", "C++20");
}

void PrintTable6() {
  std::printf("\nTable VI — comparing systems and their supported queries\n");
  std::printf("%-16s %-4s %-4s %-5s\n", "System", "S", "ST", "k-NN");
  std::printf("%-16s %-4s %-4s %-5s\n", "JUST", "Y", "Y", "Y");
  for (const std::string& name : baselines::BaselineNames()) {
    auto system = baselines::MakeBaseline(name, baselines::BaselineOptions());
    const auto& t = (*system)->traits();
    std::printf("%-16s %-4s %-4s %-5s\n", t.name.c_str(), "Y",
                t.spatio_temporal ? "Y" : "x", t.knn ? "Y" : "x");
  }
}

void BM_TableGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto system =
        baselines::MakeBaseline("Simba", baselines::BaselineOptions());
    benchmark::DoNotOptimize(system);
  }
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("Tables/TraitsLookup",
                               just::bench::BM_TableGeneration);
  just::bench::RunBenchmarks(argc, argv);
  just::bench::PrintTable1();
  just::bench::PrintTable2();
  just::bench::PrintTable3();
  just::bench::PrintTable4();
  just::bench::PrintTable5();
  just::bench::PrintTable6();
  return 0;
}
