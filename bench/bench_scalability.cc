// Reproduces Figure 14a / 14b: scalability on the Synthetic dataset
// (copy & sample of Traj, Section VIII-F). Paper shape:
//   - Fig 14a: indexing time and storage size grow linearly with data size.
//   - Fig 14b: spatial range and k-NN query time grow with data size, but
//     the spatio-temporal range query is FLAT — the qualified time periods
//     are located directly, and the amount of records per period does not
//     change as copies land in new periods.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace just::bench {
namespace {

constexpr double kWindowKm = 3.0;
constexpr int kK = 100;

void BM_SyntheticIndexing(benchmark::State& state) {
  int pct = static_cast<int>(state.range(0));
  Fixture* fx = GetFixture(Dataset::kSynthetic, pct, Variant::kJust);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx->index_build_ms);
  }
  state.counters["index_time_ms"] = static_cast<double>(fx->index_build_ms);
  state.counters["storage_MB"] =
      static_cast<double>(fx->engine->GetStorageStats().disk_bytes) /
      (1 << 20);
}

void BM_SyntheticSpatial(benchmark::State& state) {
  int pct = static_cast<int>(state.range(0));
  Fixture* fx = GetFixture(Dataset::kSynthetic, pct, Variant::kJust);
  size_t qi = 0;
  for (auto _ : state) {
    geo::Mbr box = geo::SquareWindowKm(
        fx->centers.centers[qi++ % fx->centers.centers.size()], kWindowKm);
    auto result = fx->engine->SpatialRangeQuery(fx->user, fx->table, box);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

void BM_SyntheticSt(benchmark::State& state) {
  int pct = static_cast<int>(state.range(0));
  Fixture* fx = GetFixture(Dataset::kSynthetic, pct, Variant::kJust);
  size_t qi = 0;
  for (auto _ : state) {
    size_t i = qi++ % fx->centers.centers.size();
    geo::Mbr box = geo::SquareWindowKm(fx->centers.centers[i], kWindowKm);
    // Query inside the base month: present at every scale, so the result
    // set is size-independent — the flat line of Fig 14b.
    TimestampMs t0 = TimePeriodStart(
        TimePeriodNumber(fx->centers.times[i], kMillisPerDay), kMillisPerDay);
    auto result = fx->engine->StRangeQuery(fx->user, fx->table, box, t0,
                                           t0 + kMillisPerDay - 1);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

void BM_SyntheticKnn(benchmark::State& state) {
  int pct = static_cast<int>(state.range(0));
  Fixture* fx = GetFixture(Dataset::kSynthetic, pct, Variant::kJust);
  size_t qi = 0;
  for (auto _ : state) {
    const geo::Point& q =
        fx->centers.centers[qi++ % fx->centers.centers.size()];
    auto result = fx->engine->KnnQuery(fx->user, fx->table, q, kK);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  using namespace just::bench;  // NOLINT
  benchmark::RegisterBenchmark("Fig14a/Synthetic/IndexingAndStorage",
                               BM_SyntheticIndexing)
      ->DenseRange(20, 100, 20)
      ->Iterations(1);
  benchmark::RegisterBenchmark("Fig14b/Synthetic/S", BM_SyntheticSpatial)
      ->DenseRange(20, 100, 40);
  benchmark::RegisterBenchmark("Fig14b/Synthetic/ST", BM_SyntheticSt)
      ->DenseRange(20, 100, 40);
  benchmark::RegisterBenchmark("Fig14b/Synthetic/kNN", BM_SyntheticKnn)
      ->DenseRange(20, 100, 40);
  just::bench::RunBenchmarks(argc, argv);
  return 0;
}
