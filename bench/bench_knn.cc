// Reproduces Figure 13a-13d: k-NN query time vs data size and vs k.
// Paper shape:
//   - All systems grow mildly with data size and k.
//   - JUST is competitive with Simba on Order and much faster than
//     GeoSpark / LocationSpark (it locates qualified records directly and
//     scans in parallel; Algorithm 1 + Lemma 1 prune the expansion).
//   - On Traj, Simba OOMs at 40%; JUST slightly beats JUSTnc.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace just::bench {
namespace {

constexpr int kDefaultK = 100;  // Table IV bold default

void RunJustKnn(benchmark::State& state, Dataset dataset, Variant variant,
                int pct, int k) {
  Fixture* fx = GetFixture(dataset, pct, variant);
  size_t qi = 0;
  for (auto _ : state) {
    const geo::Point& q =
        fx->centers.centers[qi++ % fx->centers.centers.size()];
    auto result = fx->engine->KnnQuery(fx->user, fx->table, q, k);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

void RunBaselineKnn(benchmark::State& state, Dataset dataset,
                    const std::string& system_name, int pct, int k) {
  Fixture* fx = GetFixture(dataset, pct, Variant::kJust);
  auto system =
      baselines::MakeBaseline(system_name, CalibratedBaselineOptions(dataset));
  if (!system.ok()) {
    state.SkipWithError(system.status().ToString().c_str());
    return;
  }
  Status built = (*system)->BuildIndex(ToBaselineRecords(*fx));
  if (!built.ok()) {
    state.SkipWithError(built.ToString().c_str());
    return;
  }
  size_t qi = 0;
  for (auto _ : state) {
    const geo::Point& q =
        fx->centers.centers[qi++ % fx->centers.centers.size()];
    auto result = (*system)->Knn(q, k);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

void RegisterAll() {
  const std::vector<std::string> kOrderSystems = {
      "GeoSpark", "LocationSpark", "Simba", "SpatialHadoop"};
  const std::vector<std::string> kTrajSystems = {"GeoSpark", "Simba"};

  // Fig 13a / 13b: data size sweeps at k = 100.
  benchmark::RegisterBenchmark("Fig13a/Order/JUST",
                               [](benchmark::State& s) {
                                 RunJustKnn(s, Dataset::kOrder, Variant::kJust,
                                            static_cast<int>(s.range(0)),
                                            kDefaultK);
                               })
      ->DenseRange(20, 100, 40);
  for (const std::string& system : kOrderSystems) {
    benchmark::RegisterBenchmark(
        ("Fig13a/Order/" + system).c_str(),
        [system](benchmark::State& s) {
          RunBaselineKnn(s, Dataset::kOrder, system,
                         static_cast<int>(s.range(0)), kDefaultK);
        })
        ->DenseRange(20, 100, 40);
  }
  for (Variant v : {Variant::kJust, Variant::kNoCompress}) {
    benchmark::RegisterBenchmark(
        (std::string("Fig13b/Traj/") + VariantName(v)).c_str(),
        [v](benchmark::State& s) {
          RunJustKnn(s, Dataset::kTraj, v, static_cast<int>(s.range(0)),
                     kDefaultK);
        })
        ->DenseRange(20, 100, 40);
  }
  for (const std::string& system : kTrajSystems) {
    benchmark::RegisterBenchmark(
        ("Fig13b/Traj/" + system).c_str(),
        [system](benchmark::State& s) {
          RunBaselineKnn(s, Dataset::kTraj, system,
                         static_cast<int>(s.range(0)), kDefaultK);
        })
        ->DenseRange(20, 100, 40);
  }

  // Fig 13c / 13d: k sweeps (50..250) at 100% data.
  benchmark::RegisterBenchmark("Fig13c/Order/JUST",
                               [](benchmark::State& s) {
                                 RunJustKnn(s, Dataset::kOrder, Variant::kJust,
                                            100,
                                            static_cast<int>(s.range(0)));
                               })
      ->DenseRange(50, 250, 100);
  for (const std::string& system :
       {std::string("GeoSpark"), std::string("LocationSpark"),
        std::string("Simba")}) {
    benchmark::RegisterBenchmark(
        ("Fig13c/Order/" + system).c_str(),
        [system](benchmark::State& s) {
          RunBaselineKnn(s, Dataset::kOrder, system, 100,
                         static_cast<int>(s.range(0)));
        })
        ->DenseRange(50, 250, 100);
  }
  for (Variant v : {Variant::kJust, Variant::kNoCompress}) {
    benchmark::RegisterBenchmark(
        (std::string("Fig13d/Traj/") + VariantName(v)).c_str(),
        [v](benchmark::State& s) {
          RunJustKnn(s, Dataset::kTraj, v, 100, static_cast<int>(s.range(0)));
        })
        ->DenseRange(50, 250, 100);
  }
  benchmark::RegisterBenchmark(
      "Fig13d/Traj/GeoSpark",
      [](benchmark::State& s) {
        RunBaselineKnn(s, Dataset::kTraj, "GeoSpark", 100,
                       static_cast<int>(s.range(0)));
      })
      ->DenseRange(50, 250, 100);
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  just::bench::RegisterAll();
  just::bench::RunBenchmarks(argc, argv);
  return 0;
}
