// Loadgen for the wire protocol: an in-process RegionServer driven by
// hundreds of concurrent client connections (benchmark's thread fan-out —
// each bench thread owns one RegionClient, i.e. one TCP connection, which
// is exactly the deployed shape: the server runs a thread per connection).
//
// Two questions this answers in CI logs:
//  - throughput/latency of a Put/Get RPC at 64 and 256 connections;
//  - that admission control degrades gracefully: with a deliberately tiny
//    max_inflight the server sheds (kUnavailable) instead of queueing
//    without bound, and the shed counters show up in the obs registry.
//
// Run: ./bench_wire [--benchmark_filter=...]

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>

#include "bench_common.h"
#include "net/region_client.h"
#include "net/region_server.h"
#include "obs/metrics.h"

namespace just::bench {
namespace {

std::string WireBenchDir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             ("just_bench_wire_" + std::to_string(::getpid())) / tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// One server per benchmark registration, torn down when the last thread
/// leaves. Clients are thread-local: one connection per bench thread.
class ServerFixture {
 public:
  explicit ServerFixture(const char* tag, int max_inflight = 256)
      : tag_(tag), max_inflight_(max_inflight) {}

  void ThreadSetUp() {
    std::lock_guard<std::mutex> lock(mu_);
    if (threads_++ == 0) {
      net::RegionServerOptions opts;
      opts.store.dir = WireBenchDir(tag_);
      opts.store.sync_wal = false;
      opts.max_inflight = max_inflight_;
      auto server = net::RegionServer::Start(opts);
      if (!server.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     server.status().ToString().c_str());
        std::abort();
      }
      server_ = std::move(*server);
    }
  }

  void ThreadTearDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--threads_ == 0) {
      EmbedServerStats();
      server_.reset();
    }
  }

  int port() {
    std::lock_guard<std::mutex> lock(mu_);
    return server_->port();
  }

  net::RegionServer* server() {
    std::lock_guard<std::mutex> lock(mu_);
    return server_.get();
  }

 private:
  /// Snapshots the server's StatsResponse into the BENCH JSON (key
  /// "server_stats_<tag>") before shutdown: the client-side registry can't
  /// see server-side shed/request counters when the server is a separate
  /// process, so benches record them explicitly while it's still up.
  void EmbedServerStats() {
    net::RegionClientOptions copts;
    copts.port = server_->port();
    net::RegionClient client(copts);
    net::StatsResponse stats;
    if (!client.GetStats(&stats).ok()) return;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"disk_bytes\": %llu, \"entries\": %llu, \"num_sstables\": %llu, "
        "\"requests_total\": %llu, \"shed_total\": %llu, "
        "\"corrupt_frames_total\": %llu, \"active_connections\": %llu}",
        static_cast<unsigned long long>(stats.disk_bytes),
        static_cast<unsigned long long>(stats.entries),
        static_cast<unsigned long long>(stats.num_sstables),
        static_cast<unsigned long long>(stats.requests_total),
        static_cast<unsigned long long>(stats.shed_total),
        static_cast<unsigned long long>(stats.corrupt_frames_total),
        static_cast<unsigned long long>(stats.active_connections));
    AddBenchJsonExtra(std::string("server_stats_") + tag_, buf);
  }

  const char* tag_;
  int max_inflight_;
  std::mutex mu_;
  int threads_ = 0;
  std::unique_ptr<net::RegionServer> server_;
};

std::string ThreadKey(int thread_index, uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%03d/%012llu", thread_index,
                static_cast<unsigned long long>(i));
  return buf;
}

void BM_WirePut(benchmark::State& state) {
  static ServerFixture fixture("put");
  fixture.ThreadSetUp();
  {
    net::RegionClientOptions copts;
    copts.port = fixture.port();
    net::RegionClient client(copts);
    uint64_t i = 0;
    uint64_t failures = 0;
    std::string value(128, 'v');
    for (auto _ : state) {
      if (!client.Put(ThreadKey(state.thread_index(), i++), value).ok()) {
        ++failures;
      }
    }
    state.counters["fail"] =
        benchmark::Counter(static_cast<double>(failures));
    state.SetItemsProcessed(static_cast<int64_t>(i));
  }
  fixture.ThreadTearDown();
}
BENCHMARK(BM_WirePut)->Threads(64)->Threads(256)->UseRealTime();

void BM_WireGet(benchmark::State& state) {
  static ServerFixture fixture("get");
  fixture.ThreadSetUp();
  {
    net::RegionClientOptions copts;
    copts.port = fixture.port();
    net::RegionClient client(copts);
    // Each thread reads back its own small working set.
    constexpr uint64_t kKeys = 64;
    std::string value(128, 'v');
    for (uint64_t i = 0; i < kKeys; ++i) {
      (void)client.Put(ThreadKey(state.thread_index(), i), value);
    }
    uint64_t i = 0;
    uint64_t failures = 0;
    std::string v;
    for (auto _ : state) {
      if (!client.Get(ThreadKey(state.thread_index(), i++ % kKeys), &v)
               .ok()) {
        ++failures;
      }
    }
    state.counters["fail"] =
        benchmark::Counter(static_cast<double>(failures));
    state.SetItemsProcessed(static_cast<int64_t>(i));
  }
  fixture.ThreadTearDown();
}
BENCHMARK(BM_WireGet)->Threads(64)->Threads(256)->UseRealTime();

/// Overload: 256 connections against max_inflight=4. The interesting
/// numbers are the counters — shed_total climbing while every RPC still
/// gets a prompt answer (shed responses are cheap, so items/s stays high).
void BM_WireOverload(benchmark::State& state) {
  static ServerFixture fixture("overload", /*max_inflight=*/4);
  fixture.ThreadSetUp();
  {
    net::RegionClientOptions copts;
    copts.port = fixture.port();
    net::RegionClient client(copts);
    uint64_t i = 0;
    uint64_t shed = 0;
    std::string value(128, 'v');
    for (auto _ : state) {
      Status st = client.Put(ThreadKey(state.thread_index(), i++), value);
      if (st.IsUnavailable()) ++shed;
    }
    if (state.thread_index() == 0) {
      state.counters["server_shed"] = benchmark::Counter(
          static_cast<double>(fixture.server()->shed_total()));
      state.counters["server_requests"] = benchmark::Counter(
          static_cast<double>(fixture.server()->requests_total()));
    }
    state.counters["client_shed"] =
        benchmark::Counter(static_cast<double>(shed));
    state.SetItemsProcessed(static_cast<int64_t>(i));
  }
  fixture.ThreadTearDown();
}
BENCHMARK(BM_WireOverload)->Threads(256)->UseRealTime();

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  just::bench::RunBenchmarks(argc, argv);
  return 0;
}
