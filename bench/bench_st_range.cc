// Reproduces Figure 12a-12d: spatio-temporal range query time. This is the
// headline experiment for the paper's Z2T/XZ2T contribution. Paper shape:
//   - Fig 12a (data size, Order): JUST < JUSTd < JUSTy < JUSTc — Z2T beats
//     Z3, and a longer Z3 period is worse than a shorter one... actually the
//     paper finds the *bigger* period variants slower; JUST (Z2T) fastest.
//   - Fig 12b (spatial window, Order): ST-Hadoop an order of magnitude
//     slower even at 20% of the data (job startup + disk).
//   - Fig 12c (spatial window, Traj): XZ2T beats the XZ3 variants and
//     JUSTnc.
//   - Fig 12d (time window, Order): all grow with the window; ST-Hadoop
//     stays far above.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace just::bench {
namespace {

constexpr double kDefaultWindowKm = 3.0;
constexpr int64_t kDefaultTimeWindowMs = kMillisPerDay;  // Table IV bold: 1d

void RunJustStQueries(benchmark::State& state, Dataset dataset,
                      Variant variant, int pct, double window_km,
                      int64_t time_window_ms) {
  Fixture* fx = GetFixture(dataset, pct, variant);
  size_t qi = 0;
  size_t results = 0;
  for (auto _ : state) {
    size_t i = qi++ % fx->centers.centers.size();
    geo::Mbr box = geo::SquareWindowKm(fx->centers.centers[i], window_km);
    TimestampMs t0 = fx->centers.times[i];
    if (t0 + time_window_ms > fx->time_hi) {
      t0 = fx->time_hi - time_window_ms;
    }
    // Windows start on day boundaries, like the paper's canonical query
    // ("from 01:00 to 13:00 in one day"); the end is exclusive so a 1-day
    // window stays within one Z2T period.
    t0 = TimePeriodStart(TimePeriodNumber(t0, kMillisPerDay), kMillisPerDay);
    auto result = fx->engine->StRangeQuery(fx->user, fx->table, box, t0,
                                           t0 + time_window_ms - 1);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    results += result->num_rows();
    benchmark::DoNotOptimize(result);
  }
  state.counters["avg_rows"] =
      static_cast<double>(results) /
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
  // Result-delivery throughput of the columnar scan+refine path.
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(results), benchmark::Counter::kIsRate);
}

void RunStHadoopQueries(benchmark::State& state, Dataset dataset, int pct,
                        double window_km, int64_t time_window_ms) {
  Fixture* fx = GetFixture(dataset, pct, Variant::kJust);
  auto system = baselines::MakeBaseline("ST-Hadoop",
                                        CalibratedBaselineOptions(dataset));
  if (!system.ok()) {
    state.SkipWithError(system.status().ToString().c_str());
    return;
  }
  Status built = (*system)->BuildIndex(ToBaselineRecords(*fx));
  if (!built.ok()) {
    state.SkipWithError(built.ToString().c_str());
    return;
  }
  size_t qi = 0;
  for (auto _ : state) {
    size_t i = qi++ % fx->centers.centers.size();
    geo::Mbr box = geo::SquareWindowKm(fx->centers.centers[i], window_km);
    TimestampMs t0 = fx->centers.times[i];
    auto result = (*system)->StRange(box, t0, t0 + time_window_ms);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

const std::vector<Variant>& OrderVariants() {
  static const auto* variants = new std::vector<Variant>{
      Variant::kJust, Variant::kZ3Day, Variant::kZ3Year, Variant::kZ3Century};
  return *variants;
}

const std::vector<Variant>& TrajVariants() {
  static const auto* variants = new std::vector<Variant>{
      Variant::kJust, Variant::kNoCompress, Variant::kZ3Day, Variant::kZ3Year,
      Variant::kZ3Century};
  return *variants;
}

void RegisterAll() {
  // Fig 12a: data size sweep on Order, JUST vs the Z3-period variants.
  for (Variant v : OrderVariants()) {
    benchmark::RegisterBenchmark(
        (std::string("Fig12a/Order/") + VariantName(v)).c_str(),
        [v](benchmark::State& s) {
          RunJustStQueries(s, Dataset::kOrder, v,
                           static_cast<int>(s.range(0)), kDefaultWindowKm,
                           kDefaultTimeWindowMs);
        })
        ->DenseRange(20, 100, 40);
  }
  // Fig 12b: spatial window sweep on Order (+ ST-Hadoop at 20% data).
  for (Variant v : OrderVariants()) {
    benchmark::RegisterBenchmark(
        (std::string("Fig12b/Order/") + VariantName(v)).c_str(),
        [v](benchmark::State& s) {
          RunJustStQueries(s, Dataset::kOrder, v, 100,
                           static_cast<double>(s.range(0)),
                           kDefaultTimeWindowMs);
        })
        ->DenseRange(1, 5, 2);
  }
  benchmark::RegisterBenchmark("Fig12b/Order/ST-Hadoop(20pct)",
                               [](benchmark::State& s) {
                                 RunStHadoopQueries(
                                     s, Dataset::kOrder, 20,
                                     static_cast<double>(s.range(0)),
                                     kDefaultTimeWindowMs);
                               })
      ->DenseRange(1, 5, 2);
  // Fig 12c: spatial window sweep on Traj, incl. JUSTnc.
  for (Variant v : TrajVariants()) {
    benchmark::RegisterBenchmark(
        (std::string("Fig12c/Traj/") + VariantName(v)).c_str(),
        [v](benchmark::State& s) {
          RunJustStQueries(s, Dataset::kTraj, v, 100,
                           static_cast<double>(s.range(0)),
                           kDefaultTimeWindowMs);
        })
        ->DenseRange(1, 5, 2);
  }
  // Fig 12d: time window sweep on Order: 1h, 6h, 1d, 1w, 1m (Table IV).
  static const std::vector<std::pair<const char*, int64_t>> kTimeWindows = {
      {"1h", kMillisPerHour},
      {"6h", 6 * kMillisPerHour},
      {"1d", kMillisPerDay},
      {"1w", kMillisPerWeek},
      {"1m", kMillisPerMonth},
  };
  for (Variant v : OrderVariants()) {
    for (size_t w = 0; w < kTimeWindows.size(); ++w) {
      benchmark::RegisterBenchmark(
          (std::string("Fig12d/Order/") + VariantName(v) + "/window:" +
           kTimeWindows[w].first)
              .c_str(),
          [v, w, &kTimeWindows](benchmark::State& s) {
            RunJustStQueries(s, Dataset::kOrder, v, 100, kDefaultWindowKm,
                             kTimeWindows[w].second);
          });
    }
  }
  for (size_t w = 0; w < kTimeWindows.size(); ++w) {
    benchmark::RegisterBenchmark(
        (std::string("Fig12d/Order/ST-Hadoop(20pct)/window:") +
         kTimeWindows[w].first)
            .c_str(),
        [w, &kTimeWindows](benchmark::State& s) {
          RunStHadoopQueries(s, Dataset::kOrder, 20, kDefaultWindowKm,
                             kTimeWindows[w].second);
        });
  }
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  just::bench::RegisterAll();
  just::bench::RunBenchmarks(argc, argv);
  return 0;
}
