#include "bench_common.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iterator>
#include <string_view>

#include "obs/metrics.h"

namespace just::bench {

namespace {

std::string ConfigKey(Dataset dataset, int pct, Variant variant) {
  return std::string(DatasetName(dataset)) + "_" + std::to_string(pct) +
         "_" + VariantName(variant);
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Index configuration per variant, for point data (Order) and extent data
// (Traj/Synthetic).
std::vector<meta::IndexConfig> VariantIndexes(Variant variant, bool extent) {
  switch (variant) {
    case Variant::kJust:
    case Variant::kNoCompress:
    case Variant::kOrderCompressed:
      if (extent) {
        return {{curve::IndexType::kXz2, kMillisPerDay},
                {curve::IndexType::kXz2T, kMillisPerDay}};
      }
      return {{curve::IndexType::kZ2, kMillisPerDay},
              {curve::IndexType::kZ2T, kMillisPerDay}};
    case Variant::kZ3Day:
      if (extent) {
        return {{curve::IndexType::kXz2, kMillisPerDay},
                {curve::IndexType::kXz3, kMillisPerDay}};
      }
      return {{curve::IndexType::kZ2, kMillisPerDay},
              {curve::IndexType::kZ3, kMillisPerDay}};
    case Variant::kZ3Year:
      if (extent) {
        return {{curve::IndexType::kXz2, kMillisPerDay},
                {curve::IndexType::kXz3, kMillisPerYear}};
      }
      return {{curve::IndexType::kZ2, kMillisPerDay},
              {curve::IndexType::kZ3, kMillisPerYear}};
    case Variant::kZ3Century:
      if (extent) {
        return {{curve::IndexType::kXz2, kMillisPerDay},
                {curve::IndexType::kXz3, kMillisPerCentury}};
      }
      return {{curve::IndexType::kZ2, kMillisPerDay},
              {curve::IndexType::kZ3, kMillisPerCentury}};
  }
  return {};
}

Fixture BuildFixture(Dataset dataset, int pct, Variant variant) {
  // Disk model: an aggregate ~300 MB/s across the 4 simulated region
  // servers, so scan latency tracks bytes read as on the paper's cluster.
  kv::SetSimulatedReadBandwidthMBps(300.0);
  Fixture fx;
  core::EngineOptions options;
  options.data_dir = BenchDataRoot() + "/" + ConfigKey(dataset, pct, variant);
  options.num_servers = 4;
  options.num_shards = 8;
  options.store.memtable_bytes = 8 << 20;
  // The paper's methodology eliminates the HBase cache ("perform each query
  // only once"); a tiny block cache forces every scan to hit the store.
  options.store.block_cache_bytes = 64 << 10;
  auto engine = core::JustEngine::Open(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine open failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  fx.engine = std::move(engine).value();

  if (dataset == Dataset::kOrder) {
    fx.table = "orders";
    meta::TableMeta table;
    table.user = fx.user;
    table.name = fx.table;
    // Fig 10a: compressing Order's tiny fields backfires; the default
    // JUST config leaves them raw.
    bool compress_fields = variant == Variant::kOrderCompressed;
    table.columns = {
        {"fid", exec::DataType::kString, true, "", ""},
        {"time", exec::DataType::kTimestamp, false, "", ""},
        {"geom", exec::DataType::kGeometry, false, "4326",
         compress_fields ? "gzip" : ""},
    };
    table.indexes = VariantIndexes(variant, /*extent=*/false);
    if (!fx.engine->CreateTable(table).ok()) std::abort();

    workload::OrderOptions opts;
    opts.num_orders = Scale().order_points * pct / 100;
    fx.orders = workload::GenerateOrders(opts);
    fx.time_lo = ParseTimestamp(opts.start_date).value();
    fx.time_hi = fx.time_lo + opts.num_days * kMillisPerDay;
    fx.centers = workload::SampleQueryCenters(opts.area, opts.start_date,
                                              opts.num_days, 100, 777);
    int64_t start = NowMs();
    std::vector<exec::Row> batch;
    for (const auto& order : fx.orders) {
      fx.raw_bytes += 8 + 8 + 16;  // fid + time + point
      batch.push_back(
          {exec::Value::String(order.fid), exec::Value::Timestamp(order.time),
           exec::Value::GeometryVal(geo::Geometry::MakePoint(order.point))});
      if (batch.size() == 2048) {
        if (!fx.engine->InsertBatch(fx.user, fx.table, batch).ok()) {
          std::abort();
        }
        batch.clear();
      }
    }
    if (!batch.empty() &&
        !fx.engine->InsertBatch(fx.user, fx.table, batch).ok()) {
      std::abort();
    }
    if (!fx.engine->Finalize().ok()) std::abort();
    fx.index_build_ms = NowMs() - start;
    return fx;
  }

  // Traj / Synthetic: trajectory plugin-style table.
  fx.table = "traj";
  meta::TableMeta table;
  table.user = fx.user;
  table.name = fx.table;
  std::string codec = variant == Variant::kNoCompress ? "" : "gzip";
  table.columns = {
      {"tid", exec::DataType::kString, true, "", ""},
      {"oid", exec::DataType::kString, false, "", ""},
      {"start_time", exec::DataType::kTimestamp, false, "", ""},
      {"end_time", exec::DataType::kTimestamp, false, "", ""},
      {"item", exec::DataType::kTrajectory, false, "", codec},
  };
  table.kind = meta::TableKind::kPlugin;
  table.plugin = "trajectory";
  table.fid_column = "tid";
  table.geom_column = "item";
  table.time_column = "start_time";
  table.indexes = VariantIndexes(variant, /*extent=*/true);
  if (!fx.engine->CreateTable(table).ok()) std::abort();

  workload::TrajOptions opts;
  opts.points_per_traj = Scale().traj_points_per_record;
  if (dataset == Dataset::kTraj) {
    opts.num_trajectories = Scale().traj_records * pct / 100;
    fx.trajectories = workload::GenerateTrajectories(opts);
  } else {
    opts.num_trajectories = Scale().traj_records;
    auto base = workload::GenerateTrajectories(opts);
    auto full = workload::CopyAndSample(base, Scale().synthetic_factor, 99);
    size_t keep = full.size() * static_cast<size_t>(pct) / 100;
    full.resize(keep);
    fx.trajectories = std::move(full);
  }
  // Synthetic spans more periods; size the query-center time range by data.
  fx.time_lo = ParseTimestamp(opts.start_date).value();
  fx.time_hi = fx.time_lo + opts.num_days * kMillisPerDay;
  if (dataset == Dataset::kSynthetic) {
    fx.time_hi = fx.time_lo + Scale().synthetic_factor * 31 * kMillisPerDay;
  }
  fx.centers = workload::SampleQueryCenters(opts.area, opts.start_date,
                                            opts.num_days, 100, 778);

  int64_t start = NowMs();
  std::vector<exec::Row> batch;
  for (const auto& t : fx.trajectories) {
    fx.raw_bytes += 16 + t.size() * 24;  // Table II "Raw Size" equivalent
    batch.push_back(
        {exec::Value::String(t.oid()), exec::Value::String("c_" + t.oid()),
         exec::Value::Timestamp(t.start_time()),
         exec::Value::Timestamp(t.end_time()),
         exec::Value::TrajectoryVal(
             std::make_shared<const traj::Trajectory>(t))});
    if (batch.size() == 256) {
      if (!fx.engine->InsertBatch(fx.user, fx.table, batch).ok()) {
        std::abort();
      }
      batch.clear();
    }
  }
  if (!batch.empty() &&
      !fx.engine->InsertBatch(fx.user, fx.table, batch).ok()) {
    std::abort();
  }
  if (!fx.engine->Finalize().ok()) std::abort();
  fx.index_build_ms = NowMs() - start;
  return fx;
}

}  // namespace

std::string BenchDataRoot() {
  static std::string* root = [] {
    auto* path = new std::string(
        (std::filesystem::temp_directory_path() / "just_bench").string());
    std::error_code ec;
    std::filesystem::remove_all(*path, ec);
    std::filesystem::create_directories(*path, ec);
    return path;
  }();
  return *root;
}

Fixture* GetFixture(Dataset dataset, int pct, Variant variant) {
  static std::map<std::string, std::unique_ptr<Fixture>>* cache =
      new std::map<std::string, std::unique_ptr<Fixture>>();
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::string key = ConfigKey(dataset, pct, variant);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();
  auto fixture = std::make_unique<Fixture>(BuildFixture(dataset, pct,
                                                        variant));
  Fixture* raw = fixture.get();
  (*cache)[key] = std::move(fixture);
  return raw;
}

std::vector<baselines::BaselineRecord> ToBaselineRecords(const Fixture& fx) {
  std::vector<baselines::BaselineRecord> out;
  uint64_t id = 0;
  for (const auto& order : fx.orders) {
    baselines::BaselineRecord r;
    r.box = geo::Mbr::Of(order.point.lng, order.point.lat, order.point.lng,
                         order.point.lat);
    r.t_min = r.t_max = order.time;
    r.id = id++;
    r.payload_bytes = 16;
    out.push_back(r);
  }
  for (const auto& t : fx.trajectories) {
    baselines::BaselineRecord r;
    r.box = t.Bounds();
    r.t_min = t.start_time();
    r.t_max = t.end_time();
    r.id = id++;
    r.payload_bytes = t.size() * 24;  // the GPS list loaded into RAM
    out.push_back(r);
  }
  return out;
}

baselines::BaselineOptions CalibratedBaselineOptions(Dataset dataset) {
  baselines::BaselineOptions options;
  options.scratch_dir = BenchDataRoot() + "/baselines";
  options.mapreduce_job_cost_ms = 100;
  if (dataset == Dataset::kOrder) {
    options.memory_budget_bytes = 0;  // Order fits every system in the paper
    return options;
  }
  // Traj/Synthetic: budget = 1.07x the raw in-memory bytes of the FULL Traj
  // dataset, reproducing the paper's OOM ladder (see DESIGN.md).
  Fixture* full = GetFixture(Dataset::kTraj, 100, Variant::kJust);
  uint64_t total = 0;
  for (const auto& r : ToBaselineRecords(*full)) {
    total += sizeof(baselines::BaselineRecord) + r.payload_bytes;
  }
  options.memory_budget_bytes =
      static_cast<size_t>(static_cast<double>(total) * 1.07);
  return options;
}

namespace {

std::map<std::string, std::string>* BenchJsonExtras() {
  static auto* extras = new std::map<std::string, std::string>();
  return extras;
}

std::mutex& BenchJsonExtrasMu() {
  static auto* mu = new std::mutex();
  return *mu;
}

}  // namespace

void AddBenchJsonExtra(const std::string& key, const std::string& json) {
  std::lock_guard<std::mutex> lock(BenchJsonExtrasMu());
  (*BenchJsonExtras())[key] = json;
}

void RunBenchmarks(int argc, char** argv) {
  // Find the output file before Initialize consumes the flags.
  std::string out_path;
  constexpr std::string_view kFlag = "--benchmark_out=";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.substr(0, kFlag.size()) == kFlag) {
      out_path = std::string(arg.substr(kFlag.size()));
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();  // flushes and closes the output file
  if (out_path.empty()) return;

  // Splice the registry snapshot into the record: google-benchmark's JSON
  // output is one object ending with "}\n", so inserting before the final
  // brace keeps it a valid single object.
  std::ifstream in(out_path);
  if (!in.is_open()) return;
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  size_t brace = json.find_last_of('}');
  if (brace == std::string::npos) return;
  std::string snapshot = obs::Registry::Global().JsonDump();
  std::string members = ",\n  \"obs_registry\": " + snapshot;
  {
    std::lock_guard<std::mutex> lock(BenchJsonExtrasMu());
    for (const auto& [key, value] : *BenchJsonExtras()) {
      members += ",\n  \"" + key + "\": " + value;
    }
  }
  std::string injected =
      json.substr(0, brace) + members + "\n" + json.substr(brace);
  std::ofstream out(out_path, std::ios::trunc);
  out << injected;
}

}  // namespace just::bench
