// Reproduces Figure 10a / 10b: storage cost (index keys + data) vs raw data
// size, with and without the field-compression mechanism of Section IV-D.
//
// Paper shape to reproduce:
//   - Order (Fig 10a): compressing the tiny per-order fields makes storage
//     *larger* (JUSTcompress line above JUST).
//   - Traj (Fig 10b): compressing the GPS-list field shrinks storage by
//     roughly 4.5x (136 GB raw -> ~30 GB stored, including both indexes).

// Also hosts the write-path probe: a mixed read/write benchmark measuring
// per-Put latency while background flushes and concurrent scans run. The
// old write path built SSTables inline under the store lock, so the Put
// that tripped the memtable limit paid the whole build (multi-ms p99); the
// group-commit + background-flush path keeps the tail flat. The obs
// registry snapshot (including just_kv_write_stalls_total and the
// group-commit histogram) is embedded in --benchmark_out JSON by
// RunBenchmarks.
//
// And the compaction-strategy probe (Compaction/Amplification/*): the same
// bulk load run under leveled vs legacy full compaction, reporting write
// amplification and SSTable probes per Get. See EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "bench_common.h"
#include "kvstore/lsm_store.h"
#include "obs/metrics.h"

namespace just::bench {
namespace {

void BM_Storage(benchmark::State& state, Dataset dataset, Variant variant) {
  int pct = static_cast<int>(state.range(0));
  Fixture* fx = GetFixture(dataset, pct, variant);
  auto stats = fx->engine->GetStorageStats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats.disk_bytes);
  }
  state.counters["storage_MB"] =
      static_cast<double>(stats.disk_bytes) / (1 << 20);
  state.counters["raw_MB"] = static_cast<double>(fx->raw_bytes) / (1 << 20);
  state.counters["ratio_vs_raw"] =
      static_cast<double>(stats.disk_bytes) /
      static_cast<double>(fx->raw_bytes);
}

/// Mixed read/write: one writer thread Putting 256-byte values while a
/// scanner thread runs full scans, with a memtable small enough that many
/// flushes (and compactions) happen mid-run. Reports the Put latency tail —
/// the number the background flush exists to protect.
void BM_MixedPutLatencyAcrossFlush(benchmark::State& state) {
  namespace fs = std::filesystem;
  const int num_ops = static_cast<int>(state.range(0));
  auto* stalls =
      obs::Registry::Global().GetCounter("just_kv_write_stalls_total");
  auto* flushes = obs::Registry::Global().GetCounter("just_kv_flushes_total");
  obs::Histogram put_lat;
  uint64_t stalls_delta = 0;
  uint64_t flushes_delta = 0;
  for (auto _ : state) {
    fs::path dir =
        fs::temp_directory_path() /
        ("just_bench_mixed_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    kv::StoreOptions opts;
    opts.dir = dir.string();
    opts.memtable_bytes = 256 << 10;  // many flushes across the run
    auto store_or = kv::LsmStore::Open(opts);
    if (!store_or.ok()) {
      state.SkipWithError(store_or.status().ToString().c_str());
      break;
    }
    kv::LsmStore* store = store_or->get();
    const uint64_t stalls0 = stalls->Value();
    const uint64_t flushes0 = flushes->Value();
    std::atomic<bool> stop{false};
    std::thread scanner([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        size_t rows = 0;
        (void)store->Scan("", "",
                          [&](std::string_view, std::string_view) {
                            ++rows;
                            return true;
                          });
        benchmark::DoNotOptimize(rows);
      }
    });
    std::string value(256, 'v');
    char key[32];
    for (int i = 0; i < num_ops; ++i) {
      std::snprintf(key, sizeof(key), "k%010d", i);
      auto t0 = std::chrono::steady_clock::now();
      (void)store->Put(key, value);
      put_lat.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    stop.store(true);
    scanner.join();
    stalls_delta += stalls->Value() - stalls0;
    flushes_delta += flushes->Value() - flushes0;
    store_or->reset();
    fs::remove_all(dir);
  }
  state.counters["put_p50_us"] = put_lat.Quantile(0.5);
  state.counters["put_p99_us"] = put_lat.Quantile(0.99);
  state.counters["put_max_us"] = static_cast<double>(put_lat.Snapshot().max);
  state.counters["flushes"] = static_cast<double>(flushes_delta);
  state.counters["write_stalls"] = static_cast<double>(stalls_delta);
  state.SetItemsProcessed(state.iterations() * num_ops);
}

/// Compaction strategy probe: bulk-load many memtables' worth of data (with
/// key overlap so compaction has real merging to do), wait for the tree to
/// settle, and report write amplification (bytes rewritten by compaction
/// per byte flushed) and point-read amplification (SSTables probed per
/// Get). arg0 selects the strategy: 1 = leveled, 0 = the old full merge.
/// Leveled should show bounded read-amp with write-amp ~O(levels); full
/// compaction shows read-amp that decays only after each O(N) rewrite.
void BM_CompactionAmplification(benchmark::State& state) {
  namespace fs = std::filesystem;
  const bool leveled = state.range(0) == 1;
  const int num_ops = 60000;  // ~16 MB of key+value across ~60 memtables
  auto* flush_out =
      obs::Registry::Global().GetCounter("just_kv_flush_output_bytes_total");
  auto* comp_in = obs::Registry::Global().GetCounter(
      "just_kv_compaction_input_bytes_total");
  auto* comp_out = obs::Registry::Global().GetCounter(
      "just_kv_compaction_output_bytes_total");
  auto* compactions =
      obs::Registry::Global().GetCounter("just_kv_compactions_total");
  double write_amp = 0;
  double read_amp = 0;
  double l0_files = 0;
  double total_files = 0;
  uint64_t compactions_delta = 0;
  for (auto _ : state) {
    fs::path dir = fs::temp_directory_path() /
                   ("just_bench_compaction_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    kv::StoreOptions opts;
    opts.dir = dir.string();
    opts.memtable_bytes = 256 << 10;
    opts.compaction_trigger = 4;
    opts.compaction_style = leveled ? kv::CompactionStyle::kLeveled
                                    : kv::CompactionStyle::kFull;
    opts.level_base_bytes = 1 << 20;
    opts.target_file_size = 512 << 10;
    auto store_or = kv::LsmStore::Open(opts);
    if (!store_or.ok()) {
      state.SkipWithError(store_or.status().ToString().c_str());
      break;
    }
    kv::LsmStore* store = store_or->get();
    const uint64_t flush0 = flush_out->Value();
    const uint64_t in0 = comp_in->Value();
    const uint64_t out0 = comp_out->Value();
    const uint64_t compactions0 = compactions->Value();
    std::string value(220, 'v');
    char key[32];
    for (int i = 0; i < num_ops; ++i) {
      // i % (num_ops / 4) overlaps each key ~4 times: compaction must merge
      // real duplicates, not just concatenate disjoint runs.
      std::snprintf(key, sizeof(key), "k%010d", i % (num_ops / 4));
      (void)store->Put(key, value);
    }
    (void)store->Flush();
    (void)store->WaitForBackgroundIdle();
    const uint64_t flushed = flush_out->Value() - flush0;
    write_amp = flushed == 0
                    ? 0.0
                    : static_cast<double>(flushed +
                                          (comp_out->Value() - out0)) /
                          static_cast<double>(flushed);
    benchmark::DoNotOptimize(comp_in->Value() - in0);
    compactions_delta += compactions->Value() - compactions0;
    // Point-read amplification over a uniform sample of live keys.
    const uint64_t probes0 = store->io_stats().get_probes.Value();
    const int num_gets = 2000;
    std::string out_value;
    for (int i = 0; i < num_gets; ++i) {
      std::snprintf(key, sizeof(key), "k%010d",
                    (i * 7919) % (num_ops / 4));
      (void)store->Get(key, &out_value);
    }
    read_amp = static_cast<double>(store->io_stats().get_probes.Value() -
                                   probes0) /
               num_gets;
    auto stats = store->GetStats();
    l0_files = stats.level_files.empty()
                   ? 0.0
                   : static_cast<double>(stats.level_files[0]);
    total_files = static_cast<double>(stats.num_sstables);
    store_or->reset();
    fs::remove_all(dir);
  }
  state.counters["write_amp"] = write_amp;
  state.counters["read_amp_probes_per_get"] = read_amp;
  state.counters["compactions"] = static_cast<double>(compactions_delta);
  state.counters["l0_files"] = l0_files;
  state.counters["total_files"] = total_files;
  state.SetItemsProcessed(state.iterations() * num_ops);
}

void PrintSeries(const char* figure, Dataset dataset,
                 const std::vector<Variant>& variants) {
  std::printf("\n%s — storage size (MB) vs data size, dataset=%s\n", figure,
              DatasetName(dataset));
  std::printf("%-14s", "Data Size");
  for (Variant v : variants) std::printf("%14s", VariantName(v));
  std::printf("\n");
  for (int pct : {20, 40, 60, 80, 100}) {
    std::printf("%12d%%  ", pct);
    for (Variant v : variants) {
      Fixture* fx = GetFixture(dataset, pct, v);
      std::printf("%14.2f",
                  static_cast<double>(fx->engine->GetStorageStats().disk_bytes) /
                      (1 << 20));
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  using namespace just::bench;  // NOLINT
  for (int pct : {20, 40, 60, 80, 100}) {
    benchmark::RegisterBenchmark("Fig10a/Order/JUST",
                                 [](benchmark::State& s) {
                                   BM_Storage(s, Dataset::kOrder,
                                              Variant::kJust);
                                 })
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("Fig10a/Order/JUSTcompress",
                                 [](benchmark::State& s) {
                                   BM_Storage(s, Dataset::kOrder,
                                              Variant::kOrderCompressed);
                                 })
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("Fig10b/Traj/JUST",
                                 [](benchmark::State& s) {
                                   BM_Storage(s, Dataset::kTraj,
                                              Variant::kJust);
                                 })
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("Fig10b/Traj/JUSTnc",
                                 [](benchmark::State& s) {
                                   BM_Storage(s, Dataset::kTraj,
                                              Variant::kNoCompress);
                                 })
        ->Arg(pct)
        ->Iterations(1);
  }
  benchmark::RegisterBenchmark("WritePath/MixedPutLatencyAcrossFlush",
                               BM_MixedPutLatencyAcrossFlush)
      ->Arg(20000)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Compaction/Amplification/leveled",
                               BM_CompactionAmplification)
      ->Arg(1)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Compaction/Amplification/full",
                               BM_CompactionAmplification)
      ->Arg(0)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  just::bench::RunBenchmarks(argc, argv);
  PrintSeries("Figure 10a", Dataset::kOrder,
              {Variant::kJust, Variant::kOrderCompressed});
  PrintSeries("Figure 10b", Dataset::kTraj,
              {Variant::kJust, Variant::kNoCompress});
  return 0;
}
