// Reproduces Figure 10a / 10b: storage cost (index keys + data) vs raw data
// size, with and without the field-compression mechanism of Section IV-D.
//
// Paper shape to reproduce:
//   - Order (Fig 10a): compressing the tiny per-order fields makes storage
//     *larger* (JUSTcompress line above JUST).
//   - Traj (Fig 10b): compressing the GPS-list field shrinks storage by
//     roughly 4.5x (136 GB raw -> ~30 GB stored, including both indexes).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace just::bench {
namespace {

void BM_Storage(benchmark::State& state, Dataset dataset, Variant variant) {
  int pct = static_cast<int>(state.range(0));
  Fixture* fx = GetFixture(dataset, pct, variant);
  auto stats = fx->engine->GetStorageStats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats.disk_bytes);
  }
  state.counters["storage_MB"] =
      static_cast<double>(stats.disk_bytes) / (1 << 20);
  state.counters["raw_MB"] = static_cast<double>(fx->raw_bytes) / (1 << 20);
  state.counters["ratio_vs_raw"] =
      static_cast<double>(stats.disk_bytes) /
      static_cast<double>(fx->raw_bytes);
}

void PrintSeries(const char* figure, Dataset dataset,
                 const std::vector<Variant>& variants) {
  std::printf("\n%s — storage size (MB) vs data size, dataset=%s\n", figure,
              DatasetName(dataset));
  std::printf("%-14s", "Data Size");
  for (Variant v : variants) std::printf("%14s", VariantName(v));
  std::printf("\n");
  for (int pct : {20, 40, 60, 80, 100}) {
    std::printf("%12d%%  ", pct);
    for (Variant v : variants) {
      Fixture* fx = GetFixture(dataset, pct, v);
      std::printf("%14.2f",
                  static_cast<double>(fx->engine->GetStorageStats().disk_bytes) /
                      (1 << 20));
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  using namespace just::bench;  // NOLINT
  for (int pct : {20, 40, 60, 80, 100}) {
    benchmark::RegisterBenchmark("Fig10a/Order/JUST",
                                 [](benchmark::State& s) {
                                   BM_Storage(s, Dataset::kOrder,
                                              Variant::kJust);
                                 })
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("Fig10a/Order/JUSTcompress",
                                 [](benchmark::State& s) {
                                   BM_Storage(s, Dataset::kOrder,
                                              Variant::kOrderCompressed);
                                 })
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("Fig10b/Traj/JUST",
                                 [](benchmark::State& s) {
                                   BM_Storage(s, Dataset::kTraj,
                                              Variant::kJust);
                                 })
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("Fig10b/Traj/JUSTnc",
                                 [](benchmark::State& s) {
                                   BM_Storage(s, Dataset::kTraj,
                                              Variant::kNoCompress);
                                 })
        ->Arg(pct)
        ->Iterations(1);
  }
  just::bench::RunBenchmarks(argc, argv);
  PrintSeries("Figure 10a", Dataset::kOrder,
              {Variant::kJust, Variant::kOrderCompressed});
  PrintSeries("Figure 10b", Dataset::kTraj,
              {Variant::kJust, Variant::kNoCompress});
  return 0;
}
