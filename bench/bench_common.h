#ifndef JUST_BENCH_BENCH_COMMON_H_
#define JUST_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "core/engine.h"
#include "workload/generators.h"

namespace just::bench {

/// Scaled-down stand-ins for Table II (paper: Traj 886M pts / 314k records,
/// Order 71M pts, Synthetic = 10x Traj). The ratios that drive the
/// evaluation (points-per-record skew, record counts per km^2 per day) are
/// preserved; absolute sizes are laptop-scale so every figure regenerates
/// in minutes.
struct WorkloadScale {
  int order_points = 120000;
  int traj_records = 400;
  int traj_points_per_record = 300;
  int synthetic_factor = 4;  ///< Synthetic = Traj replicated this many times
};

inline const WorkloadScale& Scale() {
  static const WorkloadScale scale;
  return scale;
}

/// The JUST index/compression variants compared in Section VIII.
enum class Variant {
  kJust,        ///< Z2T / XZ2T + compression (the paper's JUST)
  kNoCompress,  ///< JUSTnc
  kZ3Day,       ///< JUSTd: Z3/XZ3 with one-day periods
  kZ3Year,      ///< JUSTy
  kZ3Century,   ///< JUSTc
  kOrderCompressed,  ///< Fig 10a's "JUSTcompress": gzip on tiny fields
};

inline const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kJust:
      return "JUST";
    case Variant::kNoCompress:
      return "JUSTnc";
    case Variant::kZ3Day:
      return "JUSTd";
    case Variant::kZ3Year:
      return "JUSTy";
    case Variant::kZ3Century:
      return "JUSTc";
    case Variant::kOrderCompressed:
      return "JUSTcompress";
  }
  return "?";
}

enum class Dataset { kOrder, kTraj, kSynthetic };

inline const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kOrder:
      return "Order";
    case Dataset::kTraj:
      return "Traj";
    case Dataset::kSynthetic:
      return "Synthetic";
  }
  return "?";
}

/// A fully loaded engine for one (dataset, size%, variant) configuration,
/// plus the raw records for baseline systems and brute-force checks.
struct Fixture {
  std::unique_ptr<core::JustEngine> engine;
  std::string table;  ///< table name inside the engine
  // Raw data (for baselines):
  std::vector<workload::OrderRecord> orders;
  std::vector<traj::Trajectory> trajectories;
  int64_t index_build_ms = 0;  ///< wall time of insert+finalize
  uint64_t raw_bytes = 0;      ///< uncompressed logical data size
  std::string user = "bench";
  workload::QueryCenters centers;
  TimestampMs time_lo = 0;
  TimestampMs time_hi = 0;
};

/// Returns (building and caching on first use) the fixture for a
/// configuration. Fixtures are cached for the process lifetime — the same
/// dataset is queried by many benchmark registrations.
Fixture* GetFixture(Dataset dataset, int pct, Variant variant);

/// Converts a fixture's records to baseline-system records.
std::vector<baselines::BaselineRecord> ToBaselineRecords(const Fixture& fx);

/// Baseline options with a memory budget calibrated so the OOM thresholds
/// land where Section VIII reports them on the Traj dataset (LocationSpark
/// at 20%, Simba at 40%, SpatialSpark at 100%, GeoSpark surviving).
baselines::BaselineOptions CalibratedBaselineOptions(Dataset dataset);

/// Scratch root for bench data; wiped on first use per process.
std::string BenchDataRoot();

/// benchmark::Initialize + RunSpecifiedBenchmarks + Shutdown, then — when
/// `--benchmark_out=<file>` was passed — injects a snapshot of the global
/// metrics registry into the finished JSON record as a top-level
/// "obs_registry" member, so every BENCH_*.json carries the storage/query
/// counters that produced its numbers.
void RunBenchmarks(int argc, char** argv);

/// Registers an extra top-level member for the BENCH JSON: `json` must be a
/// complete JSON value and lands as `"key": <json>` next to "obs_registry".
/// Benches call this from fixture teardown for state the client-side
/// registry cannot see (e.g. bench_wire embeds the *server's*
/// StatsResponse). Last write per key wins; thread-safe.
void AddBenchJsonExtra(const std::string& key, const std::string& json);

}  // namespace just::bench

#endif  // JUST_BENCH_BENCH_COMMON_H_
