// Streaming-ingestion bench: a geofence continuous query standing on a
// vehicles table while rows stream in and ad-hoc scans run concurrently.
// Reports:
//   - Stream/IngestThroughput       streamed rows/s through the CQ kernel
//   - Stream/NotificationLatency    ingest-to-notification p50/p99 (us)
//   - Stream/AdHocScan/uncontended  scan latency with an idle stream
//   - Stream/AdHocScan/mixed_load   the same scan while a quota-limited
//                                   tenant floods the ingest path
// The acceptance bar: mixed-load scan p99 within 2x of the uncontended
// baseline with quotas enabled (the `p99_vs_uncontended` counter).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "sql/justql.h"
#include "sql/parser.h"
#include "stream/continuous_query.h"

namespace just::bench {
namespace {

constexpr int kPreloadRows = 20000;
constexpr const char* kFence = "st_makeMBR(116.30, 39.85, 116.50, 39.95)";

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

struct StreamFixture {
  std::unique_ptr<core::JustEngine> engine;
  std::unique_ptr<sql::JustQL> ql;
  std::string user = "bench";
  /// WHERE expression of the geofence, parsed once and kept alive for the
  /// StreamHub registration (the hub borrows the predicate at Register).
  sql::Statement fence_stmt;
  /// Set by the on_notify probe: latency of the most recent notification,
  /// measured from just before InsertStream to the synchronous callback.
  int64_t notify_armed_us = 0;
  std::vector<double> notify_latencies_us;
  double uncontended_p99_us = 0;  ///< filled by the uncontended scan bench

  exec::Row MakeRow(int64_t id, double x, double y) const {
    return {exec::Value::String("s" + std::to_string(id)),
            exec::Value::String(id % 2 == 0 ? "chaoyang" : "haidian"),
            exec::Value::Double(static_cast<double>(id % 120)),
            exec::Value::Timestamp(1538352000000 + id),  // 2018-10-01 + id ms
            exec::Value::GeometryVal(geo::Geometry::MakePoint(
                {x, y}))};
  }
};

StreamFixture* GetStreamFixture() {
  static StreamFixture* fixture = [] {
    auto* fx = new StreamFixture();
    std::string dir = BenchDataRoot() + "/stream";
    std::filesystem::create_directories(dir);
    core::EngineOptions options;
    options.data_dir = dir;
    options.num_servers = 2;
    options.num_shards = 4;
    auto engine = core::JustEngine::Open(options);
    if (!engine.ok()) {
      std::fprintf(stderr, "open: %s\n", engine.status().ToString().c_str());
      std::abort();
    }
    fx->engine = std::move(engine).value();
    fx->ql = std::make_unique<sql::JustQL>(fx->engine.get());

    // Two tables: `vehicles` receives the stream (and carries the standing
    // geofence); `fleet` is a static population for the ad-hoc scans, so the
    // scan bench measures *contention* with ingest, not table growth.
    for (const char* name : {"vehicles", "fleet"}) {
      auto created = fx->ql->Execute(
          fx->user, std::string("CREATE TABLE ") + name +
                        " (fid string:primary key, district string, "
                        "speed double, time date, geom point:srid=4326)");
      if (!created.ok()) std::abort();
    }
    Rng rng(41);
    std::vector<exec::Row> chunk;
    chunk.reserve(5000);
    for (int i = 0; i < kPreloadRows; ++i) {
      chunk.push_back(fx->MakeRow(i, 116.0 + rng.NextDouble(),
                                  39.5 + rng.NextDouble()));
      if (chunk.size() == 5000) {
        if (!fx->engine->InsertBatch(fx->user, "fleet", chunk).ok()) {
          std::abort();
        }
        chunk.clear();
      }
    }
    if (!fx->engine->Finalize().ok()) std::abort();

    // Quotas on for the whole bench: the write limit is what keeps the
    // mixed-load flood from starving the scan path.
    meta::TenantQuotaConfig quota;
    quota.write_rows_per_sec = 5000;
    quota.write_burst_rows = 512;
    if (!fx->engine->SetTenantQuota(fx->user, quota).ok()) std::abort();

    // The standing geofence, registered through the hub directly so the
    // on_notify probe can timestamp each notification.
    auto stmt = sql::ParseStatement(
        std::string("SELECT * FROM vehicles WHERE geom WITHIN ") + kFence);
    if (!stmt.ok()) std::abort();
    fx->fence_stmt = std::move(stmt).value();

    auto meta = fx->engine->DescribeTable(fx->user, "vehicles");
    if (!meta.ok()) std::abort();
    stream::ContinuousQuerySpec spec;
    spec.name = "fence";
    spec.user = fx->user;
    spec.table = "vehicles";
    spec.predicate_sql = fx->fence_stmt.select->where->ToString();
    spec.on_notify = [fx](const stream::Notification&) {
      if (fx->notify_armed_us != 0) {
        fx->notify_latencies_us.push_back(
            static_cast<double>(NowUs() - fx->notify_armed_us));
        fx->notify_armed_us = 0;
      }
    };
    std::string cache_tag = std::to_string(meta->table_id) + ":" +
                            std::to_string(meta->generation);
    Status reg = fx->engine->stream_hub()->Register(
        std::move(spec), meta->MakeSchema(), fx->fence_stmt.select->where.get(),
        cache_tag, meta->ColumnIndex("fid"), meta->ColumnIndex("time"));
    if (!reg.ok()) {
      std::fprintf(stderr, "register: %s\n", reg.ToString().c_str());
      std::abort();
    }
    return fx;
  }();
  return fixture;
}

/// Streams one batch of `n` rows; about half land inside the fence.
Status StreamBatch(StreamFixture* fx, int64_t base_id, int n) {
  Rng rng(static_cast<uint64_t>(base_id) | 1);
  std::vector<exec::Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    double x = 116.30 + rng.NextDouble() * 0.4;  // ~half inside the fence
    double y = 39.85 + rng.NextDouble() * 0.2;
    rows.push_back(fx->MakeRow(base_id + i, x, y));
  }
  return fx->engine->InsertStream(fx->user, "vehicles", rows);
}

void BM_IngestThroughput(benchmark::State& state) {
  StreamFixture* fx = GetStreamFixture();
  int64_t next_id = 1000000;
  int64_t rows = 0;
  for (auto _ : state) {
    Status st = StreamBatch(fx, next_id, 256);
    if (st.IsResourceExhausted()) {
      // Quota shed: wait out the bucket instead of spinning on rejections.
      state.PauseTiming();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      state.ResumeTiming();
      continue;
    }
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
    next_id += 256;
    rows += 256;
  }
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
}

void BM_NotificationLatency(benchmark::State& state) {
  StreamFixture* fx = GetStreamFixture();
  fx->notify_latencies_us.clear();
  int64_t next_id = 2000000;
  for (auto _ : state) {
    // One matching row per iteration; OnInsert runs synchronously on this
    // thread, so the probe fires inside InsertStream.
    fx->notify_armed_us = NowUs();
    exec::Row row = fx->MakeRow(next_id++, 116.40, 39.90);
    Status st = fx->engine->InsertStream(fx->user, "vehicles", {row});
    if (st.IsResourceExhausted()) {
      fx->notify_armed_us = 0;
      state.PauseTiming();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      state.ResumeTiming();
      continue;
    }
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
  }
  state.counters["notify_p50_us"] = Percentile(fx->notify_latencies_us, 0.50);
  state.counters["notify_p99_us"] = Percentile(fx->notify_latencies_us, 0.99);
  state.counters["samples"] =
      static_cast<double>(fx->notify_latencies_us.size());
}

double RunScan(StreamFixture* fx) {
  int64_t start = NowUs();
  auto r = fx->ql->Execute(
      fx->user, std::string("SELECT fid FROM fleet WHERE geom WITHIN ") +
                    kFence + " AND speed > 60");
  if (!r.ok()) {
    std::fprintf(stderr, "scan: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return static_cast<double>(NowUs() - start);
}

void BM_AdHocScan(benchmark::State& state, bool mixed_load) {
  StreamFixture* fx = GetStreamFixture();
  std::atomic<bool> stop{false};
  std::thread feeder;
  if (mixed_load) {
    // A flooding tenant: streams as fast as the write quota admits. Sheds
    // back off briefly — exactly what a throttled client would do.
    feeder = std::thread([fx, &stop] {
      int64_t id = 3000000;
      while (!stop.load(std::memory_order_relaxed)) {
        Status st = StreamBatch(fx, id, 256);
        if (st.ok()) {
          id += 256;
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
    });
  }
  std::vector<double> latencies;
  for (auto _ : state) {
    latencies.push_back(RunScan(fx));
  }
  if (mixed_load) {
    stop.store(true, std::memory_order_relaxed);
    feeder.join();
  }
  double p50 = Percentile(latencies, 0.50);
  double p99 = Percentile(latencies, 0.99);
  state.counters["scan_p50_us"] = p50;
  state.counters["scan_p99_us"] = p99;
  if (mixed_load) {
    if (fx->uncontended_p99_us > 0) {
      state.counters["p99_vs_uncontended"] = p99 / fx->uncontended_p99_us;
    }
  } else {
    fx->uncontended_p99_us = p99;
  }
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  using namespace just::bench;  // NOLINT
  benchmark::RegisterBenchmark("Stream/IngestThroughput", BM_IngestThroughput);
  benchmark::RegisterBenchmark("Stream/NotificationLatency",
                               BM_NotificationLatency);
  // Registration order matters: the uncontended scan runs first and leaves
  // its p99 behind as the baseline for the mixed-load ratio.
  benchmark::RegisterBenchmark(
      "Stream/AdHocScan/uncontended",
      [](benchmark::State& s) { BM_AdHocScan(s, /*mixed_load=*/false); })
      ->MinTime(1.0);
  benchmark::RegisterBenchmark(
      "Stream/AdHocScan/mixed_load",
      [](benchmark::State& s) { BM_AdHocScan(s, /*mixed_load=*/true); })
      ->MinTime(1.0);
  just::bench::RunBenchmarks(argc, argv);
  return 0;
}
