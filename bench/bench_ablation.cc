// Ablations of the design choices DESIGN.md calls out (not figures from the
// paper, but the knobs behind them):
//   1. Shard count — GeoMesa's random key prefix: one shard serializes all
//      SCANs on one server; more shards parallelize (Section IV-A's load
//      balance argument).
//   2. SFC range budget — fewer, looser ranges scan more foreign rows;
//      many tight ranges pay more per-SCAN overhead (the planner trade-off
//      behind Section IV-B's analysis).
//   3. Block cache size — the HBase cache the paper's methodology disables;
//      shows why they had to.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "workload/generators.h"

namespace just::bench_ablation {

using namespace just;  // NOLINT

struct Setup {
  std::unique_ptr<core::JustEngine> engine;
  workload::QueryCenters centers;
  TimestampMs base = 0;
};

Setup MakeEngine(const std::string& tag, int num_shards, int max_ranges,
                 size_t block_cache_bytes) {
  kv::SetSimulatedReadBandwidthMBps(300.0);
  Setup setup;
  core::EngineOptions options;
  options.data_dir = "/tmp/just_ablation/" + tag;
  std::filesystem::remove_all(options.data_dir);
  options.num_servers = 4;
  options.num_shards = num_shards;
  options.index.max_ranges_per_period = max_ranges;
  options.store.block_cache_bytes = block_cache_bytes;
  auto engine = core::JustEngine::Open(options);
  if (!engine.ok()) std::abort();
  setup.engine = std::move(engine).value();

  meta::TableMeta table;
  table.user = "ab";
  table.name = "orders";
  table.columns = {
      {"fid", exec::DataType::kString, true, "", ""},
      {"time", exec::DataType::kTimestamp, false, "", ""},
      {"geom", exec::DataType::kGeometry, false, "", ""},
  };
  table.indexes = {{curve::IndexType::kZ2T, kMillisPerDay}};
  if (!setup.engine->CreateTable(table).ok()) std::abort();

  workload::OrderOptions gen;
  gen.num_orders = 40000;
  std::vector<exec::Row> batch;
  for (const auto& order : workload::GenerateOrders(gen)) {
    batch.push_back({exec::Value::String(order.fid),
                     exec::Value::Timestamp(order.time),
                     exec::Value::GeometryVal(
                         geo::Geometry::MakePoint(order.point))});
  }
  setup.engine->InsertBatch("ab", "orders", batch).ok();
  setup.engine->Finalize().ok();
  setup.base = ParseTimestamp(gen.start_date).value();
  setup.centers = workload::SampleQueryCenters(gen.area, gen.start_date,
                                               gen.num_days, 100, 4242);
  return setup;
}

void RunStQueries(benchmark::State& state, Setup* setup) {
  size_t qi = 0;
  for (auto _ : state) {
    size_t i = qi++ % setup->centers.centers.size();
    geo::Mbr box = geo::SquareWindowKm(setup->centers.centers[i], 3.0);
    TimestampMs t0 = TimePeriodStart(
        TimePeriodNumber(setup->centers.times[i], kMillisPerDay),
        kMillisPerDay);
    auto result = setup->engine->StRangeQuery("ab", "orders", box, t0,
                                              t0 + kMillisPerDay - 1);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

void BM_Shards(benchmark::State& state) {
  int shards = static_cast<int>(state.range(0));
  static std::map<int, Setup>* cache = new std::map<int, Setup>();
  if (cache->count(shards) == 0) {
    (*cache)[shards] =
        MakeEngine("shards" + std::to_string(shards), shards, 64, 64 << 10);
  }
  RunStQueries(state, &(*cache)[shards]);
}

void BM_RangeBudget(benchmark::State& state) {
  int budget = static_cast<int>(state.range(0));
  static std::map<int, Setup>* cache = new std::map<int, Setup>();
  if (cache->count(budget) == 0) {
    (*cache)[budget] =
        MakeEngine("budget" + std::to_string(budget), 8, budget, 64 << 10);
  }
  RunStQueries(state, &(*cache)[budget]);
}

void BM_BlockCache(benchmark::State& state) {
  size_t cache_bytes = static_cast<size_t>(state.range(0)) << 10;
  static std::map<int64_t, Setup>* cache = new std::map<int64_t, Setup>();
  if (cache->count(state.range(0)) == 0) {
    (*cache)[state.range(0)] = MakeEngine(
        "cache" + std::to_string(state.range(0)), 8, 64, cache_bytes);
  }
  RunStQueries(state, &(*cache)[state.range(0)]);
}

}  // namespace just::bench_ablation

int main(int argc, char** argv) {
  using namespace just::bench_ablation;  // NOLINT
  benchmark::RegisterBenchmark("Ablation/ST/shards", BM_Shards)
      ->Arg(1)
      ->Arg(4)
      ->Arg(8)
      ->Arg(16);
  benchmark::RegisterBenchmark("Ablation/ST/range_budget", BM_RangeBudget)
      ->Arg(8)
      ->Arg(64)
      ->Arg(512);
  benchmark::RegisterBenchmark("Ablation/ST/block_cache_KiB", BM_BlockCache)
      ->Arg(4)
      ->Arg(64)
      ->Arg(32768);
  just::bench::RunBenchmarks(argc, argv);
  return 0;
}
