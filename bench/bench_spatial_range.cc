// Reproduces Figure 11a-11d: spatial range query time vs data size and vs
// spatial window, for JUST and the comparison systems. Paper shape:
//   - All systems grow with data size and window size.
//   - JUST ~ the Spark-likes (same decade), far below SpatialHadoop
//     (which pays a MapReduce job per query).
//   - On Traj, JUST < JUSTnc (compression cuts scan I/O); the in-memory
//     systems OOM per their Fig 10d thresholds (reported as bench errors).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace just::bench {
namespace {

constexpr double kDefaultWindowKm = 3.0;

void RunJustQueries(benchmark::State& state, Dataset dataset, Variant variant,
                    int pct, double window_km) {
  Fixture* fx = GetFixture(dataset, pct, variant);
  size_t qi = 0;
  size_t results = 0;
  uint64_t io_before = kv::GlobalIoStats().bytes_read;
  for (auto _ : state) {
    geo::Mbr box = geo::SquareWindowKm(
        fx->centers.centers[qi++ % fx->centers.centers.size()], window_km);
    auto result = fx->engine->SpatialRangeQuery(fx->user, fx->table, box);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    results += result->num_rows();
    benchmark::DoNotOptimize(result);
  }
  double iters = static_cast<double>(std::max<int64_t>(1, state.iterations()));
  state.counters["avg_rows"] = static_cast<double>(results) / iters;
  // The Fig 11b/11d mechanism: compression cuts bytes read from the store.
  // (Wall-clock benefits require a cold cache; see EXPERIMENTS.md.)
  state.counters["io_KB_per_query"] =
      static_cast<double>(kv::GlobalIoStats().bytes_read - io_before) /
      1024.0 / iters;
}

void RunBaselineQueries(benchmark::State& state, Dataset dataset,
                        const std::string& system_name, int pct,
                        double window_km) {
  Fixture* fx = GetFixture(dataset, pct, Variant::kJust);
  auto system =
      baselines::MakeBaseline(system_name, CalibratedBaselineOptions(dataset));
  if (!system.ok()) {
    state.SkipWithError(system.status().ToString().c_str());
    return;
  }
  Status built = (*system)->BuildIndex(ToBaselineRecords(*fx));
  if (!built.ok()) {
    state.SkipWithError(built.ToString().c_str());  // the paper's OOM gaps
    return;
  }
  size_t qi = 0;
  for (auto _ : state) {
    geo::Mbr box = geo::SquareWindowKm(
        fx->centers.centers[qi++ % fx->centers.centers.size()], window_km);
    auto result = (*system)->SpatialRange(box);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

void RegisterAll() {
  const std::vector<std::string> kOrderSystems = {
      "GeoSpark", "LocationSpark", "SpatialSpark", "Simba", "SpatialHadoop"};
  const std::vector<std::string> kTrajSystems = {"GeoSpark", "SpatialSpark",
                                                 "Simba"};

  // Fig 11a / 11b: vary data size at the default 3x3 km window.
  benchmark::RegisterBenchmark("Fig11a/Order/JUST",
                               [](benchmark::State& s) {
                                 RunJustQueries(s, Dataset::kOrder,
                                                Variant::kJust,
                                                static_cast<int>(s.range(0)),
                                                kDefaultWindowKm);
                               })
      ->DenseRange(20, 100, 40);
  for (const std::string& system : kOrderSystems) {
    benchmark::RegisterBenchmark(
        ("Fig11a/Order/" + system).c_str(),
        [system](benchmark::State& s) {
          RunBaselineQueries(s, Dataset::kOrder, system,
                             static_cast<int>(s.range(0)), kDefaultWindowKm);
        })
        ->DenseRange(20, 100, 40);
  }
  for (Variant v : {Variant::kJust, Variant::kNoCompress}) {
    benchmark::RegisterBenchmark(
        (std::string("Fig11b/Traj/") + VariantName(v)).c_str(),
        [v](benchmark::State& s) {
          RunJustQueries(s, Dataset::kTraj, v, static_cast<int>(s.range(0)),
                         kDefaultWindowKm);
        })
        ->DenseRange(20, 100, 40);
  }
  for (const std::string& system : kTrajSystems) {
    benchmark::RegisterBenchmark(
        ("Fig11b/Traj/" + system).c_str(),
        [system](benchmark::State& s) {
          RunBaselineQueries(s, Dataset::kTraj, system,
                             static_cast<int>(s.range(0)), kDefaultWindowKm);
        })
        ->DenseRange(20, 100, 40);
  }

  // Fig 11c / 11d: vary the spatial window at 100% data (SpatialSpark runs
  // at 80% on Traj, as the paper does after its 100% failure).
  benchmark::RegisterBenchmark("Fig11c/Order/JUST",
                               [](benchmark::State& s) {
                                 RunJustQueries(
                                     s, Dataset::kOrder, Variant::kJust, 100,
                                     static_cast<double>(s.range(0)));
                               })
      ->DenseRange(1, 5, 1);
  for (const std::string& system : kOrderSystems) {
    benchmark::RegisterBenchmark(
        ("Fig11c/Order/" + system).c_str(),
        [system](benchmark::State& s) {
          RunBaselineQueries(s, Dataset::kOrder, system, 100,
                             static_cast<double>(s.range(0)));
        })
        ->DenseRange(1, 5, 1);
  }
  for (Variant v : {Variant::kJust, Variant::kNoCompress}) {
    benchmark::RegisterBenchmark(
        (std::string("Fig11d/Traj/") + VariantName(v)).c_str(),
        [v](benchmark::State& s) {
          RunJustQueries(s, Dataset::kTraj, v, 100,
                         static_cast<double>(s.range(0)));
        })
        ->DenseRange(1, 5, 1);
  }
  for (const std::string& system : {std::string("GeoSpark"),
                                    std::string("SpatialSpark")}) {
    int pct = system == "SpatialSpark" ? 80 : 100;
    benchmark::RegisterBenchmark(
        ("Fig11d/Traj/" + system).c_str(),
        [system, pct](benchmark::State& s) {
          RunBaselineQueries(s, Dataset::kTraj, system, pct,
                             static_cast<double>(s.range(0)));
        })
        ->DenseRange(1, 5, 1);
  }
}

}  // namespace
}  // namespace just::bench

int main(int argc, char** argv) {
  just::bench::RegisterAll();
  just::bench::RunBenchmarks(argc, argv);
  return 0;
}
