// Map Recovery System (Section VII-B, Figure 9b): courier GPS logs stored
// in a JUST trajectory plugin table are preprocessed (noise filter,
// segmentation), map-matched against the known road network, and the
// unmatched snapped traffic reveals road segments missing from the map —
// plus per-segment speed and travel-mode inference.
//
//   ./build/examples/example_map_recovery

#include <cmath>
#include <cstdio>
#include <map>

#include "core/engine.h"
#include "sql/functions.h"
#include "sql/justql.h"
#include "traj/dbscan.h"
#include "traj/map_matching.h"
#include "traj/preprocess.h"
#include "traj/road_network.h"
#include "workload/generators.h"

int main() {
  just::core::EngineOptions options;
  options.data_dir = "/tmp/just_map_recovery";
  auto engine = just::core::JustEngine::Open(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  const std::string user = "logistics";
  if (auto st = (*engine)->CreatePluginTable(user, "courier_gps",
                                             "trajectory");
      !st.ok()) {
    std::fprintf(stderr, "create: %s\n", st.ToString().c_str());
    return 1;
  }

  // 1) Batch-load the day's courier logs (the paper: "GPS logs of over
  //    60,000 couriers are loaded into JUST in batches each day").
  just::workload::TrajOptions gen;
  gen.num_trajectories = 120;
  gen.points_per_traj = 250;
  gen.num_days = 1;
  auto logs = just::workload::GenerateTrajectories(gen);
  for (const auto& t : logs) {
    just::exec::Row row = {
        just::exec::Value::String(t.oid()),
        just::exec::Value::String("courier_" + t.oid()),
        just::exec::Value::Timestamp(t.start_time()),
        just::exec::Value::Timestamp(t.end_time()),
        just::exec::Value::TrajectoryVal(
            std::make_shared<const just::traj::Trajectory>(t))};
    (*engine)->Insert(user, "courier_gps", row).ok();
  }
  (*engine)->Finalize().ok();
  std::printf("loaded %zu courier trajectories\n", logs.size());

  // 2) The commercial map of a living area — deliberately sparse: a coarse
  //    grid whose inner alleys are missing.
  auto area = just::workload::DefaultCityArea();
  auto commercial_map = just::traj::RoadNetwork::MakeGrid(area, 14, 14);
  just::sql::SetMapMatchingNetwork(
      std::make_shared<const just::traj::RoadNetwork>(commercial_map));
  std::printf("commercial map: %zu road segments\n",
              commercial_map.segments().size());

  // 3) Preprocess + map-match through JustQL's analysis operations.
  just::sql::JustQL ql(engine->get());
  auto filtered = ql.Execute(
      user, "CREATE VIEW clean AS SELECT st_trajNoiseFilter(item) FROM "
            "courier_gps");
  if (!filtered.ok()) {
    std::fprintf(stderr, "noise filter: %s\n",
                 filtered.status().ToString().c_str());
    return 1;
  }
  auto matched = ql.Execute(
      user, "SELECT st_trajMapMatching(item) FROM clean");
  if (!matched.ok()) {
    std::fprintf(stderr, "map matching: %s\n",
                 matched.status().ToString().c_str());
    return 1;
  }

  // 4) Aggregate matched traffic per segment; collect off-map fixes.
  struct SegmentStats {
    int fixes = 0;
  };
  std::map<int64_t, SegmentStats> per_segment;
  std::vector<just::geo::Point> unmatched;
  for (const auto& row : matched->frame.rows()) {
    int64_t segment = row[1].int_value();
    if (segment >= 0) {
      ++per_segment[segment].fixes;
    } else {
      unmatched.push_back(row[2].geometry_value().AsPoint());
    }
  }
  std::printf("map matching: %zu fixes on %zu known segments, %zu off-map\n",
              matched->frame.num_rows() - unmatched.size(),
              per_segment.size(), unmatched.size());

  // 5) Off-map fixes cluster along missing alleys: DBSCAN finds them (the
  //    N-M analysis operation), and each dense cluster becomes a recovered
  //    road candidate.
  just::traj::DbscanOptions cluster_options;
  cluster_options.radius = 0.0015;
  cluster_options.min_pts = 8;
  auto clusters = just::traj::Dbscan(unmatched, cluster_options);
  std::printf("recovered %d candidate missing-road clusters\n",
              clusters.num_clusters);

  // 6) Speed + travel-mode inference per recovered cluster, from the raw
  //    trajectories (speed <= ~2.5 m/s: walking; <= ~7 m/s: riding).
  std::vector<double> cluster_speed_sum(clusters.num_clusters, 0);
  std::vector<int> cluster_speed_n(clusters.num_clusters, 0);
  for (const auto& t : logs) {
    const auto& pts = t.points();
    for (size_t i = 1; i < pts.size(); ++i) {
      for (size_t c = 0; c < unmatched.size(); ++c) {
        int label = clusters.labels[c];
        if (label < 0) continue;
        if (just::geo::EuclideanDistance(pts[i].position, unmatched[c]) <
            0.0015) {
          double dt = static_cast<double>(pts[i].time - pts[i - 1].time) /
                      1000.0;
          if (dt <= 0) continue;
          double speed = just::geo::HaversineMeters(pts[i - 1].position,
                                                    pts[i].position) /
                         dt;
          cluster_speed_sum[label] += speed;
          ++cluster_speed_n[label];
          break;
        }
      }
    }
  }
  int shown = 0;
  for (int c = 0; c < clusters.num_clusters && shown < 8; ++c, ++shown) {
    // Centroid of the cluster.
    double lng = 0, lat = 0;
    int n = 0;
    for (size_t i = 0; i < unmatched.size(); ++i) {
      if (clusters.labels[i] == c) {
        lng += unmatched[i].lng;
        lat += unmatched[i].lat;
        ++n;
      }
    }
    if (n == 0) continue;
    double avg_speed = cluster_speed_n[c] > 0
                           ? cluster_speed_sum[c] / cluster_speed_n[c]
                           : 0.0;
    const char* mode = avg_speed <= 2.5   ? "walking"
                       : avg_speed <= 7.0 ? "riding"
                                          : "driving";
    std::printf(
        "  recovered road %d: center (%.5f, %.5f), %d fixes, "
        "avg %.1f m/s -> %s\n",
        c, lng / n, lat / n, n, avg_speed, mode);
  }
  std::printf("map recovery done.\n");
  return 0;
}
