// k-NN dispatch demo (Section V-C: "taxi companies use this function to
// find the nearest taxi cab to pick up a passenger"): a stream of pickup
// requests is answered with k-NN queries over a live fleet table, and the
// fleet keeps moving — exercising JUST's update-enabled inserts (no index
// rebuild between position updates).
//
//   ./build/examples/example_knn_dispatch

#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"
#include "sql/justql.h"
#include "workload/generators.h"

int main() {
  just::core::EngineOptions options;
  options.data_dir = "/tmp/just_knn_dispatch";
  auto engine = just::core::JustEngine::Open(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  const std::string user = "dispatch";
  just::sql::JustQL ql(engine->get());
  auto created = ql.Execute(
      user,
      "CREATE TABLE fleet (fid string:primary key, time date, geom point)");
  if (!created.ok()) {
    std::fprintf(stderr, "create: %s\n", created.status().ToString().c_str());
    return 1;
  }

  auto area = just::workload::DefaultCityArea();
  just::Rng rng(2024);
  just::TimestampMs now = just::ParseTimestamp("2018-10-01 08:00:00").value();

  // Seed the fleet.
  constexpr int kCabs = 3000;
  std::vector<just::geo::Point> cab_positions;
  std::vector<just::exec::Row> batch;
  for (int i = 0; i < kCabs; ++i) {
    just::geo::Point p{rng.Uniform(area.lng_min, area.lng_max),
                       rng.Uniform(area.lat_min, area.lat_max)};
    cab_positions.push_back(p);
    batch.push_back({just::exec::Value::String("cab" + std::to_string(i)),
                     just::exec::Value::Timestamp(now),
                     just::exec::Value::GeometryVal(
                         just::geo::Geometry::MakePoint(p))});
  }
  (*engine)->InsertBatch(user, "fleet", batch).ok();
  (*engine)->Finalize().ok();
  std::printf("fleet of %d cabs on the road\n\n", kCabs);

  // Dispatch loop: pickup requests interleaved with fleet movement.
  constexpr int kRounds = 5;
  constexpr int kMovesPerRound = 200;
  for (int round = 0; round < kRounds; ++round) {
    // Some cabs move (historical update: same fid, new position & time —
    // the index absorbs it without any rebuild).
    std::vector<just::exec::Row> moves;
    for (int m = 0; m < kMovesPerRound; ++m) {
      int cab = static_cast<int>(rng.Uniform(kCabs));
      just::geo::Point& p = cab_positions[cab];
      p.lng += rng.NextGaussian() * 0.002;
      p.lat += rng.NextGaussian() * 0.002;
      moves.push_back({just::exec::Value::String("cab" + std::to_string(cab)),
                       just::exec::Value::Timestamp(now),
                       just::exec::Value::GeometryVal(
                           just::geo::Geometry::MakePoint(p))});
    }
    (*engine)->InsertBatch(user, "fleet", moves).ok();
    now += just::kMillisPerMinute;

    // A pickup request arrives: nearest 3 cabs via JustQL.
    just::geo::Point rider{rng.Uniform(area.lng_min + 0.1, area.lng_max - 0.1),
                           rng.Uniform(area.lat_min + 0.1,
                                       area.lat_max - 0.1)};
    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT fid, geom FROM fleet WHERE geom IN "
                  "st_KNN(st_makePoint(%.6f, %.6f), 3)",
                  rider.lng, rider.lat);
    auto result = ql.Execute(user, sql);
    if (!result.ok()) {
      std::fprintf(stderr, "knn: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("pickup at (%.4f, %.4f):\n", rider.lng, rider.lat);
    for (const auto& row : result->frame.rows()) {
      just::geo::Point cab = row[1].geometry_value().AsPoint();
      std::printf("  -> %-8s %.0f m away\n",
                  row[0].string_value().c_str(),
                  just::geo::HaversineMeters(rider, cab));
    }
  }
  std::printf("\ndispatch demo done (%d rounds, %d live updates).\n", kRounds,
              kRounds * kMovesPerRound);
  return 0;
}
