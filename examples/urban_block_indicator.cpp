// Urban Block Indicator System (Section VII-B, Figure 9a): partitions the
// city into ~150m x 150m blocks, computes per-block indicators (order
// volume, purchasing-power proxy, peak hour) from JUST spatio-temporal
// range queries, and answers interactive "address portrait" lookups.
//
//   ./build/examples/example_urban_block_indicator

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/engine.h"
#include "sql/justql.h"
#include "workload/generators.h"

namespace {

struct BlockIndicators {
  int orders = 0;
  double revenue_proxy = 0;
  std::map<int, int> orders_by_hour;

  int PeakHour() const {
    int best_hour = 0, best = -1;
    for (const auto& [hour, count] : orders_by_hour) {
      if (count > best) {
        best = count;
        best_hour = hour;
      }
    }
    return best_hour;
  }
};

}  // namespace

int main() {
  just::core::EngineOptions options;
  options.data_dir = "/tmp/just_urban_blocks";
  auto engine = just::core::JustEngine::Open(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  const std::string user = "city";

  // The indicator store uses a Z2T-indexed order table (Table III's Order
  // settings; the paper's deployment uses XZ2T over block summaries).
  just::meta::TableMeta table;
  table.user = user;
  table.name = "orders";
  table.columns = {
      {"fid", just::exec::DataType::kString, true, "", ""},
      {"time", just::exec::DataType::kTimestamp, false, "", ""},
      {"geom", just::exec::DataType::kGeometry, false, "4326", ""},
  };
  if (auto st = (*engine)->CreateTable(table); !st.ok()) {
    std::fprintf(stderr, "create: %s\n", st.ToString().c_str());
    return 1;
  }

  just::workload::OrderOptions gen;
  gen.num_orders = 30000;
  auto orders = just::workload::GenerateOrders(gen);
  std::vector<just::exec::Row> batch;
  for (const auto& order : orders) {
    batch.push_back({just::exec::Value::String(order.fid),
                     just::exec::Value::Timestamp(order.time),
                     just::exec::Value::GeometryVal(
                         just::geo::Geometry::MakePoint(order.point))});
  }
  (*engine)->InsertBatch(user, "orders", batch).ok();
  (*engine)->Finalize().ok();
  std::printf("loaded %zu orders into JUST\n", orders.size());

  // Pick the busiest business district: coarse in-memory histogram over
  // the loaded orders (the deployed system would know its districts).
  std::map<std::pair<int, int>, int> coarse;
  for (const auto& order : orders) {
    coarse[{static_cast<int>(order.point.lng / 0.02),
            static_cast<int>(order.point.lat / 0.02)}]++;
  }
  std::pair<int, int> best_cell = coarse.begin()->first;
  for (const auto& [cell, n] : coarse) {
    if (n > coarse[best_cell]) best_cell = cell;
  }
  just::geo::Point district_center{(best_cell.first + 0.5) * 0.02,
                                   (best_cell.second + 0.5) * 0.02};
  std::printf("busiest district centered at (%.4f, %.4f)\n",
              district_center.lng, district_center.lat);

  // A month of data over a 12x12-block district: one ST range query per
  // block (the paper: "users can search the indicators of any area using a
  // spatio-temporal range query").
  constexpr int kBlocks = 12;
  constexpr double kBlockKm = 0.15;  // ~150m, GeoHash-7-sized blocks
  just::TimestampMs week_start =
      just::ParseTimestamp("2018-10-01").value();
  just::TimestampMs week_end = week_start + 31 * just::kMillisPerDay;

  std::vector<std::vector<BlockIndicators>> blocks(
      kBlocks, std::vector<BlockIndicators>(kBlocks));
  int total_in_district = 0;
  for (int bx = 0; bx < kBlocks; ++bx) {
    for (int by = 0; by < kBlocks; ++by) {
      double lng = district_center.lng + (bx - kBlocks / 2) * kBlockKm / 85.0;
      double lat = district_center.lat + (by - kBlocks / 2) * kBlockKm / 111.0;
      auto box = just::geo::SquareWindowKm({lng, lat}, kBlockKm);
      auto rows = (*engine)->StRangeQuery(user, "orders", box, week_start,
                                          week_end);
      if (!rows.ok()) continue;
      BlockIndicators& cell = blocks[bx][by];
      for (const auto& row : rows->rows()) {
        ++cell.orders;
        ++total_in_district;
        just::TimestampMs t = row[1].timestamp_value();
        int hour = static_cast<int>((t % just::kMillisPerDay) /
                                    just::kMillisPerHour);
        ++cell.orders_by_hour[hour];
        cell.revenue_proxy += 15.0 + (t % 97);  // synthetic order value
      }
    }
  }
  std::printf("district scan: %d orders across %dx%d blocks in the month\n\n",
              total_in_district, kBlocks, kBlocks);

  // Render the order-density heat map.
  std::printf("order density (each cell ~150m, darker = busier):\n");
  int max_orders = 1;
  for (const auto& col : blocks) {
    for (const auto& cell : col) max_orders = std::max(max_orders, cell.orders);
  }
  const char* shades = " .:-=+*#%@";
  for (int by = kBlocks - 1; by >= 0; --by) {
    std::printf("  ");
    for (int bx = 0; bx < kBlocks; ++bx) {
      int level = blocks[bx][by].orders * 9 / max_orders;
      std::printf("%c%c", shades[level], shades[level]);
    }
    std::printf("\n");
  }

  // Address portrait for the hottest block.
  int best_x = 0, best_y = 0;
  for (int bx = 0; bx < kBlocks; ++bx) {
    for (int by = 0; by < kBlocks; ++by) {
      if (blocks[bx][by].orders > blocks[best_x][best_y].orders) {
        best_x = bx;
        best_y = by;
      }
    }
  }
  const BlockIndicators& hot = blocks[best_x][best_y];
  std::printf("\naddress portrait of the hottest block (%d, %d):\n", best_x,
              best_y);
  std::printf("  monthly orders:       %d\n", hot.orders);
  std::printf("  purchasing power:     %.0f (proxy units)\n",
              hot.revenue_proxy);
  std::printf("  peak order hour:      %02d:00\n", hot.PeakHour());
  std::printf("  billboard suitability: %s\n",
              hot.orders > max_orders / 2 ? "HIGH" : "moderate");
  return 0;
}
