// Quickstart: a guided tour of JUST through JustQL — the Section V / VI
// surface. Creates tables, loads data, runs the paper's three query types,
// builds a view, and shows the Figure 8 optimizer at work.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>
#include <memory>

#include "core/engine.h"
#include "sql/justql.h"
#include "workload/generators.h"

namespace {

void Run(just::sql::JustQL* ql, const std::string& sql, size_t max_rows = 5) {
  std::printf("justql> %s\n", sql.c_str());
  auto result = ql->Execute("demo", sql);
  if (!result.ok()) {
    std::printf("  !! %s\n\n", result.status().ToString().c_str());
    return;
  }
  if (!result->message.empty()) {
    std::printf("  %s\n\n", result->message.c_str());
    return;
  }
  std::printf("%s\n", result->frame.ToDisplayString(max_rows).c_str());
}

}  // namespace

int main() {
  // One shared engine serves every user (the paper's shared Spark context).
  just::core::EngineOptions options;
  options.data_dir = "/tmp/just_quickstart";
  auto engine = just::core::JustEngine::Open(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  just::sql::JustQL ql(engine->get());

  std::printf("== 1. Definition operations (Section V-A) ==\n\n");
  Run(&ql,
      "CREATE TABLE orders (fid string:primary key, time date, "
      "geom point:srid=4326)");
  Run(&ql, "CREATE TABLE couriers AS trajectory");
  Run(&ql, "SHOW TABLES");
  Run(&ql, "DESC TABLE couriers");

  std::printf("== 2. Manipulation operations (Section V-B) ==\n\n");
  Run(&ql,
      "INSERT INTO orders VALUES "
      "('o1', '2018-10-01 09:30:00', st_makePoint(116.397, 39.916)), "
      "('o2', '2018-10-01 20:15:00', st_makePoint(116.410, 39.920)), "
      "('o3', '2018-10-02 11:05:00', st_makePoint(116.350, 39.870))");

  // Bulk data through the programmatic API (the SDK path).
  just::workload::OrderOptions gen;
  gen.num_orders = 5000;
  std::vector<just::exec::Row> batch;
  for (const auto& order : just::workload::GenerateOrders(gen)) {
    batch.push_back({just::exec::Value::String(order.fid),
                     just::exec::Value::Timestamp(order.time),
                     just::exec::Value::GeometryVal(
                         just::geo::Geometry::MakePoint(order.point))});
  }
  if (auto st = (*engine)->InsertBatch("demo", "orders", batch); !st.ok()) {
    std::fprintf(stderr, "bulk insert: %s\n", st.ToString().c_str());
    return 1;
  }
  (*engine)->Finalize().ok();
  std::printf("bulk-loaded %zu generated orders\n\n", batch.size());

  std::printf("== 3. Query operations (Section V-C) ==\n\n");
  std::printf("-- spatial range query (Z2 index) --\n");
  Run(&ql,
      "SELECT fid, time, geom FROM orders WHERE geom WITHIN "
      "st_makeMBR(116.30, 39.85, 116.45, 39.95) LIMIT 5");
  std::printf("-- spatio-temporal range query (the paper's Z2T index) --\n");
  Run(&ql,
      "SELECT fid, time FROM orders WHERE geom WITHIN "
      "st_makeMBR(116.30, 39.85, 116.45, 39.95) AND "
      "time BETWEEN '2018-10-01' AND '2018-10-02' LIMIT 5");
  std::printf("-- k-NN query (Algorithm 1) --\n");
  Run(&ql,
      "SELECT fid, geom FROM orders WHERE geom IN "
      "st_KNN(st_makePoint(116.40, 39.91), 5)");

  std::printf("== 4. Views: one query, multiple usages (Section IV-D) ==\n\n");
  Run(&ql,
      "CREATE VIEW downtown AS SELECT fid, time, geom FROM orders WHERE "
      "geom WITHIN st_makeMBR(116.30, 39.85, 116.45, 39.95)");
  Run(&ql, "SELECT count(*) AS orders_downtown FROM downtown");
  Run(&ql,
      "SELECT st_asText(st_WGS84ToGCJ02(geom)) AS gcj02 FROM downtown "
      "LIMIT 3");
  Run(&ql, "STORE VIEW downtown TO TABLE downtown_snapshot");
  Run(&ql, "SHOW TABLES");

  std::printf("== 5. The SQL optimizer (Section VI, Figure 8) ==\n\n");
  auto explain = ql.ExplainSelect(
      "demo",
      "SELECT fid, geom FROM (SELECT * FROM orders) t "
      "WHERE fid = 'o' AND geom WITHIN st_makeMBR(116.3, 39.8, 116.5, 40.0) "
      "ORDER BY time");
  if (explain.ok()) std::printf("%s\n", explain->c_str());

  std::printf("== 6. Cursor-style results (Figure 2's data flow) ==\n\n");
  auto frame = (*engine)->FullScan("demo", "orders");
  if (frame.ok()) {
    just::core::ResultSet::Options rs_options;
    rs_options.direct_row_limit = 100;  // force the multi-part path
    rs_options.spill_dir = "/tmp/just_quickstart/spill";
    auto rs = just::core::ResultSet::Make(std::move(*frame), rs_options);
    if (rs.ok()) {
      size_t n = 0;
      while ((*rs)->HasNext() && (*rs)->Next().ok()) ++n;
      std::printf("streamed %zu rows through a %s result set\n", n,
                  (*rs)->spilled() ? "spilled (multi-part)" : "direct");
    }
  }
  std::printf("\nquickstart done.\n");
  return 0;
}
